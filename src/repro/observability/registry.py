"""The shared metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` is the single snapshot surface the
cognitive controller polls (paper Sec. 5: the controller "programs and
adapts the analog tables from run-time observations").  Instruments
are cheap enough to live on hot paths: a counter increment is one
float add, a histogram observation is one bisect plus two adds, and
hot-path code holds the instrument object directly instead of looking
it up per event.

Sources that keep their own state (the data-plane
:class:`~repro.dataplane.telemetry.TelemetryCollector`, the
:class:`~repro.energy.ledger.EnergyLedger`, the graceful-degradation
wrappers) are folded in lazily through *collectors* — callbacks run
before every snapshot/export — so existing components need no
per-event plumbing (see :mod:`repro.observability.adapters`).
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Wall/sim latency buckets [s] — spans 1 us .. 1 s, one decade apart.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _label_key(labels: Mapping[str, str] | None
               ) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    for name in labels:
        if not _LABEL_NAME.match(name):
            raise ValueError(f"invalid label name: {name!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events, packets, joules)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str,
                 labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount!r}")
        self._value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the running total (adapter/pull-collector use only).

        Pull adapters mirror an absolute count kept elsewhere (table
        lookups, ledger joules); monotonicity is the source's problem.
        """
        self._value = float(value)


class Gauge:
    """The latest sample of a continuously-varying quantity."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str,
                 labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    @property
    def value(self) -> float:
        """Latest sample."""
        return self._value

    def set(self, value: float) -> None:
        """Publish a fresh sample."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the gauge down by ``amount``."""
        self._value -= amount


class Histogram:
    """A fixed-bucket histogram (bounds frozen at creation).

    Buckets are upper bounds in ascending order plus an implicit
    +Inf overflow bucket; per-bucket counts are stored raw and
    cumulated only at export time, so an observation is one bisect
    and two adds — cheap enough for per-batch hot paths.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "_sum", "_count")

    def __init__(self, name: str,
                 bounds: Sequence[float],
                 labels: tuple[tuple[str, str], ...] = ()) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(cleaned, cleaned[1:])):
            raise ValueError(
                f"bucket bounds must be strictly increasing: {cleaned}")
        self.name = name
        self.labels = labels
        self.bounds = cleaned
        self._counts = [0] * (len(cleaned) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def bucket_counts(self) -> tuple[int, ...]:
        """Raw (non-cumulative) per-bucket counts, overflow last."""
        return tuple(self._counts)

    def cumulative_counts(self) -> tuple[int, ...]:
        """Prometheus-style cumulative counts, ``+Inf`` last."""
        out = []
        running = 0
        for count in self._counts:
            running += count
            out.append(running)
        return tuple(out)


class _Family:
    """All instruments sharing one metric name (and type)."""

    __slots__ = ("name", "kind", "help", "bounds", "instruments")

    def __init__(self, name: str, kind: str, help_text: str,
                 bounds: tuple[float, ...] | None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.bounds = bounds
        self.instruments: dict[tuple[tuple[str, str], ...],
                               Counter | Gauge | Histogram] = {}


class MetricsRegistry:
    """Get-or-create instrument factory plus the snapshot surface.

    ``counter()``/``gauge()``/``histogram()`` return the existing
    instrument for a (name, labels) pair or create it; asking for the
    same name with a different type (or different histogram buckets)
    is an error, which is what keeps one registry export coherent.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    # ------------------------------------------------------------------
    # Instrument creation
    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, help_text: str,
                bounds: tuple[float, ...] | None = None) -> _Family:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, bounds)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind}")
        if kind == "histogram" and bounds != family.bounds:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{family.bounds}, not {bounds}")
        if help_text and not family.help:
            family.help = help_text
        return family

    def counter(self, name: str, help: str = "",
                labels: Mapping[str, str] | None = None) -> Counter:
        """Get or create a counter."""
        family = self._family(name, "counter", help)
        key = _label_key(labels)
        instrument = family.instruments.get(key)
        if instrument is None:
            instrument = Counter(name, key)
            family.instruments[key] = instrument
        return instrument  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labels: Mapping[str, str] | None = None) -> Gauge:
        """Get or create a gauge."""
        family = self._family(name, "gauge", help)
        key = _label_key(labels)
        instrument = family.instruments.get(key)
        if instrument is None:
            instrument = Gauge(name, key)
            family.instruments[key] = instrument
        return instrument  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  labels: Mapping[str, str] | None = None,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
                  ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        bounds = tuple(float(b) for b in buckets)
        family = self._family(name, "histogram", help, bounds)
        key = _label_key(labels)
        instrument = family.instruments.get(key)
        if instrument is None:
            instrument = Histogram(name, bounds, key)
            family.instruments[key] = instrument
        return instrument  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Pull collectors
    # ------------------------------------------------------------------
    def register_collector(
            self, collect: Callable[["MetricsRegistry"], None]) -> None:
        """Run ``collect(registry)`` before every snapshot/export.

        Adapters use this to mirror externally-kept state (telemetry
        counters, ledger accounts, degradation events) into the
        registry without touching the source's hot path.
        """
        self._collectors.append(collect)

    def collect(self) -> None:
        """Run every registered collector once."""
        for collect in self._collectors:
            collect(self)

    # ------------------------------------------------------------------
    # Snapshot surface
    # ------------------------------------------------------------------
    def families(self) -> Iterable[_Family]:
        """Metric families in name order (post-collect not implied)."""
        return (self._families[name] for name in sorted(self._families))

    def snapshot(self) -> dict:
        """The canonical JSON-serialisable view of every metric.

        Runs the pull collectors first, so the one returned mapping
        carries table hit/miss stats, energy-account totals,
        degradation events and the latency histograms together — the
        single poll surface for the controller.
        """
        self.collect()
        metrics = []
        for family in self.families():
            samples = []
            for key in sorted(family.instruments):
                instrument = family.instruments[key]
                labels = dict(key)
                if family.kind == "histogram":
                    samples.append({
                        "labels": labels,
                        "counts": list(instrument.bucket_counts()),
                        "sum": instrument.sum,
                        "count": instrument.count,
                    })
                else:
                    samples.append({"labels": labels,
                                    "value": instrument.value})
            entry: dict = {"name": family.name, "type": family.kind,
                           "help": family.help, "samples": samples}
            if family.kind == "histogram":
                entry["buckets"] = list(family.bounds)
            metrics.append(entry)
        return {"metrics": metrics}

    @classmethod
    def from_snapshot(cls, snapshot: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output (round-trip)."""
        registry = cls()
        for entry in snapshot["metrics"]:
            name, kind = entry["name"], entry["type"]
            help_text = entry.get("help", "")
            for sample in entry["samples"]:
                labels = sample.get("labels") or None
                if kind == "counter":
                    registry.counter(name, help_text, labels).set_total(
                        sample["value"])
                elif kind == "gauge":
                    registry.gauge(name, help_text, labels).set(
                        sample["value"])
                elif kind == "histogram":
                    histogram = registry.histogram(
                        name, help_text, labels,
                        buckets=entry["buckets"])
                    histogram._counts = list(sample["counts"])
                    histogram._sum = float(sample["sum"])
                    histogram._count = int(sample["count"])
                else:
                    raise ValueError(f"unknown metric type {kind!r}")
            if not entry["samples"]:
                # Preserve empty families so round-trips are lossless.
                if kind == "histogram":
                    registry._family(name, kind, help_text,
                                     tuple(entry["buckets"]))
                else:
                    registry._family(name, kind, help_text)
        return registry

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the full registry."""
        from repro.observability.export import to_prometheus_text
        return to_prometheus_text(self)

    def reset(self) -> None:
        """Drop every instrument and collector."""
        self._families.clear()
        self._collectors.clear()

    def __len__(self) -> int:
        return sum(len(family.instruments)
                   for family in self._families.values())

    def __repr__(self) -> str:
        return (f"MetricsRegistry(families={len(self._families)}, "
                f"instruments={len(self)})")
