"""Exporters for the metrics registry: Prometheus text and JSON.

The Prometheus text format is the interchange surface a scrape
endpoint would serve; the JSON snapshot is the controller's poll
format.  Both round-trip: :func:`parse_prometheus_text` recovers every
sample from the text form, and
:meth:`~repro.observability.registry.MetricsRegistry.from_snapshot`
rebuilds a registry from the JSON form.  :func:`lint_prometheus`
validates an exposition (CI runs it against the demo's output).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.observability.registry import MetricsRegistry

__all__ = [
    "lint_prometheus",
    "parse_prometheus_text",
    "to_json",
    "to_prometheus_text",
]


def _format_value(value: float) -> str:
    """Shortest faithful decimal: integers render without the '.0'."""
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _render_labels(labels: Mapping[str, str],
                   extra: tuple[str, str] | None = None) -> str:
    pairs = [(k, str(v)) for k, v in labels.items()]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"'
                     for name, value in pairs)
    return "{" + inner + "}"


def to_prometheus_text(registry: "MetricsRegistry") -> str:
    """The registry as a Prometheus text exposition (runs collectors)."""
    registry.collect()
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key in sorted(family.instruments):
            instrument = family.instruments[key]
            labels = dict(key)
            if family.kind == "histogram":
                cumulative = instrument.cumulative_counts()
                bounds = [_format_value(b) for b in family.bounds]
                bounds.append("+Inf")
                for bound, count in zip(bounds, cumulative):
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_render_labels(labels, ('le', bound))} {count}")
                lines.append(f"{family.name}_sum{_render_labels(labels)} "
                             f"{_format_value(instrument.sum)}")
                lines.append(f"{family.name}_count{_render_labels(labels)} "
                             f"{instrument.count}")
            else:
                lines.append(f"{family.name}{_render_labels(labels)} "
                             f"{_format_value(instrument.value)}")
    return "\n".join(lines) + "\n"


def to_json(registry: "MetricsRegistry", indent: int | None = None) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# Parsing (round-trips and the CI lint)
# ----------------------------------------------------------------------
def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    rest = text
    while rest:
        name, _, rest = rest.partition("=")
        if not rest.startswith('"'):
            raise ValueError(f"malformed label value near {rest!r}")
        rest = rest[1:]
        value = []
        while True:
            if not rest:
                raise ValueError("unterminated label value")
            char, rest = rest[0], rest[1:]
            if char == "\\":
                escape, rest = rest[0], rest[1:]
                value.append({"n": "\n", '"': '"', "\\": "\\"}[escape])
            elif char == '"':
                break
            else:
                value.append(char)
        labels[name.strip()] = "".join(value)
        rest = rest.lstrip(",")
    return labels


def parse_prometheus_text(text: str) -> dict:
    """Parse an exposition into ``{"types": ..., "samples": [...]}``.

    ``types`` maps family name to its declared type; ``samples`` is a
    list of ``(name, labels, value)`` triples in file order.  Raises
    :class:`ValueError` on malformed lines.
    """
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    samples: list[tuple[str, dict[str, str], float]] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if name in types:
                raise ValueError(f"duplicate TYPE line for {name!r}")
            types[name] = kind.strip()
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            labels_text, _, value_text = rest.rpartition("} ")
            labels = _parse_labels(labels_text)
        else:
            name, _, value_text = line.rpartition(" ")
            labels = {}
        value_text = value_text.strip()
        value = float("inf") if value_text == "+Inf" else float(value_text)
        samples.append((name.strip(), labels, value))
    return {"types": types, "helps": helps, "samples": samples}


def _family_of(sample_name: str, types: Mapping[str, str]) -> str | None:
    """The declaring family for a sample name, honouring histogram
    suffixes."""
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def lint_prometheus(text: str) -> list[str]:
    """Validate an exposition; returns a list of problems (empty = ok).

    Checks the properties CI gates on: every sample belongs to a
    family with a TYPE line, no family declares its TYPE twice, no
    (name, labels) sample appears twice, and histogram families carry
    their ``_sum``/``_count`` series.
    """
    problems: list[str] = []
    try:
        parsed = parse_prometheus_text(text)
    except ValueError as error:
        return [f"unparseable exposition: {error}"]
    types = parsed["types"]
    seen: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
    families_seen: set[str] = set()
    for name, labels, _value in parsed["samples"]:
        family = _family_of(name, types)
        if family is None:
            problems.append(f"sample {name!r} has no TYPE line")
            continue
        families_seen.add(family)
        key = (name, tuple(sorted(labels.items())))
        if key in seen:
            problems.append(
                f"duplicate sample {name!r} with labels {dict(labels)}")
        seen.add(key)
    for name, kind in types.items():
        if kind not in ("counter", "gauge", "histogram"):
            problems.append(f"family {name!r} has unknown type {kind!r}")
        if kind == "histogram" and name in families_seen:
            series = {s for s, _, _ in parsed["samples"]
                      if _family_of(s, types) == name}
            for suffix in ("_sum", "_count", "_bucket"):
                if f"{name}{suffix}" not in series:
                    problems.append(
                        f"histogram {name!r} missing {name}{suffix} series")
    return problems
