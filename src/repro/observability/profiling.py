"""Profiling hooks: a ``@profiled`` decorator for hot kernels.

Batch kernels (:meth:`PCAMPipeline.evaluate_batch`,
:meth:`Crossbar.matvec_batch`) carry a ``@profiled("site")``
decorator.  It is inert — one attribute probe and one global check per
call — until a :class:`Profiler` is installed, either on the owning
instance (``pipeline.profiler = ...``, what the
:class:`~repro.observability.hub.Observability` hub wires up) or
process-wide via :func:`set_default_profiler`.  Once installed, every
call observes its wall time into the shared
``profiled_wall_seconds{site=...}`` histogram.

Sim-time breakdowns come from tracing spans (the tracer clock); the
profiler is deliberately wall-only, because the question it answers is
"where does the *host* spend its time", the ROADMAP's hot-path lens.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Sequence, TypeVar

from repro.observability.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Profiler",
    "get_default_profiler",
    "profiled",
    "set_default_profiler",
]

F = TypeVar("F", bound=Callable)

#: Metric family every profiled site reports into.
PROFILE_METRIC = "profiled_wall_seconds"


class Profiler:
    """Routes ``@profiled`` wall times into a registry histogram."""

    def __init__(self, registry: MetricsRegistry,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
                 ) -> None:
        self.registry = registry
        self._buckets = tuple(buckets)
        self._histograms: dict[str, Histogram] = {}

    def record(self, site: str, wall_s: float) -> None:
        """Observe one call's wall time for a named site."""
        histogram = self._histograms.get(site)
        if histogram is None:
            histogram = self.registry.histogram(
                PROFILE_METRIC,
                "Wall-clock time of @profiled kernel calls.",
                {"site": site}, buckets=self._buckets)
            self._histograms[site] = histogram
        histogram.observe(wall_s)

    def site_histogram(self, site: str) -> Histogram | None:
        """The histogram backing one site (None before its first call)."""
        return self._histograms.get(site)


_default_profiler: Profiler | None = None


def set_default_profiler(profiler: Profiler | None) -> None:
    """Install (or clear, with None) the process-wide fallback profiler."""
    global _default_profiler
    _default_profiler = profiler


def get_default_profiler() -> Profiler | None:
    """The process-wide fallback profiler, if any."""
    return _default_profiler


def profiled(site: str) -> Callable[[F], F]:
    """Decorate a function/method so its wall time is histogrammed.

    Resolution order per call: the first positional argument's
    ``profiler`` attribute (so an instrumented instance reports to its
    hub), then the process default, else the call runs unobserved at
    the cost of two cheap checks.
    """
    if not site:
        raise ValueError("profiled() needs a non-empty site name")

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            profiler = getattr(args[0], "profiler", None) if args else None
            if profiler is None:
                profiler = _default_profiler
            if profiler is None:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                profiler.record(site, time.perf_counter() - start)

        wrapper.__profiled_site__ = site
        return wrapper  # type: ignore[return-value]

    return decorate
