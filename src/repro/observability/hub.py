"""The unified observability hub: one registry, one tracer, one clock.

:class:`Observability` ties the layer together so a caller wires a
single object into the data plane::

    from repro.observability import Observability

    obs = Observability()
    processor = AnalogPacketProcessor(observability=obs)
    ... traffic ...
    snapshot = obs.snapshot()          # controller poll (JSON-able)
    text = obs.to_prometheus()         # scrape-style export
    print(obs.tracer.format_tree())    # end-to-end packet trace

The hub owns a :class:`~repro.observability.tracing.SimClock` shared
by the tracer, so span timestamps follow the simulation timeline; the
data plane advances it via :meth:`set_time`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.observability.adapters import (
    bind_degradation,
    bind_ledger,
    bind_runtime,
    bind_telemetry,
)
from repro.observability.export import to_json, to_prometheus_text
from repro.observability.profiling import Profiler
from repro.observability.registry import MetricsRegistry
from repro.observability.tracing import SimClock, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataplane.telemetry import TelemetryCollector
    from repro.energy.ledger import EnergyLedger

__all__ = ["Observability"]


class Observability:
    """Shared metrics registry + tracer + profiler behind one handle."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 clock: SimClock | None = None,
                 tracer: Tracer | None = None,
                 profiler: Profiler | None = None,
                 max_spans: int = 4096) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.clock = clock if clock is not None else SimClock()
        self.tracer = tracer if tracer is not None else Tracer(
            clock=self.clock, registry=self.registry,
            max_spans=max_spans)
        self.profiler = profiler if profiler is not None else Profiler(
            self.registry)

    # ------------------------------------------------------------------
    # Clock & tracing conveniences
    # ------------------------------------------------------------------
    def set_time(self, now_s: float) -> None:
        """Advance the shared sim clock (no-op for non-Sim clocks)."""
        clock = self.tracer.clock
        if isinstance(clock, SimClock):
            clock.set(now_s)

    def span(self, name: str, **attributes):
        """Open a span on the shared tracer."""
        return self.tracer.span(name, **attributes)

    # ------------------------------------------------------------------
    # Source binding (adapters)
    # ------------------------------------------------------------------
    def watch_telemetry(self, collector: "TelemetryCollector",
                        namespace: str = "dataplane") -> None:
        """Fold a telemetry collector into the shared registry."""
        bind_telemetry(self.registry, collector, namespace)

    def watch_ledger(self, ledger: "EnergyLedger",
                     namespace: str = "energy") -> None:
        """Fold an energy ledger into the shared registry."""
        bind_ledger(self.registry, ledger, namespace)

    def watch_degradation(self, degrader, table: str | None = None
                          ) -> None:
        """Fold a degradable table's fallback state into the registry."""
        bind_degradation(self.registry, degrader, table)

    def watch_runtime(self, runtime, namespace: str = "runtime"
                      ) -> None:
        """Fold a staged runtime's chunk/stage/energy counters in."""
        bind_runtime(self.registry, runtime, namespace)

    # ------------------------------------------------------------------
    # Export surface
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-able snapshot of every bound source (controller poll)."""
        return self.registry.snapshot()

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the shared registry."""
        return to_prometheus_text(self.registry)

    def to_json(self, indent: int | None = None) -> str:
        """JSON document form of :meth:`snapshot`."""
        return to_json(self.registry, indent=indent)

    def __repr__(self) -> str:
        return (f"Observability(registry={self.registry!r}, "
                f"spans={len(self.tracer.finished)})")
