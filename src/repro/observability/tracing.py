"""Span-based tracing with sim-clock timestamps.

The data plane is simulated, so a span carries *two* durations: the
simulation-clock interval (``start_s``/``end_s``, read from the
tracer's clock — a :class:`SimClock` the pipeline advances with each
packet's ``now``) and the host wall time actually spent computing it
(``wall_s``).  Nesting follows the call stack: the pipeline opens a
root span per packet/batch, each stage (parser, tables, traffic
manager, queues, pCAM pipeline, crossbar kernel) opens a child, so
one packet or one batch is traceable end-to-end.

With a registry attached, every finished span feeds the shared
``span_wall_seconds``/``span_sim_seconds`` histograms labelled by span
name — the per-stage latency breakdown of the snapshot surface.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.observability.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
)

__all__ = ["SimClock", "Span", "Tracer", "maybe_span"]


class SimClock:
    """A settable simulation clock (seconds).

    The data plane calls :meth:`set` with each packet's ``now`` so
    span timestamps land on the simulation timeline rather than the
    host's.
    """

    __slots__ = ("now_s",)

    def __init__(self, start_s: float = 0.0) -> None:
        self.now_s = float(start_s)

    def set(self, now_s: float) -> None:
        """Move the clock to an absolute simulation time."""
        self.now_s = float(now_s)

    def advance(self, dt_s: float) -> None:
        """Advance the clock by a simulation interval."""
        if dt_s < 0:
            raise ValueError(f"cannot rewind the clock: {dt_s!r}")
        self.now_s += dt_s

    def __call__(self) -> float:
        return self.now_s

    def __repr__(self) -> str:
        return f"SimClock(now_s={self.now_s!r})"


@dataclass
class Span:
    """One traced operation on the simulation timeline."""

    name: str
    span_id: int
    parent_id: int | None
    start_s: float
    attributes: dict = field(default_factory=dict)
    end_s: float | None = None
    wall_s: float | None = None

    @property
    def duration_s(self) -> float:
        """Sim-clock duration (0.0 while the span is still open)."""
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    def to_dict(self) -> dict:
        """Serialisable view (trace export)."""
        return {"name": self.name, "span_id": self.span_id,
                "parent_id": self.parent_id, "start_s": self.start_s,
                "end_s": self.end_s, "wall_s": self.wall_s,
                "attributes": dict(self.attributes)}


class Tracer:
    """Creates nested spans and retains the most recent finished ones.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current (simulation)
        time; defaults to a fresh :class:`SimClock`.
    registry:
        Optional :class:`MetricsRegistry`; every finished span then
        observes its wall and sim durations into per-span-name
        histograms.
    max_spans:
        Ring-buffer depth for finished spans (old spans fall off so a
        long soak cannot grow memory without bound).
    """

    def __init__(self, clock: Callable[[], float] | None = None,
                 registry: MetricsRegistry | None = None,
                 max_spans: int = 4096) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1: {max_spans!r}")
        self.clock = clock if clock is not None else SimClock()
        self.registry = registry
        self._stack: list[Span] = []
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._next_id = 1
        self.started = 0

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Span]:
        """Open a span; nests under the innermost active span."""
        parent = self._stack[-1].span_id if self._stack else None
        opened = Span(name=name, span_id=self._next_id, parent_id=parent,
                      start_s=self.clock(), attributes=attributes)
        self._next_id += 1
        self.started += 1
        self._stack.append(opened)
        wall_start = time.perf_counter()
        try:
            yield opened
        finally:
            wall = time.perf_counter() - wall_start
            self._stack.pop()
            opened.end_s = self.clock()
            opened.wall_s = wall
            self._finished.append(opened)
            if self.registry is not None:
                labels = {"span": name}
                self.registry.histogram(
                    "span_wall_seconds",
                    "Wall-clock time spent inside each span.",
                    labels, buckets=DEFAULT_LATENCY_BUCKETS_S,
                ).observe(wall)
                self.registry.histogram(
                    "span_sim_seconds",
                    "Simulation-clock time covered by each span.",
                    labels, buckets=DEFAULT_LATENCY_BUCKETS_S,
                ).observe(opened.duration_s)

    @property
    def active(self) -> tuple[Span, ...]:
        """Open spans, outermost first."""
        return tuple(self._stack)

    # ------------------------------------------------------------------
    # Finished-span views
    # ------------------------------------------------------------------
    @property
    def finished(self) -> tuple[Span, ...]:
        """Finished spans in completion order (children before parents)."""
        return tuple(self._finished)

    def spans(self, name: str | None = None) -> tuple[Span, ...]:
        """Finished spans, optionally filtered by exact name."""
        if name is None:
            return self.finished
        return tuple(span for span in self._finished if span.name == name)

    def children_of(self, parent: Span) -> tuple[Span, ...]:
        """Finished spans directly nested under ``parent``."""
        return tuple(span for span in self._finished
                     if span.parent_id == parent.span_id)

    def to_dicts(self) -> list[dict]:
        """Finished spans as serialisable dicts (trace export)."""
        return [span.to_dict() for span in self._finished]

    def format_tree(self, limit: int | None = None) -> str:
        """Render the finished spans as an indented forest.

        Roots appear in start order; ``limit`` keeps only the last N
        finished spans (after tree assembly) to bound demo output.
        """
        spans = list(self._finished)
        if limit is not None:
            spans = spans[-limit:]
        present = {span.span_id for span in spans}
        children: dict[int | None, list[Span]] = {}
        for span in spans:
            parent = (span.parent_id
                      if span.parent_id in present else None)
            children.setdefault(parent, []).append(span)
        lines: list[str] = []

        def walk(parent: int | None, depth: int) -> None:
            for span in sorted(children.get(parent, []),
                               key=lambda s: (s.start_s, s.span_id)):
                wall = 0.0 if span.wall_s is None else span.wall_s
                lines.append(
                    f"{'  ' * depth}{span.name} "
                    f"[sim {span.start_s:.6f}s +{span.duration_s:.6f}s, "
                    f"wall {wall * 1e6:.1f}us]")
                walk(span.span_id, depth + 1)

        walk(None, 0)
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop finished spans (open spans are left to unwind)."""
        self._finished.clear()
        self.started = 0


#: A reusable no-op context manager for unobserved hot paths.
_NULL_SPAN = nullcontext()


def maybe_span(tracer: Tracer | None, name: str, **attributes):
    """``tracer.span(...)`` when a tracer is attached, else a no-op.

    Lets instrumented hot paths stay branch-cheap: without a tracer
    the cost is one truth test and a shared null context manager.
    """
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)
