"""Neuromorphic extensions (the paper's future-work direction):
associative recall, a self-learning analog AQM, and spiking blocks."""

from repro.neuro.associative import AssociativeMemory, Recall
from repro.neuro.neuromorphic import NeuromorphicAQM
from repro.neuro.spiking import (
    LIFNeuron,
    MemristiveSynapses,
    SpikingBurstDetector,
)

__all__ = [
    "AssociativeMemory",
    "LIFNeuron",
    "MemristiveSynapses",
    "NeuromorphicAQM",
    "Recall",
    "SpikingBurstDetector",
]
