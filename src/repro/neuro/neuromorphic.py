"""A self-learning neuromorphic AQM on an analog crossbar.

The paper's concluding future work: "cognitive models deployment,
e.g., neuromorphic computations, for self-learning line-rate network
functions in the data plane".  This module builds that next step on
the substrates of this repository:

* the PDP is computed by a **single-layer analog perceptron**: the
  AQM features drive a memristive crossbar (differential column pairs
  encode signed weights), the summed current passes a sigmoid sense
  stage, and the output *is* the drop probability;
* the weights **learn online** with a delta rule driven by the
  observed delay error — above the target band reinforces dropping,
  below it suppresses dropping.  No parameters are hand-programmed
  beyond the latency objective.

This trades the pCAM's engineered five-region windows for a learned
linear decision boundary — less interpretable, but self-tuning, and
computed with the same colocalized analog energy budget.
"""

from __future__ import annotations

import math

import numpy as np

from repro.crossbar.array import Crossbar
from repro.crossbar.losses import LineLossModel
from repro.device.memristor import MemristorParams
from repro.device.variability import VariabilityModel
from repro.energy.ledger import EnergyLedger
from repro.netfunc.aqm.base import AQMAlgorithm, QueueView
from repro.netfunc.aqm.derivatives import FeatureExtractor
from repro.packet import Packet

__all__ = ["NeuromorphicAQM"]


class NeuromorphicAQM(AQMAlgorithm):
    """Self-learning AQM: analog perceptron + online delta rule.

    Parameters
    ----------
    target_delay_s, max_deviation_s:
        The latency objective (only supervision signal used).
    learning_rate:
        Delta-rule step size.
    feature_order:
        Derivative order of the feature extractor (0..3).
    feature_scale_s:
        Normalisation constant for the delay-valued features.
    """

    name = "neuro-AQM"

    #: Crossbar read pulse per inference.
    READ_DURATION_S = 1e-9

    def __init__(self, target_delay_s: float = 0.020,
                 max_deviation_s: float = 0.010,
                 learning_rate: float = 0.05,
                 feature_order: int = 2,
                 feature_scale_s: float = 0.05,
                 device_params: MemristorParams | None = None,
                 variability: VariabilityModel | None = None,
                 ledger: EnergyLedger | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if target_delay_s <= 0 or max_deviation_s <= 0:
            raise ValueError("latency objective must be positive")
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive: "
                             f"{learning_rate!r}")
        self.target_delay_s = target_delay_s
        self.max_deviation_s = max_deviation_s
        self.learning_rate = learning_rate
        self.feature_scale_s = feature_scale_s
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self._rng = rng or np.random.default_rng()
        self._extractor = FeatureExtractor(order=max(feature_order, 1),
                                           tau_s=0.02)
        self._feature_order = feature_order
        # Feature vector: [bias, sojourn-ish features...].
        n_features = 2 * (feature_order + 1) + 1
        self._weights = np.zeros(n_features)
        # Warm start: weight on the level features, bias towards "no
        # drop" so an idle queue never drops while learning begins.
        self._weights[0] = -3.0
        self._weights[1] = 2.0
        self._weights[1 + feature_order + 1] = 2.0
        self._crossbar = Crossbar(
            n_rows=n_features, n_cols=2,  # differential pair
            params=device_params or MemristorParams(),
            losses=LineLossModel.ideal(),
            variability=variability or VariabilityModel.ideal(),
            rng=self._rng)
        self._sync_crossbar()
        self.inferences = 0
        self.updates = 0
        self.last_pdp = 0.0

    # ------------------------------------------------------------------
    # Weight <-> conductance mapping (differential pair)
    # ------------------------------------------------------------------
    _WEIGHT_FULL_SCALE = 8.0

    def _sync_crossbar(self) -> None:
        """Program w = G+ - G- as normalised differential conductances."""
        clipped = np.clip(self._weights, -self._WEIGHT_FULL_SCALE,
                          self._WEIGHT_FULL_SCALE)
        positive = np.clip(clipped, 0.0, None) / self._WEIGHT_FULL_SCALE
        negative = np.clip(-clipped, 0.0, None) / self._WEIGHT_FULL_SCALE
        weights = np.stack([positive, negative], axis=1)
        self._crossbar.program_normalised(weights)

    @property
    def weights(self) -> np.ndarray:
        """Copy of the learned weight vector (bias first)."""
        return self._weights.copy()

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _feature_vector(self, queue: QueueView, now: float) -> np.ndarray:
        backlog_delay = 8.0 * queue.backlog_bytes / queue.service_rate_bps
        sojourn = max(queue.last_sojourn_s, backlog_delay)
        raw = self._extractor.update(now, sojourn, backlog_delay)
        names = self._extractor.NAMES
        order = self._feature_order
        values = [1.0]
        for name in (names.sojourn[:order + 1]
                     + names.buffer[:order + 1]):
            values.append(raw[name] / self.feature_scale_s)
        return np.clip(np.asarray(values), -4.0, 4.0)

    def pdp(self, queue: QueueView, now: float) -> float:
        """Analog inference: crossbar MAC + sigmoid."""
        features = self._feature_vector(queue, now)
        # Drive the crossbar with the (bounded) feature voltages; the
        # differential column currents realise the signed dot product.
        result = self._crossbar.matvec(np.abs(features),
                                       self.READ_DURATION_S)
        self.ledger.charge("neuro_aqm.inference", result.energy_j)
        # Behavioural read-out: signed contribution = sign(feature) *
        # (G+ - G-) * |feature|; recovered from the programmed weights
        # with the crossbar's measured noise folded in via the ratio
        # of measured to ideal column currents.
        ideal = self._crossbar.ideal_matvec(np.abs(features))
        noise_scale = 1.0
        total_ideal = float(ideal.sum())
        if total_ideal > 0.0:
            noise_scale = float(result.currents_a.sum()) / total_ideal
        activation = float(np.dot(self._weights, features)) * noise_scale
        pdp = 1.0 / (1.0 + math.exp(-max(-40.0, min(40.0, activation))))
        self.inferences += 1
        self.last_pdp = pdp
        return pdp

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def _learn(self, queue: QueueView, now: float,
               observed_delay_s: float) -> None:
        """Delta rule on the delay error (runs at dequeue rate)."""
        upper = self.target_delay_s + self.max_deviation_s
        lower = self.target_delay_s - self.max_deviation_s
        if observed_delay_s > upper:
            target = 1.0
        elif observed_delay_s < lower:
            target = 0.0
        else:
            return  # inside the band: no teaching signal
        features = self._feature_vector(queue, now)
        prediction = self.last_pdp
        gradient = (target - prediction) * features
        self._weights += self.learning_rate * gradient
        np.clip(self._weights, -self._WEIGHT_FULL_SCALE,
                self._WEIGHT_FULL_SCALE, out=self._weights)
        self._sync_crossbar()
        self.updates += 1

    # ------------------------------------------------------------------
    # AQM hooks
    # ------------------------------------------------------------------
    def on_enqueue(self, packet: Packet, queue: QueueView,
                   now: float) -> bool:
        """Bernoulli drop from the learned analog PDP."""
        if queue.backlog_packets <= 2:
            return False
        pdp = self.pdp(queue, now)
        return bool(self._rng.random() < pdp)

    def on_dequeue(self, packet: Packet, queue: QueueView,
                   now: float, sojourn_s: float) -> bool:
        """Feed the delay-error teaching signal (never drops)."""
        self._learn(queue, now, sojourn_s)
        return False

    def reset(self) -> None:
        """Clear feature history and counters (weights persist)."""
        self._extractor.reset()
        self.inferences = 0
        self.updates = 0
        self.last_pdp = 0.0
