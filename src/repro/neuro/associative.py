"""Probabilistic associative memory (PAmM-style) on pCAM matches.

The paper's companion work (Saleh et al., "PAmM: Memristor-based
Probabilistic Associative Memory for Neuromorphic Network Functions"
[44]) stores key->value associations and recalls by *similarity*
rather than equality.  This module implements that abstraction on the
pCAM core: each stored key becomes a word of pCAM cells with a
receptive window around every component, and a recall returns the
stored values ranked by analog match probability — a best-effort
answer even when nothing matches deterministically (RQ1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.pcam_array import PCAMArray, PCAMWord
from repro.core.pcam_cell import PCAMParams
from repro.energy.ledger import EnergyLedger

__all__ = ["AssociativeMemory", "Recall"]


@dataclass(frozen=True)
class Recall:
    """Result of one associative recall."""

    value: object
    confidence: float
    distribution: Mapping[int, float]
    energy_j: float

    @property
    def deterministic(self) -> bool:
        """True when the best association matched exactly."""
        return self.confidence >= 0.999


class AssociativeMemory:
    """Key -> value storage with similarity-based recall.

    Parameters
    ----------
    dimensions:
        Ordered names of the key components.
    receptive_width:
        Half-width of the deterministic-match window around each
        stored component (same units as the component).
    fade_width:
        Width of the probabilistic ramp beyond the window.
    """

    def __init__(self, dimensions: Sequence[str],
                 receptive_width: float = 0.05,
                 fade_width: float = 0.25,
                 ledger: EnergyLedger | None = None) -> None:
        if not dimensions:
            raise ValueError("need at least one key dimension")
        if receptive_width <= 0 or fade_width <= 0:
            raise ValueError("widths must be positive")
        self.dimensions = tuple(dimensions)
        self.receptive_width = receptive_width
        self.fade_width = fade_width
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self._array = PCAMArray(self.dimensions)
        self._values: list[object] = []
        self._keys: list[dict[str, float]] = []

    def __len__(self) -> int:
        return len(self._values)

    def _window_for(self, centre: float) -> PCAMParams:
        return PCAMParams.canonical(
            m1=centre - self.receptive_width - self.fade_width,
            m2=centre - self.receptive_width,
            m3=centre + self.receptive_width,
            m4=centre + self.receptive_width + self.fade_width)

    def store(self, key: Mapping[str, float], value: object) -> int:
        """Associate ``value`` with ``key``; returns the slot index."""
        missing = [d for d in self.dimensions if d not in key]
        if missing:
            raise KeyError(f"key missing dimensions: {missing}")
        word = PCAMWord.from_params({
            dimension: self._window_for(float(key[dimension]))
            for dimension in self.dimensions})
        index = self._array.add(word)
        self._values.append(value)
        self._keys.append({d: float(key[d]) for d in self.dimensions})
        return index

    def recall(self, query: Mapping[str, float]) -> Recall | None:
        """The stored value whose key best matches the query.

        Returns None only when the memory is empty or *every* stored
        association has exactly zero match probability.
        """
        if not self._values:
            return None
        result = self._array.search(
            {d: float(query[d]) for d in self.dimensions})
        self.ledger.charge("associative.recall", result.energy_j)
        probabilities = result.probabilities
        total = float(probabilities.sum())
        if total <= 0.0:
            return None
        distribution = {index: float(p / total)
                        for index, p in enumerate(probabilities)
                        if p > 0.0}
        best = int(np.argmax(probabilities))
        return Recall(value=self._values[best],
                      confidence=float(probabilities[best]),
                      distribution=distribution,
                      energy_j=result.energy_j)

    def stored_key(self, index: int) -> dict[str, float]:
        """The key stored in one slot (for inspection)."""
        if not 0 <= index < len(self._keys):
            raise IndexError(f"slot {index} out of range")
        return dict(self._keys[index])
