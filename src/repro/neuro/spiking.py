"""Spiking building blocks: LIF neurons with memristive synapses.

The smallest credible slice of the "brain-inspired Cognitive models
using neuromorphic computations" the paper's introduction motivates:
leaky integrate-and-fire neurons whose synaptic weights live in
memristor conductances and adapt with a simplified STDP rule.  Used by
the burst-detector example as an in-network anomaly signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.device.memristor import MemristorParams, NbSTOMemristor
from repro.device.variability import VariabilityModel

__all__ = ["LIFNeuron", "MemristiveSynapses", "SpikingBurstDetector"]


@dataclass
class LIFNeuron:
    """A leaky integrate-and-fire unit.

    Membrane potential decays with time constant ``tau_s``; an input
    current integrates onto it; crossing ``threshold`` emits a spike
    and resets the potential (with a refractory period).
    """

    tau_s: float = 0.02
    threshold: float = 1.0
    reset_potential: float = 0.0
    refractory_s: float = 0.002

    def __post_init__(self) -> None:
        if self.tau_s <= 0 or self.refractory_s < 0:
            raise ValueError("invalid LIF time constants")
        self.potential = self.reset_potential
        self._last_time: float | None = None
        self._refractory_until = -math.inf
        self.spikes = 0

    def step(self, time_s: float, input_current: float) -> bool:
        """Advance to ``time_s`` with the given input; True = spike."""
        if self._last_time is not None:
            dt = time_s - self._last_time
            if dt < 0:
                raise ValueError("time must be non-decreasing")
            self.potential *= math.exp(-dt / self.tau_s)
        self._last_time = time_s
        if time_s < self._refractory_until:
            return False
        self.potential += input_current
        if self.potential >= self.threshold:
            self.potential = self.reset_potential
            self._refractory_until = time_s + self.refractory_s
            self.spikes += 1
            return True
        return False


class MemristiveSynapses:
    """A bank of memristor-backed synaptic weights with STDP.

    Each synapse's weight is the normalised conductance of one
    simulated device; potentiation/depression move the device state
    with programming pulses, so learning costs real (simulated)
    energy.
    """

    def __init__(self, n_synapses: int,
                 initial_weight: float = 0.5,
                 params: MemristorParams | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if n_synapses < 1:
            raise ValueError(f"need at least one synapse: {n_synapses!r}")
        if not 0.0 <= initial_weight <= 1.0:
            raise ValueError("initial weight must be in [0, 1]")
        self._devices = [
            NbSTOMemristor(params=params or MemristorParams(),
                           state=initial_weight,
                           variability=VariabilityModel.ideal(),
                           rng=rng)
            for _ in range(n_synapses)]
        self.learning_energy_j = 0.0

    def __len__(self) -> int:
        return len(self._devices)

    @property
    def weights(self) -> np.ndarray:
        """Normalised synaptic weights (device states)."""
        return np.array([device.state for device in self._devices])

    def weighted_sum(self, inputs: np.ndarray) -> float:
        """The synaptic drive for a binary/graded input vector."""
        x = np.asarray(inputs, dtype=float)
        if x.shape != (len(self._devices),):
            raise ValueError(
                f"expected {len(self._devices)} inputs, got {x.shape}")
        return float(np.dot(self.weights, x))

    def potentiate(self, index: int, amount: float = 0.02) -> None:
        """Strengthen one synapse (pre-before-post STDP branch)."""
        self._adjust(index, amount)

    def depress(self, index: int, amount: float = 0.02) -> None:
        """Weaken one synapse (post-before-pre STDP branch)."""
        self._adjust(index, -amount)

    def _adjust(self, index: int, delta: float) -> None:
        if not 0 <= index < len(self._devices):
            raise IndexError(f"synapse {index} out of range")
        device = self._devices[index]
        target = min(1.0, max(0.0, device.state + delta))
        self.learning_energy_j += device.program_state(
            target, tolerance=0.005)


class SpikingBurstDetector:
    """A one-neuron burst detector over packet arrivals.

    Every arrival injects charge through a memristive synapse; a
    sustained arrival burst drives the LIF neuron across threshold.
    The spike rate is the anomaly signal; a homeostatic STDP-style
    rule keeps the neuron quiet at the nominal rate.
    """

    def __init__(self, nominal_rate_pps: float,
                 sensitivity: float = 3.0,
                 rng: np.random.Generator | None = None) -> None:
        if nominal_rate_pps <= 0:
            raise ValueError("nominal rate must be positive")
        if sensitivity <= 1.0:
            raise ValueError("sensitivity must exceed 1")
        self.nominal_rate_pps = nominal_rate_pps
        # Membrane leak calibrated so that `sensitivity` x nominal
        # arrivals within one tau cross the threshold.
        self._tau = 10.0 / nominal_rate_pps
        self._neuron = LIFNeuron(tau_s=self._tau, threshold=1.0,
                                 refractory_s=1.0 / nominal_rate_pps)
        self._synapses = MemristiveSynapses(1, initial_weight=0.5,
                                            rng=rng)
        self._charge = 1.0 / (sensitivity * nominal_rate_pps * self._tau)
        self.arrivals = 0

    @property
    def spike_count(self) -> int:
        """Total spikes emitted so far."""
        return self._neuron.spikes

    @property
    def synaptic_weight(self) -> float:
        """Current weight of the input synapse."""
        return float(self._synapses.weights[0])

    def on_arrival(self, time_s: float) -> bool:
        """Feed one packet arrival; True when the neuron spikes."""
        self.arrivals += 1
        drive = self._charge * 2.0 * self._synapses.weighted_sum(
            np.ones(1))
        spiked = self._neuron.step(time_s, drive)
        if spiked:
            # Homeostasis: spiking depresses the synapse slightly so
            # a persistent overload habituates instead of saturating.
            self._synapses.depress(0, amount=0.01)
        return spiked
