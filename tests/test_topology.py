"""The dumbbell experiment harness."""

import pytest

from repro.netfunc.aqm.base import TailDropAQM
from repro.simnet.topology import DumbbellExperiment, overload_profile


def test_overload_profile_window():
    profile = overload_profile(2.0, 4.0, 1.5)
    assert profile(1.0) == 1.0
    assert profile(2.0) == 1.5
    assert profile(3.9) == 1.5
    assert profile(4.0) == 1.0


def test_overload_profile_validation():
    with pytest.raises(ValueError):
        overload_profile(4.0, 2.0)
    with pytest.raises(ValueError):
        overload_profile(1.0, 2.0, overload_factor=0.0)


def test_underloaded_queue_has_small_delay():
    experiment = DumbbellExperiment(n_flows=4, load=0.5,
                                    service_rate_bps=40e6,
                                    duration_s=2.0, seed=1)
    result = experiment.run(TailDropAQM())
    assert result.recorder.delivered > 1000
    assert result.mean_delay_ms < 5.0
    assert result.recorder.dropped == 0


def test_overloaded_queue_delay_grows():
    experiment = DumbbellExperiment(n_flows=4, load=1.5,
                                    service_rate_bps=20e6,
                                    capacity_packets=4000,
                                    duration_s=3.0, seed=1)
    result = experiment.run(TailDropAQM())
    delays = result.recorder.sojourn_times
    early = sum(delays[:200]) / 200
    late = sum(delays[-200:]) / 200
    assert late > 10 * early


def test_per_flow_rate_splits_load():
    experiment = DumbbellExperiment(n_flows=10, load=1.0,
                                    service_rate_bps=80e6,
                                    packet_size_bytes=1000)
    assert experiment.per_flow_rate_pps == pytest.approx(1000.0)


def test_seed_reproducibility():
    experiment = DumbbellExperiment(n_flows=2, load=0.8,
                                    duration_s=1.0, seed=9)
    a = experiment.run(TailDropAQM())
    b = experiment.run(TailDropAQM())
    assert a.recorder.delivered == b.recorder.delivered
    assert a.recorder.sojourn_times == b.recorder.sojourn_times


def test_priorities_stamped_on_flows():
    experiment = DumbbellExperiment(n_flows=2, load=0.5,
                                    duration_s=0.5,
                                    priorities=(0, 1), seed=2)
    result = experiment.run(TailDropAQM())
    assert set(result.recorder.delivered_priorities) == {0, 1}


def test_validation():
    with pytest.raises(ValueError):
        DumbbellExperiment(n_flows=0)
    with pytest.raises(ValueError):
        DumbbellExperiment(load=0.0)
    with pytest.raises(ValueError):
        DumbbellExperiment(n_flows=3, priorities=(0, 1))
