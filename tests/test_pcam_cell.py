"""The pCAM cell: the paper's five-region transfer function."""

import numpy as np
import pytest

from repro.core.pcam_cell import (
    MatchRegion,
    PCAMCell,
    PCAMParams,
    prog_pcam,
)

# The paper's RQ1 example: stored policy 2.5 V, deterministic match
# around it, mismatch below 1.5 V, probabilistic in between.
PAPER_PARAMS = prog_pcam(m1=1.5, m2=2.4, m3=2.6, m4=3.5)


class TestParams:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            PCAMParams(m1=2.0, m2=1.0, m3=3.0, m4=4.0, sa=1.0, sb=-1.0)
        with pytest.raises(ValueError):
            PCAMParams(m1=1.0, m2=3.0, m3=2.0, m4=4.0, sa=1.0, sb=-1.0)

    def test_equal_m2_m3_allowed(self):
        # A triangle response (no plateau) is legal.
        params = PCAMParams.canonical(m1=0.0, m2=1.0, m3=1.0, m4=2.0)
        assert params.m2 == params.m3

    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            PCAMParams.canonical(0, 1, 2, 3, pmax=1.2)
        with pytest.raises(ValueError):
            PCAMParams.canonical(0, 1, 2, 3, pmin=-0.1)
        with pytest.raises(ValueError):
            PCAMParams.canonical(0, 1, 2, 3, pmax=0.2, pmin=0.5)

    def test_canonical_slopes(self):
        params = PCAMParams.canonical(0.0, 2.0, 3.0, 4.0)
        assert params.sa == pytest.approx(0.5)
        assert params.sb == pytest.approx(-1.0)
        assert params.is_continuous

    def test_prog_pcam_defaults_to_canonical(self):
        params = prog_pcam(0.0, 1.0, 2.0, 3.0)
        assert params.is_continuous

    def test_prog_pcam_custom_slopes_kept(self):
        params = prog_pcam(0.0, 1.0, 2.0, 3.0, sa=5.0, sb=-5.0)
        assert params.sa == 5.0
        assert not params.is_continuous

    def test_shifted_translates_thresholds(self):
        shifted = PAPER_PARAMS.shifted(0.5)
        assert shifted.m1 == pytest.approx(2.0)
        assert shifted.m4 == pytest.approx(4.0)
        assert shifted.sa == PAPER_PARAMS.sa

    def test_widened_scales_about_centre(self):
        widened = PAPER_PARAMS.widened(2.0)
        centre = 0.5 * (PAPER_PARAMS.m2 + PAPER_PARAMS.m3)
        assert widened.m2 == pytest.approx(
            centre + (PAPER_PARAMS.m2 - centre) * 2.0)
        assert widened.m4 > PAPER_PARAMS.m4

    def test_widened_validates_factor(self):
        with pytest.raises(ValueError):
            PAPER_PARAMS.widened(0.0)

    def test_window_and_support(self):
        assert PAPER_PARAMS.match_window == (2.4, 2.6)
        assert PAPER_PARAMS.support == (1.5, 3.5)


class TestFiveRegions:
    def setup_method(self):
        self.cell = PCAMCell(PAPER_PARAMS)

    def test_deterministic_mismatch_below_m1(self):
        assert self.cell.response(0.5) == 0.0
        assert self.cell.response(1.5) == 0.0

    def test_deterministic_match_inside_window(self):
        assert self.cell.response(2.4) == 1.0
        assert self.cell.response(2.5) == 1.0
        assert self.cell.response(2.6) == 1.0

    def test_deterministic_mismatch_above_m4(self):
        assert self.cell.response(3.5) == 0.0
        assert self.cell.response(9.0) == 0.0

    def test_rising_ramp_midpoint(self):
        midpoint = 0.5 * (1.5 + 2.4)
        assert self.cell.response(midpoint) == pytest.approx(0.5)

    def test_falling_ramp_midpoint(self):
        midpoint = 0.5 * (2.6 + 3.5)
        assert self.cell.response(midpoint) == pytest.approx(0.5)

    def test_response_continuous_at_boundaries(self):
        for boundary in (1.5, 2.4, 2.6, 3.5):
            below = self.cell.response(boundary - 1e-9)
            above = self.cell.response(boundary + 1e-9)
            assert below == pytest.approx(above, abs=1e-6)

    def test_region_classification(self):
        assert self.cell.region(1.0) is MatchRegion.MISMATCH_LOW
        assert self.cell.region(2.0) is MatchRegion.PROBABLE_RISING
        assert self.cell.region(2.5) is MatchRegion.MATCH
        assert self.cell.region(3.0) is MatchRegion.PROBABLE_FALLING
        assert self.cell.region(4.0) is MatchRegion.MISMATCH_HIGH

    def test_deterministic_regions_flagged(self):
        assert MatchRegion.MATCH.deterministic
        assert MatchRegion.MISMATCH_LOW.deterministic
        assert not MatchRegion.PROBABLE_RISING.deterministic

    def test_deterministic_match_view(self):
        assert self.cell.deterministic_match(2.5) is True
        assert self.cell.deterministic_match(1.0) is False
        assert self.cell.deterministic_match(2.0) is None

    def test_vectorised_matches_scalar(self):
        inputs = np.linspace(1.0, 4.0, 31)
        array = self.cell.response_array(inputs)
        scalar = [self.cell.response(float(v)) for v in inputs]
        np.testing.assert_allclose(array, scalar)

    def test_callable_protocol(self):
        assert self.cell(2.5) == self.cell.response(2.5)

    def test_evaluation_counter(self):
        cell = PCAMCell(PAPER_PARAMS)
        cell.response(1.0)
        cell.response_array(np.zeros(5))
        assert cell.evaluations == 6


class TestCustomParameters:
    def test_nonzero_pmin_floor(self):
        cell = PCAMCell(prog_pcam(0, 1, 2, 3, pmin=0.2, pmax=0.9))
        assert cell.response(-1.0) == pytest.approx(0.2)
        assert cell.response(1.5) == pytest.approx(0.9)

    def test_custom_slope_clipped_to_rails(self):
        # A steeper-than-canonical slope saturates at pmax early.
        params = prog_pcam(0.0, 2.0, 3.0, 4.0, sa=3.0)
        cell = PCAMCell(params)
        assert cell.response(1.8) == 1.0

    def test_unclipped_raw_pseudocode_response(self):
        params = prog_pcam(0.0, 2.0, 3.0, 4.0, sa=3.0)
        raw = PCAMCell(params, clip_to_rails=False)
        assert raw.response(1.8) > 1.0

    def test_reprogramming_changes_response(self):
        cell = PCAMCell(prog_pcam(0, 1, 2, 3))
        before = cell.response(2.5)
        cell.program(prog_pcam(2.4, 2.45, 2.55, 2.6))
        after = cell.response(2.5)
        assert before < 1.0
        assert after == 1.0


class TestNonlinearExtension:
    """Future-work mode: non-linear match functions (Sec. 8)."""

    @pytest.mark.parametrize("shape", ["sigmoid", "gaussian"])
    def test_deterministic_regions_preserved(self, shape):
        cell = PCAMCell(PAPER_PARAMS, nonlinearity=shape)
        assert cell.response(2.5) == pytest.approx(1.0, abs=1e-6)
        assert cell.response(1.2) == pytest.approx(0.0, abs=1e-6)

    @pytest.mark.parametrize("shape", ["sigmoid", "gaussian"])
    def test_ramps_monotone(self, shape):
        cell = PCAMCell(PAPER_PARAMS, nonlinearity=shape)
        rising = cell.response_array(np.linspace(1.5, 2.4, 21))
        assert np.all(np.diff(rising) >= -1e-9)

    def test_sigmoid_differs_from_linear(self):
        linear = PCAMCell(PAPER_PARAMS)
        sigmoid = PCAMCell(PAPER_PARAMS, nonlinearity="sigmoid")
        x = 1.7
        assert sigmoid.response(x) != pytest.approx(linear.response(x),
                                                    abs=1e-3)

    def test_requires_canonical_slopes(self):
        params = prog_pcam(0, 1, 2, 3, sa=9.0)
        with pytest.raises(ValueError):
            PCAMCell(params, nonlinearity="sigmoid")

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            PCAMCell(PAPER_PARAMS, nonlinearity="cubic")


def test_repr_shows_thresholds():
    assert "2.4" in repr(PCAMCell(PAPER_PARAMS))
