"""TCAM multi-pattern payload scanning."""

import pytest

from repro.netfunc.pattern_match import (
    Match,
    PatternMatcher,
    compile_pattern,
)
from repro.tcam.tcam import key_from_int


class TestCompilePattern:
    def test_literal_bits_msb_first(self):
        pattern = compile_pattern(b"\x80", window_bytes=1)
        assert str(pattern) == "10000000"

    def test_wildcard_byte_all_dont_care(self):
        pattern = compile_pattern(b"?", window_bytes=1)
        assert str(pattern) == "x" * 8

    def test_tail_padding_dont_care(self):
        pattern = compile_pattern(b"\xff", window_bytes=2)
        assert str(pattern) == "1" * 8 + "x" * 8

    def test_pattern_too_long_rejected(self):
        with pytest.raises(ValueError):
            compile_pattern(b"abc", window_bytes=2)

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            compile_pattern(b"", window_bytes=2)


class TestPatternMatcher:
    def make(self, **kwargs):
        matcher = PatternMatcher(window_bytes=8, **kwargs)
        matcher.add_pattern(b"attack")
        matcher.add_pattern(b"GET /?")     # wildcard after the space
        matcher.add_pattern(b"\x90\x90\x90\x90")
        return matcher

    def test_finds_literal_at_any_offset(self):
        matcher = self.make()
        matches = matcher.scan(b"benign data attack vector")
        assert any(m.pattern == b"attack" and m.offset == 12
                   for m in matches)

    def test_wildcard_matches_any_byte(self):
        matcher = self.make()
        assert matcher.contains(b"GET /a HTTP/1.1")
        assert matcher.contains(b"GET /Z HTTP/1.1")

    def test_nop_sled_detected(self):
        matcher = self.make()
        matches = matcher.scan(b"xx\x90\x90\x90\x90\x90yy")
        sled_hits = [m for m in matches
                     if m.pattern == b"\x90\x90\x90\x90"]
        assert len(sled_hits) == 2  # offsets 2 and 3

    def test_clean_payload_no_matches(self):
        matcher = self.make()
        assert matcher.scan(b"perfectly ordinary text") == []
        assert not matcher.contains(b"nothing here")

    def test_match_near_end_of_payload(self):
        matcher = self.make()
        assert matcher.contains(b"ends with attack")

    def test_pattern_spanning_past_end_not_reported(self):
        matcher = self.make()
        # "attac" is a truncated signature: must not match.
        assert not matcher.contains(b"ends with attac")

    def test_multiple_signatures_in_one_scan(self):
        matcher = self.make()
        payload = b"GET /x attack \x90\x90\x90\x90"
        found = {m.pattern for m in matcher.scan(payload)}
        assert found == {b"attack", b"GET /?",
                         b"\x90\x90\x90\x90"}

    def test_string_patterns_accepted(self):
        matcher = PatternMatcher(window_bytes=4)
        matcher.add_pattern("evil")
        assert matcher.contains(b"so evil")

    def test_scanning_charges_energy(self):
        matcher = self.make()
        matcher.scan(b"some payload")
        assert matcher.search_energy_j > 0.0

    def test_transistor_backing_agrees_with_memristor(self):
        memristor = self.make(use_memristor_tcam=True)
        transistor = self.make(use_memristor_tcam=False)
        payload = b"GET /y then attack and \x90\x90\x90\x90"
        assert ([(m.offset, m.pattern_index)
                 for m in memristor.scan(payload)]
                == [(m.offset, m.pattern_index)
                    for m in transistor.scan(payload)])

    def test_empty_matcher_scans_nothing(self):
        matcher = PatternMatcher(window_bytes=4)
        assert matcher.scan(b"data") == []

    def test_window_validated(self):
        with pytest.raises(ValueError):
            PatternMatcher(window_bytes=0)
