"""Cross-module integration tests: the paper's systems working together."""

import numpy as np
import pytest

from repro.analysis.figures import figure8_series
from repro.analysis.stats import banded_fraction
from repro.core.calibration import analog_read_energy_j
from repro.core.compiler import (
    FunctionKind,
    NetworkFunctionSpec,
    PrecisionClass,
)
from repro.control import CognitiveNetworkController
from repro.energy.ledger import EnergyLedger
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.netfunc.aqm.base import TailDropAQM
from repro.simnet.topology import DumbbellExperiment, overload_profile


class TestFigure8EndToEnd:
    @pytest.fixture(scope="class")
    def series(self):
        return figure8_series(duration_s=6.0, overload=(1.5, 5.0, 1.6),
                              service_rate_bps=30e6, seed=3)

    def test_no_aqm_delay_explodes_during_overload(self, series):
        overload_bins = (series.time_s >= 2.5) & (series.time_s < 5.0)
        delays = series.no_aqm_delay_ms[overload_bins]
        delays = delays[~np.isnan(delays)]
        assert delays.mean() > 3 * (series.target_delay_ms
                                    + series.max_deviation_ms)

    def test_pcam_holds_programmed_band(self, series):
        overload_bins = (series.time_s >= 2.5) & (series.time_s < 5.0)
        delays = series.pcam_delay_ms[overload_bins]
        delays = delays[~np.isnan(delays)]
        lower = series.target_delay_ms - series.max_deviation_ms
        upper = series.target_delay_ms + series.max_deviation_ms
        assert banded_fraction(delays, lower, upper) > 0.6
        assert delays.max() < upper * 1.5

    def test_pcam_drops_selectively(self, series):
        assert series.pcam_drops > 0

    def test_band_parameters_surface(self, series):
        assert series.target_delay_ms == pytest.approx(20.0)
        assert series.max_deviation_ms == pytest.approx(10.0)


class TestCalibratedEnergyPath:
    def test_aqm_energy_calibrated_from_dataset(self, small_dataset):
        ledger = EnergyLedger()
        per_cell = analog_read_energy_j(small_dataset)
        aqm = PCAMAQM(ledger=ledger, energy_per_cell_j=per_cell,
                      rng=np.random.default_rng(1))
        experiment = DumbbellExperiment(n_flows=2, load=1.2,
                                        service_rate_bps=10e6,
                                        duration_s=1.0, seed=4)
        experiment.run(aqm)
        searches = ledger.account("pcam_aqm.search")
        assert searches > 0.0
        # Per-packet analog search cost stays far below one digital
        # TCAM search of comparable width (Table 1's point).
        per_eval = searches / aqm.evaluations
        digital_equivalent = 0.58e-15 * 16
        assert per_eval < digital_equivalent


class TestControllerDrivenAQM:
    def test_controller_places_and_reprograms_aqm(self):
        controller = CognitiveNetworkController()
        aqm = PCAMAQM(rng=np.random.default_rng(2))
        controller.register(NetworkFunctionSpec(
            "aqm", PrecisionClass.LOW, FunctionKind.COGNITIVE))
        controller.register(NetworkFunctionSpec(
            "ip_lookup", PrecisionClass.HIGH,
            FunctionKind.DETERMINISTIC))
        controller.compile()
        controller.attach_pipeline("aqm", "pdp", aqm.pipeline)

        from repro.core.pcam_cell import prog_pcam
        from repro.core.calibration import scale_params
        new_params = scale_params(
            prog_pcam(0.005, 0.02, 0.16, 0.19),
            aqm._scalers["sojourn_time"])
        controller.reprogram("aqm", "pdp", "sojourn_time", new_params)
        assert controller.reprogram_events == 1
        assert aqm.pipeline.stage("sojourn_time").params.m1 == \
            pytest.approx(new_params.m1)


class TestDerivativeAblationShape:
    def test_higher_order_features_do_not_hurt_delay_control(self):
        experiment = DumbbellExperiment(
            n_flows=4, load=0.9, service_rate_bps=20e6,
            capacity_packets=1500, duration_s=4.0,
            rate_fn=overload_profile(1.0, 3.5, 1.6), seed=8)
        results = {}
        for order in (0, 3):
            aqm = PCAMAQM(order=order,
                          rng=np.random.default_rng(order))
            summary = experiment.run(aqm).recorder.summary()
            results[order] = summary
        for order, summary in results.items():
            assert summary.mean_delay_s < 0.035, order


class TestBurstyTrafficPath:
    @staticmethod
    def _run(aqm):
        from repro.simnet.engine import Simulator
        from repro.simnet.flows import ParetoBurstGenerator
        from repro.simnet.queue_sim import BottleneckQueue

        sim = Simulator()
        queue = BottleneckQueue(sim, service_rate_bps=20e6,
                                capacity_packets=500, aqm=aqm)
        generator = ParetoBurstGenerator(
            burst_rate_hz=30.0, mean_burst_packets=100.0,
            packet_size_bytes=1000, priority=1,
            rng=np.random.default_rng(9))
        generator.attach(sim, queue.enqueue)
        sim.run_until(5.0)
        return queue.recorder.summary()

    def test_pareto_bursts_managed_better_than_tail_drop(self):
        # Millisecond-scale Pareto bursts outrun any enqueue-time AQM
        # momentarily, so the bar is relative: the analog AQM must
        # still clearly beat the unmanaged queue on the same trace.
        managed = self._run(PCAMAQM(rng=np.random.default_rng(6)))
        unmanaged = self._run(TailDropAQM())
        assert managed.delivered > 1000
        assert managed.mean_delay_s < 0.6 * unmanaged.mean_delay_s
        assert managed.p95_delay_s < unmanaged.p95_delay_s
