"""Analog match-action tables and stored-action memory."""

import pytest

from repro.core.match_action import (
    AnalogMatchActionTable,
    StoredActionMemory,
)
from repro.core.pcam_cell import prog_pcam
from repro.core.pcam_pipeline import PCAMPipeline


def make_pipeline():
    return PCAMPipeline.from_params({
        "sojourn_time": prog_pcam(0.0, 1.0, 3.0, 4.0),
        "buffer_size": prog_pcam(0.0, 1.0, 3.0, 4.0),
    })


class TestStoredActionMemory:
    def test_fetch_by_range(self):
        memory = StoredActionMemory()
        memory.store(0.0, 0.5, "forward")
        memory.store(0.5, 1.01, "mark_ecn")
        assert memory.fetch(0.2) == "forward"
        assert memory.fetch(0.7) == "mark_ecn"
        assert memory.fetch(1.0) == "mark_ecn"

    def test_fetch_outside_ranges_none(self):
        memory = StoredActionMemory()
        memory.store(0.2, 0.4, "x")
        assert memory.fetch(0.1) is None
        assert memory.fetch(0.5) is None

    def test_overlap_rejected(self):
        memory = StoredActionMemory()
        memory.store(0.0, 0.5, "a")
        with pytest.raises(ValueError):
            memory.store(0.4, 0.6, "b")

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            StoredActionMemory().store(0.5, 0.5, "x")

    def test_len(self):
        memory = StoredActionMemory()
        memory.store(0, 1, "a")
        assert len(memory) == 1


class TestAnalogMatchActionTable:
    def test_reads_must_match_pipeline_stages(self):
        with pytest.raises(ValueError):
            AnalogMatchActionTable("t", ("wrong",), make_pipeline())

    def test_process_returns_pipeline_output(self):
        table = AnalogMatchActionTable(
            "analogAQM", ("sojourn_time", "buffer_size"),
            make_pipeline())
        result = table.process({"sojourn_time": 2.0, "buffer_size": 2.0,
                                "extra": 99.0})
        assert result.output == pytest.approx(1.0)
        assert result.features == {"sojourn_time": 2.0,
                                   "buffer_size": 2.0}
        assert table.lookups == 1

    def test_missing_read_field_rejected(self):
        table = AnalogMatchActionTable(
            "t", ("sojourn_time", "buffer_size"), make_pipeline())
        with pytest.raises(KeyError):
            table.process({"sojourn_time": 1.0})

    def test_action_invoked_with_output(self):
        seen = []

        def action(table, output, features):
            seen.append(output)
            return "updated"

        table = AnalogMatchActionTable(
            "t", ("sojourn_time", "buffer_size"), make_pipeline(),
            action=action)
        result = table.process({"sojourn_time": 2.0, "buffer_size": 2.0})
        assert seen == [pytest.approx(1.0)]
        assert result.action_taken == "updated"

    def test_indirect_action_fetch(self):
        memory = StoredActionMemory()
        memory.store(0.9, 1.01, "drop_aggressively")
        table = AnalogMatchActionTable(
            "t", ("sojourn_time", "buffer_size"), make_pipeline(),
            action_memory=memory)
        result = table.process({"sojourn_time": 2.0, "buffer_size": 2.0})
        assert result.fetched_action == "drop_aggressively"

    def test_name_required(self):
        with pytest.raises(ValueError):
            AnalogMatchActionTable(
                "", ("sojourn_time", "buffer_size"), make_pipeline())

    def test_repr(self):
        table = AnalogMatchActionTable(
            "analogAQM", ("sojourn_time", "buffer_size"),
            make_pipeline())
        assert "analogAQM" in repr(table)
