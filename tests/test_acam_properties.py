"""One-shot aCAM tree inference must equal the digital traversal.

The differential battery behind the compiler's exactness claim: for
*random* tree shapes, thresholds, analog margins and query batches —
including queries pinned exactly on split thresholds — the compiled
bank's single-search classification agrees with
``CARTTree.predict``/``predict_leaves`` leaf for leaf.  The same
discipline as ``test_batch_equivalence.py`` covers the bank itself:
``search`` is literally a batch of one, and chunked prediction is
invariant to the chunk size.

Strategy bounds are part of the contract: thresholds live in
[-50, 50], boundary probes sit at least 1e-6 away from thresholds,
and margins are 0 or in [0.1, 3] with sharpness in [0.5, 4] — so a
margin ramp's response at any probed point stays strictly below the
deterministic 1.0 in float64 and can never outrank a true match.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.acam import ACAMArray, ACAMDecisionTree, ACAMInterval
from repro.netfunc.decision_tree import CARTTree, TreeNode

MAX_DEPTH = 5
N_LABELS = 6

thresholds = st.floats(-50.0, 50.0, allow_nan=False,
                       allow_infinity=False)
margins = st.one_of(st.just(0.0), st.floats(0.1, 3.0))
sharpnesses = st.floats(0.5, 4.0)


@st.composite
def tree_nodes(draw, n_features: int, depth: int,
               bounds: tuple[tuple[float, float], ...]) -> TreeNode:
    """Random trees whose every leaf is reachable.

    Thresholds are drawn inside the split feature's accumulated
    window, exactly as a fitted CART's midpoints are — an arbitrary
    threshold could carve an empty (lo > hi) box, which no learner
    emits and the compiler rejects.
    """
    make_leaf = depth >= MAX_DEPTH or draw(
        st.integers(0, 2 + depth)) > 1
    if make_leaf:
        return TreeNode(prediction=draw(st.integers(0, N_LABELS - 1)))
    feature = draw(st.integers(0, n_features - 1))
    lo, hi = bounds[feature]
    threshold = draw(st.floats(lo, hi, allow_nan=False))
    left = list(bounds)
    left[feature] = (lo, threshold)
    right = list(bounds)
    right[feature] = (threshold, hi)
    return TreeNode(
        feature=feature,
        threshold=threshold,
        left=draw(tree_nodes(n_features, depth + 1, tuple(left))),
        right=draw(tree_nodes(n_features, depth + 1, tuple(right))))


@st.composite
def fitted_trees(draw) -> CARTTree:
    n_features = draw(st.integers(1, 4))
    bounds = ((-50.0, 50.0),) * n_features
    return CARTTree.from_root(draw(tree_nodes(n_features, 0, bounds)),
                              n_features=n_features)


def tree_thresholds(tree: CARTTree) -> list[float]:
    found: list[float] = []

    def walk(node: TreeNode) -> None:
        if node.is_leaf:
            return
        found.append(float(node.threshold))
        walk(node.left)
        walk(node.right)

    walk(tree.root)
    return found


@st.composite
def query_batches(draw, tree: CARTTree) -> np.ndarray:
    """Queries biased onto split thresholds and their 1e-6 flanks.

    The resolution contract is enforced here: every component is
    either *exactly* a split threshold or at least 1e-6 away from
    all of them.  A value a hairline (say 1e-114) outside a window
    is indistinguishable from the bound itself in float64 — the
    ramp response rounds to 1.0 — and no analog hardware resolves
    it either, so such queries are outside the exactness claim.
    """
    pins = tree_thresholds(tree) or [0.0]

    def resolvable(v: float) -> bool:
        return all(v == t or abs(v - t) >= 1e-6 for t in pins)

    value = st.one_of(
        st.floats(-60.0, 60.0, allow_nan=False, allow_infinity=False),
        st.sampled_from(pins),
        st.sampled_from(pins).map(lambda t: t + 1e-6),
        st.sampled_from(pins).map(lambda t: t - 1e-6),
    ).filter(resolvable)
    n = draw(st.integers(1, 24))
    return np.array([[draw(value) for _ in range(tree.n_features)]
                     for _ in range(n)])


@settings(max_examples=150, deadline=None)
@given(data=st.data())
def test_one_shot_inference_equals_digital_traversal(data):
    tree = data.draw(fitted_trees())
    batch = data.draw(query_batches(tree))
    margin = data.draw(margins)
    acam = ACAMDecisionTree(
        tree, [f"f{j}" for j in range(tree.n_features)],
        margin=margin, sharpness=data.draw(sharpnesses))
    np.testing.assert_array_equal(acam.predict_leaves(batch),
                                  tree.predict_leaves(batch))
    np.testing.assert_array_equal(acam.predict_batch(batch),
                                  tree.predict(batch))


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_prediction_is_chunk_size_invariant(data):
    tree = data.draw(fitted_trees())
    batch = data.draw(query_batches(tree))
    acam = ACAMDecisionTree(
        tree, [f"f{j}" for j in range(tree.n_features)],
        margin=data.draw(margins))
    whole = acam.predict_leaves(batch)
    chunk = data.draw(st.integers(1, len(batch) + 3))
    np.testing.assert_array_equal(
        acam.predict_leaves(batch, chunk_size=chunk), whole)


@st.composite
def interval_banks(draw) -> ACAMArray:
    n_fields = draw(st.integers(1, 3))
    bank = ACAMArray([f"f{j}" for j in range(n_fields)])
    bound = st.one_of(st.none(), thresholds)
    for _ in range(draw(st.integers(1, 6))):
        row = []
        for _ in range(n_fields):
            lo, hi = draw(bound), draw(bound)
            if lo is not None and hi is not None and lo > hi:
                lo, hi = hi, lo
            row.append(ACAMInterval(lo=lo, hi=hi,
                                    margin=draw(margins),
                                    sharpness=draw(sharpnesses)))
        bank.add_row(row)
    return bank


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_scalar_search_is_a_batch_of_one(data):
    bank = data.draw(interval_banks())
    n = data.draw(st.integers(1, 16))
    queries = np.array([
        [data.draw(st.floats(-60.0, 60.0, allow_nan=False))
         for _ in bank.fields] for _ in range(n)])
    batch = bank.search_batch(queries)
    for i in range(n):
        scalar = bank.search(queries[i])
        np.testing.assert_allclose(scalar.probabilities,
                                   batch.probabilities[i],
                                   rtol=1e-9, atol=0.0)
        assert scalar.best_row == batch.best_rows[i]
        assert scalar.best_probability == batch.best_probabilities[i]
        assert scalar.first_match_row == batch.first_match_rows[i]
        # a scalar search is one query's worth of the batch energy
        assert scalar.energy_j * n == batch.energy_j


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_deterministic_match_brackets_the_stored_interval(data):
    """Inside -> deterministic; deterministic -> inside the skirt.

    A strict iff would be float-pathological at hairline distances
    beyond a bound, so the battery pins the two one-sided guarantees
    the compiler's proof rests on: every query inside a row's stored
    intervals responds at exactly 1.0, and a deterministic response
    can only come from inside the margin-widened intervals.
    """
    bank = data.draw(interval_banks())
    query = np.array([[data.draw(st.floats(-60.0, 60.0,
                                           allow_nan=False))
                       for _ in bank.fields]])
    result = bank.search_batch(query)
    for index, row in enumerate(bank.rows):
        inside = all(
            cell.intended_interval.contains(
                np.array([query[0, j]]))[0]
            for j, cell in enumerate(row))
        flagged = bool(result.deterministic_mask[0, index])
        if inside:
            assert result.probabilities[0, index] == 1.0
            assert flagged
        if flagged:
            for j, cell in enumerate(row):
                interval = cell.intended_interval
                slack = interval.skirt \
                    + 1e-6 * max(1.0, abs(query[0, j]))
                widened = ACAMInterval(
                    lo=None if interval.lo is None
                    else interval.lo - slack,
                    hi=None if interval.hi is None
                    else interval.hi + slack)
                assert widened.contains(
                    np.array([query[0, j]]))[0]
