"""Arrival-trace capture and replay."""

import numpy as np
import pytest

from repro.netfunc.aqm.base import TailDropAQM
from repro.simnet.engine import Simulator
from repro.simnet.flows import PoissonFlowGenerator
from repro.simnet.queue_sim import BottleneckQueue
from repro.simnet.trace import (
    ArrivalTrace,
    TraceRecorder,
    TraceReplayGenerator,
)


def capture_trace(duration=1.0, rate=2000.0, seed=5):
    sim = Simulator()
    recorder = TraceRecorder(sim)
    PoissonFlowGenerator(rate_pps=rate, flow_id=3, priority=1,
                         rng=np.random.default_rng(seed)
                         ).attach(sim, recorder)
    sim.run_until(duration)
    return recorder.trace()


class TestArrivalTrace:
    def test_statistics(self):
        trace = capture_trace()
        assert len(trace) > 1000
        assert trace.mean_rate_pps == pytest.approx(2000.0, rel=0.15)
        assert trace.offered_load_bps == pytest.approx(
            2000.0 * 1000 * 8, rel=0.15)

    def test_empty_trace_statistics(self):
        empty = ArrivalTrace(times_s=np.zeros(0),
                             sizes_bytes=np.zeros(0, dtype=int),
                             flow_ids=np.zeros(0, dtype=int),
                             priorities=np.zeros(0, dtype=int))
        assert empty.duration_s == 0.0
        assert empty.mean_rate_pps == 0.0
        assert empty.offered_load_bps == 0.0

    def test_save_load_round_trip(self, tmp_path):
        trace = capture_trace(duration=0.2)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = ArrivalTrace.load(path)
        np.testing.assert_array_equal(loaded.times_s, trace.times_s)
        np.testing.assert_array_equal(loaded.flow_ids, trace.flow_ids)

    def test_save_load_preserves_dtypes(self, tmp_path):
        trace = ArrivalTrace(
            times_s=np.array([0.0, 0.25, 1.5], dtype=np.float64),
            sizes_bytes=np.array([64, 1500, 576], dtype=np.int64),
            flow_ids=np.array([1, 2, 1], dtype=np.int64),
            priorities=np.array([0, 1, 0], dtype=np.int64))
        path = tmp_path / "typed.npz"
        trace.save(path)
        loaded = ArrivalTrace.load(path)
        assert loaded.times_s.dtype == np.float64
        assert loaded.sizes_bytes.dtype == np.int64
        assert loaded.flow_ids.dtype == np.int64
        assert loaded.priorities.dtype == np.int64
        for name in ("times_s", "sizes_bytes", "flow_ids",
                     "priorities"):
            np.testing.assert_array_equal(getattr(loaded, name),
                                          getattr(trace, name))

    def test_save_load_preserves_captured_dtypes(self, tmp_path):
        trace = capture_trace(duration=0.1)
        path = tmp_path / "captured.npz"
        trace.save(path)
        loaded = ArrivalTrace.load(path)
        for name in ("times_s", "sizes_bytes", "flow_ids",
                     "priorities"):
            assert getattr(loaded, name).dtype \
                == getattr(trace, name).dtype

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalTrace(times_s=np.array([0.0, 1.0]),
                         sizes_bytes=np.array([100]),
                         flow_ids=np.array([0, 0]),
                         priorities=np.array([0, 0]))
        with pytest.raises(ValueError):
            ArrivalTrace(times_s=np.array([1.0, 0.5]),
                         sizes_bytes=np.array([100, 100]),
                         flow_ids=np.array([0, 0]),
                         priorities=np.array([0, 0]))


class TestRecorderPassThrough:
    def test_forwarding_to_downstream_sink(self):
        sim = Simulator()
        queue = BottleneckQueue(sim, service_rate_bps=80e6)
        recorder = TraceRecorder(sim, queue.enqueue)
        PoissonFlowGenerator(rate_pps=500.0,
                             rng=np.random.default_rng(1)
                             ).attach(sim, recorder)
        sim.run_until(0.5)
        assert len(recorder) > 100
        assert queue.recorder.delivered + queue.backlog_packets + 1 >= \
            len(recorder)


class TestReplay:
    def test_replay_is_bit_identical(self):
        trace = capture_trace(duration=0.5)
        sim = Simulator()
        replayed = TraceRecorder(sim)
        TraceReplayGenerator(trace).attach(sim, replayed)
        sim.run()
        copy = replayed.trace()
        np.testing.assert_allclose(copy.times_s, trace.times_s)
        np.testing.assert_array_equal(copy.sizes_bytes,
                                      trace.sizes_bytes)
        np.testing.assert_array_equal(copy.priorities, trace.priorities)

    def test_same_trace_fair_policy_comparison(self):
        trace = capture_trace(duration=0.5, rate=8000.0)

        def run_once():
            sim = Simulator()
            queue = BottleneckQueue(sim, service_rate_bps=20e6,
                                    aqm=TailDropAQM())
            TraceReplayGenerator(trace).attach(sim, queue.enqueue)
            sim.run()
            return queue.recorder.summary()

        first = run_once()
        second = run_once()
        assert first.delivered == second.delivered
        assert first.mean_delay_s == pytest.approx(second.mean_delay_s)

    def test_time_offset_shifts_replay(self):
        trace = capture_trace(duration=0.1)
        sim = Simulator()
        recorder = TraceRecorder(sim)
        TraceReplayGenerator(trace, time_offset_s=1.0).attach(
            sim, recorder)
        sim.run()
        assert recorder.trace().times_s[0] >= 1.0

    def test_offset_validated(self):
        trace = capture_trace(duration=0.05)
        with pytest.raises(ValueError):
            TraceReplayGenerator(trace, time_offset_s=-1.0)

    def test_replay_bit_identical_after_persistence(self, tmp_path):
        """Replaying a saved-and-reloaded trace matches replaying the
        original exactly — persistence is invisible to consumers."""
        trace = capture_trace(duration=0.3)
        path = tmp_path / "persisted.npz"
        trace.save(path)
        reloaded = ArrivalTrace.load(path)

        def replay(source):
            sim = Simulator()
            recorder = TraceRecorder(sim)
            TraceReplayGenerator(source).attach(sim, recorder)
            sim.run()
            return recorder.trace()

        before = replay(trace)
        after = replay(reloaded)
        np.testing.assert_array_equal(before.times_s, after.times_s)
        np.testing.assert_array_equal(before.sizes_bytes,
                                      after.sizes_bytes)
        np.testing.assert_array_equal(before.flow_ids, after.flow_ids)
        np.testing.assert_array_equal(before.priorities,
                                      after.priorities)


class TestFromColumns:
    def test_scenario_stream_materialises_as_trace(self):
        from repro.simnet.scenarios import scenario
        entry = scenario("elephants_mice")
        trace = ArrivalTrace.from_columns(
            entry.stream(seed=4, n_packets=5000, chunk_size=1024))
        assert len(trace) == 5000
        assert trace.times_s.dtype == np.float64
        assert trace.sizes_bytes.dtype == np.int64
        assert np.all(np.diff(trace.times_s) >= 0)

    def test_scenario_trace_helper_matches_from_columns(self):
        from repro.simnet.scenarios import scenario
        entry = scenario("diurnal")
        via_helper = entry.trace(seed=4, n_packets=2000)
        via_stream = ArrivalTrace.from_columns(
            entry.stream(seed=4, n_packets=2000, chunk_size=333))
        np.testing.assert_array_equal(via_helper.times_s,
                                      via_stream.times_s)
        np.testing.assert_array_equal(via_helper.sizes_bytes,
                                      via_stream.sizes_bytes)

    def test_from_columns_survives_npz_round_trip(self, tmp_path):
        from repro.simnet.scenarios import scenario
        trace = scenario("flash_crowd").trace(seed=9, n_packets=3000)
        path = tmp_path / "scenario.npz"
        trace.save(path)
        loaded = ArrivalTrace.load(path)
        for name in ("times_s", "sizes_bytes", "flow_ids",
                     "priorities"):
            np.testing.assert_array_equal(getattr(loaded, name),
                                          getattr(trace, name))
            assert getattr(loaded, name).dtype \
                == getattr(trace, name).dtype

    def test_empty_iterable_gives_empty_trace(self):
        trace = ArrivalTrace.from_columns([])
        assert len(trace) == 0
        assert trace.mean_rate_pps == 0.0
