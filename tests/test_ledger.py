"""Energy ledger accounting."""

import pytest

from repro.energy import (
    ACCOUNT_COMPUTE,
    ACCOUNT_MOVEMENT,
    EnergyLedger,
    EnergyReport,
)


def test_charges_accumulate_per_account():
    ledger = EnergyLedger()
    ledger.charge("tcam.search", 1e-15)
    ledger.charge("tcam.search", 2e-15)
    ledger.charge("pcam.search", 5e-17)
    assert ledger.account("tcam.search") == pytest.approx(3e-15)
    assert ledger.total == pytest.approx(3.05e-15)
    assert ledger.events == 3


def test_negative_charge_rejected():
    ledger = EnergyLedger()
    with pytest.raises(ValueError):
        ledger.charge("x", -1.0)


def test_unknown_account_reads_zero():
    assert EnergyLedger().account("nothing") == 0.0


def test_merge_combines_ledgers():
    a = EnergyLedger()
    b = EnergyLedger()
    a.charge("x", 1.0)
    b.charge("x", 2.0)
    b.charge("y", 3.0)
    a.merge(b)
    assert a.account("x") == pytest.approx(3.0)
    assert a.account("y") == pytest.approx(3.0)
    assert a.events == 3


def test_by_prefix_sums_subaccounts():
    ledger = EnergyLedger()
    ledger.charge("tcam.search", 1.0)
    ledger.charge("tcam.write", 2.0)
    ledger.charge("pcam.search", 4.0)
    assert ledger.by_prefix("tcam.") == pytest.approx(3.0)


def test_breakdown_sorted_descending():
    ledger = EnergyLedger()
    ledger.charge("small", 1.0)
    ledger.charge("big", 10.0)
    assert list(ledger.breakdown()) == ["big", "small"]


def test_fractions_sum_to_one():
    ledger = EnergyLedger()
    ledger.charge(ACCOUNT_MOVEMENT, 9.0)
    ledger.charge(ACCOUNT_COMPUTE, 1.0)
    fractions = ledger.fractions()
    assert fractions[ACCOUNT_MOVEMENT] == pytest.approx(0.9)
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_fractions_of_empty_ledger():
    assert EnergyLedger().fractions() == {}


def test_reset_clears_everything():
    ledger = EnergyLedger()
    ledger.charge("x", 1.0)
    ledger.reset()
    assert ledger.total == 0.0
    assert ledger.events == 0
    assert len(ledger) == 0


def test_report_fraction_and_lines():
    ledger = EnergyLedger()
    ledger.charge("a", 3.0)
    ledger.charge("b", 1.0)
    report = EnergyReport.from_ledger("run", ledger)
    assert report.fraction("a") == pytest.approx(0.75)
    lines = list(report.lines())
    assert lines[0].startswith("run: total")
    assert len(lines) == 3


def test_report_fraction_zero_total():
    report = EnergyReport(label="empty", total_j=0.0, accounts={})
    assert report.fraction("anything") == 0.0


def test_iteration_yields_accounts():
    ledger = EnergyLedger()
    ledger.charge("a", 1.0)
    assert dict(iter(ledger)) == {"a": 1.0}


def test_merge_with_self_is_a_no_op():
    ledger = EnergyLedger()
    ledger.charge("a", 2.0)
    ledger.charge("b", 1.0)
    ledger.merge(ledger)
    assert ledger.total == pytest.approx(3.0)
    assert ledger.account("a") == pytest.approx(2.0)
    assert ledger.events == 2


def test_merge_with_distinct_empty_ledger_unchanged():
    ledger = EnergyLedger()
    ledger.charge("a", 2.0)
    ledger.merge(EnergyLedger())
    assert ledger.total == pytest.approx(2.0)
    assert ledger.events == 1
