"""Energy ledger accounting."""

import pickle
import random

import pytest

from repro.energy import (
    ACCOUNT_COMPUTE,
    ACCOUNT_MOVEMENT,
    EnergyLedger,
    EnergyReport,
    ExactJoules,
)


def test_charges_accumulate_per_account():
    ledger = EnergyLedger()
    ledger.charge("tcam.search", 1e-15)
    ledger.charge("tcam.search", 2e-15)
    ledger.charge("pcam.search", 5e-17)
    assert ledger.account("tcam.search") == pytest.approx(3e-15)
    assert ledger.total == pytest.approx(3.05e-15)
    assert ledger.events == 3


def test_negative_charge_rejected():
    ledger = EnergyLedger()
    with pytest.raises(ValueError):
        ledger.charge("x", -1.0)


def test_unknown_account_reads_zero():
    assert EnergyLedger().account("nothing") == 0.0


def test_merge_combines_ledgers():
    a = EnergyLedger()
    b = EnergyLedger()
    a.charge("x", 1.0)
    b.charge("x", 2.0)
    b.charge("y", 3.0)
    a.merge(b)
    assert a.account("x") == pytest.approx(3.0)
    assert a.account("y") == pytest.approx(3.0)
    assert a.events == 3


def test_by_prefix_sums_subaccounts():
    ledger = EnergyLedger()
    ledger.charge("tcam.search", 1.0)
    ledger.charge("tcam.write", 2.0)
    ledger.charge("pcam.search", 4.0)
    assert ledger.by_prefix("tcam.") == pytest.approx(3.0)


def test_breakdown_sorted_descending():
    ledger = EnergyLedger()
    ledger.charge("small", 1.0)
    ledger.charge("big", 10.0)
    assert list(ledger.breakdown()) == ["big", "small"]


def test_fractions_sum_to_one():
    ledger = EnergyLedger()
    ledger.charge(ACCOUNT_MOVEMENT, 9.0)
    ledger.charge(ACCOUNT_COMPUTE, 1.0)
    fractions = ledger.fractions()
    assert fractions[ACCOUNT_MOVEMENT] == pytest.approx(0.9)
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_fractions_of_empty_ledger():
    assert EnergyLedger().fractions() == {}


def test_reset_clears_everything():
    ledger = EnergyLedger()
    ledger.charge("x", 1.0)
    ledger.reset()
    assert ledger.total == 0.0
    assert ledger.events == 0
    assert len(ledger) == 0


def test_report_fraction_and_lines():
    ledger = EnergyLedger()
    ledger.charge("a", 3.0)
    ledger.charge("b", 1.0)
    report = EnergyReport.from_ledger("run", ledger)
    assert report.fraction("a") == pytest.approx(0.75)
    lines = list(report.lines())
    assert lines[0].startswith("run: total")
    assert len(lines) == 3


def test_report_fraction_zero_total():
    report = EnergyReport(label="empty", total_j=0.0, accounts={})
    assert report.fraction("anything") == 0.0


def test_iteration_yields_accounts():
    ledger = EnergyLedger()
    ledger.charge("a", 1.0)
    assert dict(iter(ledger)) == {"a": 1.0}


def test_merge_with_self_is_a_no_op():
    ledger = EnergyLedger()
    ledger.charge("a", 2.0)
    ledger.charge("b", 1.0)
    ledger.merge(ledger)
    assert ledger.total == pytest.approx(3.0)
    assert ledger.account("a") == pytest.approx(2.0)
    assert ledger.events == 2


def test_merge_with_distinct_empty_ledger_unchanged():
    ledger = EnergyLedger()
    ledger.charge("a", 2.0)
    ledger.merge(EnergyLedger())
    assert ledger.total == pytest.approx(2.0)
    assert ledger.events == 1


# ----------------------------------------------------------------------
# Exact (partition-invariant) accumulation — the fabric contract
# ----------------------------------------------------------------------

def _quanta(seed=7, n=200):
    rng = random.Random(seed)
    return [rng.random() * 10.0 ** rng.randint(-18, -9) for _ in range(n)]


def test_accumulation_is_order_invariant():
    quanta = _quanta()
    forward, backward = EnergyLedger(), EnergyLedger()
    for q in quanta:
        forward.charge("a", q)
    for q in reversed(quanta):
        backward.charge("a", q)
    # Bit-identical, not approx: the sum is exact until the one final
    # rounding, so ordering cannot perturb the last ulp.
    assert forward.account("a") == backward.account("a")
    assert forward.total == backward.total


def test_merge_is_partition_invariant():
    quanta = _quanta(seed=11)
    serial = EnergyLedger()
    for q in quanta:
        serial.charge("a", q)
    for n_shards in (2, 3, 4, 7):
        shards = [EnergyLedger() for _ in range(n_shards)]
        for i, q in enumerate(quanta):
            shards[i % n_shards].charge("a", q)
        merged = EnergyLedger()
        for shard in shards:
            merged.merge(shard)
        assert merged.account("a") == serial.account("a")
        assert merged.total == serial.total
        assert merged.events == serial.events


def test_charge_quanta_equals_repeated_scalar_charges():
    quantum = 1.3e-15
    scalar, batched = EnergyLedger(), EnergyLedger()
    for _ in range(1000):
        scalar.charge("a", quantum)
    batched.charge_quanta("a", quantum, 1000)
    assert batched.account("a") == scalar.account("a")
    # A quanta burst is one ledger event, however many quanta it books.
    assert batched.events == 1


def test_charge_quanta_zero_count_is_free():
    ledger = EnergyLedger()
    ledger.charge_quanta("a", 1e-12, 0)
    assert ledger.account("a") == 0.0
    assert ledger.events == 1


def test_charge_quanta_rejects_bad_inputs():
    ledger = EnergyLedger()
    with pytest.raises(ValueError):
        ledger.charge_quanta("a", -1e-12, 3)
    with pytest.raises(ValueError):
        ledger.charge_quanta("a", float("nan"), 3)
    with pytest.raises(ValueError):
        ledger.charge_quanta("a", 1e-12, -1)


def test_exact_joules_round_trips_through_pickle():
    exact = ExactJoules()
    exact.add(3.7e-13, count=41)
    clone = pickle.loads(pickle.dumps(exact))
    assert clone == exact
    assert float(clone) == float(exact)


def test_ledger_round_trips_through_pickle():
    ledger = EnergyLedger()
    for q in _quanta(seed=3, n=50):
        ledger.charge("tcam.search", q)
    clone = pickle.loads(pickle.dumps(ledger))
    assert clone.account("tcam.search") == ledger.account("tcam.search")
    assert clone.events == ledger.events
