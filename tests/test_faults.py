"""Device fault injection and pCAM robustness under defects."""

import numpy as np
import pytest

from repro.crossbar.array import Crossbar
from repro.crossbar.losses import LineLossModel
from repro.device.faults import (
    CrossbarFaultPlan,
    FaultType,
    FaultyMemristor,
    apply_fault_mask,
    inject_crossbar_faults,
)
from repro.device.variability import VariabilityModel


class TestFaultyMemristor:
    def test_stuck_off_never_programs(self):
        device = FaultyMemristor(FaultType.STUCK_OFF,
                                 variability=VariabilityModel.ideal())
        energy = device.program_state(0.8)
        assert device.state == 0.0
        assert energy > 0.0  # the attempt still costs energy

    def test_stuck_on_never_programs(self):
        device = FaultyMemristor(FaultType.STUCK_ON,
                                 variability=VariabilityModel.ideal())
        device.program_state(0.2)
        assert device.state == 1.0

    def test_stuck_program_to_current_state_is_free(self):
        device = FaultyMemristor(FaultType.STUCK_OFF,
                                 variability=VariabilityModel.ideal())
        assert device.program_state(0.0) == 0.0

    def test_stuck_pulse_moves_nothing(self):
        device = FaultyMemristor(FaultType.STUCK_OFF,
                                 variability=VariabilityModel.ideal())
        device.apply_pulse(3.0, 100e-9)
        assert device.state == 0.0
        assert device.pulses == 1

    def test_imprecise_lands_loosely(self):
        rng = np.random.default_rng(0)
        loose = FaultyMemristor(FaultType.IMPRECISE,
                                imprecision_factor=40.0,
                                variability=VariabilityModel.ideal(),
                                rng=rng)
        loose.program_state(0.5, tolerance=0.01)
        # Landed somewhere within the inflated tolerance.
        assert abs(loose.state - 0.5) <= 0.4 + 1e-9

    def test_imprecision_factor_validated(self):
        with pytest.raises(ValueError):
            FaultyMemristor(FaultType.IMPRECISE, imprecision_factor=0.5)

    def test_stuck_cells_still_conduct(self):
        on = FaultyMemristor(FaultType.STUCK_ON,
                             variability=VariabilityModel.ideal())
        off = FaultyMemristor(FaultType.STUCK_OFF,
                              variability=VariabilityModel.ideal())
        assert on.current(1.0) > 1e3 * off.current(1.0)


class TestCrossbarFaults:
    def make_crossbar(self):
        bar = Crossbar(8, 8, losses=LineLossModel.ideal(),
                       variability=VariabilityModel.ideal())
        bar.program_normalised(np.full((8, 8), 0.5))
        return bar

    def test_injection_pins_cells_at_rails(self):
        bar = self.make_crossbar()
        mask = inject_crossbar_faults(bar, fault_rate=0.25,
                                      rng=np.random.default_rng(1))
        g_min, g_max = bar.conductance_bounds
        conductances = bar.conductances
        faulted = conductances[mask]
        assert mask.any()
        assert np.all(np.isclose(faulted, g_min)
                      | np.isclose(faulted, g_max))

    def test_zero_rate_injects_nothing(self):
        bar = self.make_crossbar()
        mask = inject_crossbar_faults(bar, fault_rate=0.0,
                                      rng=np.random.default_rng(1))
        assert not mask.any()

    def test_faults_distort_matvec(self):
        clean = self.make_crossbar()
        faulty = self.make_crossbar()
        inject_crossbar_faults(faulty, fault_rate=0.3,
                               rng=np.random.default_rng(2))
        voltages = np.ones(8)
        clean_out = clean.matvec(voltages, noisy=False).currents_a
        faulty_out = faulty.matvec(voltages, noisy=False).currents_a
        assert not np.allclose(clean_out, faulty_out)

    def test_reapply_mask_after_reprogram(self):
        bar = self.make_crossbar()
        mask = inject_crossbar_faults(bar, fault_rate=0.25,
                                      rng=np.random.default_rng(3))
        stuck = bar.conductances
        bar.program_normalised(np.full((8, 8), 0.9))
        apply_fault_mask(bar, mask, stuck)
        np.testing.assert_allclose(bar.conductances[mask], stuck[mask])

    def test_validation(self):
        bar = self.make_crossbar()
        with pytest.raises(ValueError):
            inject_crossbar_faults(bar, fault_rate=2.0,
                                   rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            apply_fault_mask(bar, np.zeros((2, 2), dtype=bool),
                             np.zeros((2, 2)))


class TestComposableFaults:
    def test_memristor_accepts_fault_sets(self):
        device = FaultyMemristor(
            {FaultType.STUCK_ON, FaultType.IMPRECISE},
            variability=VariabilityModel.ideal())
        assert device.faults == {FaultType.STUCK_ON, FaultType.IMPRECISE}
        assert device.fault is FaultType.STUCK_ON  # stuck dominates
        device.program_state(0.2)
        assert device.state == 1.0  # pinned, imprecision irrelevant

    def test_conflicting_stuck_faults_rejected(self):
        with pytest.raises(ValueError):
            FaultyMemristor({FaultType.STUCK_OFF, FaultType.STUCK_ON})
        with pytest.raises(ValueError):
            FaultyMemristor([])

    def test_plan_sampling_is_seeded(self):
        bounds = (1e-9, 1e-2)
        a = CrossbarFaultPlan.sample((6, 6), 0.3,
                                     np.random.default_rng(5), bounds)
        b = CrossbarFaultPlan.sample((6, 6), 0.3,
                                     np.random.default_rng(5), bounds)
        np.testing.assert_array_equal(a.mask, b.mask)
        np.testing.assert_array_equal(a.values, b.values)
        assert a.n_faults == int(a.mask.sum())
        assert a.shape == (6, 6)

    def test_plans_compose_with_right_bias(self):
        mask_a = np.zeros((2, 2), dtype=bool)
        mask_a[0, 0] = mask_a[0, 1] = True
        mask_b = np.zeros((2, 2), dtype=bool)
        mask_b[0, 1] = mask_b[1, 1] = True
        merged = (CrossbarFaultPlan(mask_a, np.where(mask_a, 1.0, 0.0))
                  | CrossbarFaultPlan(mask_b, np.where(mask_b, 2.0, 0.0)))
        assert merged.n_faults == 3
        assert merged.values[0, 0] == 1.0
        assert merged.values[0, 1] == 2.0  # right-hand plan wins
        assert merged.values[1, 1] == 2.0

    def test_plan_shape_mismatch_rejected(self):
        plan = CrossbarFaultPlan(np.zeros((2, 2), dtype=bool),
                                 np.zeros((2, 2)))
        with pytest.raises(ValueError):
            plan | CrossbarFaultPlan(np.zeros((3, 3), dtype=bool),
                                     np.zeros((3, 3)))
        with pytest.raises(ValueError):
            plan.pin(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            CrossbarFaultPlan(np.zeros((2, 2), dtype=bool),
                              np.zeros((3, 3)))

    def test_installed_plan_survives_reprogramming(self):
        bar = Crossbar(8, 8, losses=LineLossModel.ideal(),
                       variability=VariabilityModel.ideal())
        bar.program_normalised(np.full((8, 8), 0.5))
        mask = inject_crossbar_faults(bar, fault_rate=0.25,
                                      rng=np.random.default_rng(3))
        pinned = bar.conductances[mask]
        # No manual re-application: the installed plan re-pins inside
        # every later program() pass.
        bar.program_normalised(np.full((8, 8), 0.9))
        np.testing.assert_allclose(bar.conductances[mask], pinned)
        bar.clear_fault_plan()
        bar.program_normalised(np.full((8, 8), 0.9))
        assert not np.allclose(bar.conductances[mask], pinned)

    def test_repeated_injection_composes_populations(self):
        bar = Crossbar(8, 8, losses=LineLossModel.ideal(),
                       variability=VariabilityModel.ideal())
        bar.program_normalised(np.full((8, 8), 0.5))
        first = inject_crossbar_faults(bar, fault_rate=0.15,
                                       rng=np.random.default_rng(1))
        second = inject_crossbar_faults(bar, fault_rate=0.15,
                                        rng=np.random.default_rng(2))
        assert bar.fault_plan is not None
        np.testing.assert_array_equal(bar.fault_plan.mask,
                                      first | second)


class TestPCAMUnderFaults:
    def test_stuck_threshold_device_degrades_to_mismatch(self):
        """A pCAM cell with a stuck threshold device fails safe."""
        from repro.core.device_cell import DevicePCAMCell
        from repro.core.pcam_cell import prog_pcam

        cell = DevicePCAMCell(prog_pcam(1.5, 2.4, 2.6, 3.5),
                              variability=VariabilityModel.ideal(),
                              rng=np.random.default_rng(4))
        # Break the low-threshold device after programming.
        cell._lo = FaultyMemristor(FaultType.STUCK_ON,
                                   params=cell.device_params,
                                   variability=VariabilityModel.ideal())
        responses = [cell.response(v) for v in (2.0, 2.5, 3.0)]
        # The cell misbehaves but stays inside the probability rails.
        assert all(0.0 <= r <= 1.0 for r in responses)
