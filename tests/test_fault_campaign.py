"""The fault campaign: determinism, per-layer metrics, fallback proof.

The acceptance criterion lives here: a seeded campaign over the full
default model set (>= 4 models) on the Figure-6 AQM pipeline must
complete deterministically, the differential oracle must report
per-model degradation metrics, and the injected stuck-cell fault must
demonstrably engage the digital fallback path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.robustness import (
    CampaignConfig,
    ConductanceDrift,
    DegradationEnvelope,
    FaultCampaign,
    StuckAtFault,
    default_fault_models,
)

#: Small but complete: every default model, real traffic phase.
SMOKE = dict(n_probes=48, n_steps=32, chunk_size=16)


@pytest.fixture(scope="module")
def smoke_result():
    return FaultCampaign(CampaignConfig(seed=7, **SMOKE)).run()


def test_default_model_set_is_broad_and_unique():
    models = default_fault_models()
    assert len(models) >= 4
    names = [model.name for model in models]
    assert len(set(names)) == len(names)


def test_config_validation():
    with pytest.raises(ValueError):
        CampaignConfig(fault_models=())
    with pytest.raises(ValueError):
        CampaignConfig(n_probes=0)
    with pytest.raises(ValueError):
        CampaignConfig(cell_fraction=1.5)
    with pytest.raises(ValueError):
        FaultCampaign(CampaignConfig(), seed=3)  # config XOR overrides


def test_campaign_is_deterministic_in_its_seed(smoke_result):
    again = FaultCampaign(CampaignConfig(seed=7, **SMOKE)).run()
    assert smoke_result.as_dict() == again.as_dict()


def test_different_seed_changes_the_records(smoke_result):
    other = FaultCampaign(CampaignConfig(seed=8, **SMOKE)).run()
    assert smoke_result.as_dict() != other.as_dict()


def test_oracle_reports_per_model_degradation(smoke_result):
    assert len(smoke_result.records) == len(default_fault_models())
    for record in smoke_result.records:
        assert record.deviation.n_probes == SMOKE["n_probes"]
        assert record.deviation.scalar_batch_max_diff <= 1e-9
        assert record.n_injected > 0
    # The oracle separates the models: a full stuck-at-LRS population
    # is catastrophic, quantization is benign.
    stuck = smoke_result.record("stuck_at_lrs")
    quant = smoke_result.record("quantization_6b_dac_6b_adc")
    assert stuck.deviation.mean_abs_error > 0.5
    assert not stuck.within_envelope
    assert quant.deviation.mean_abs_error < 0.01
    assert quant.within_envelope


def test_stuck_cell_fault_engages_digital_fallback(smoke_result):
    record = smoke_result.record("stuck_at_lrs")
    assert record.fallback_engaged
    assert record.events.get("pcam_aqm.fallback_engaged", 0) >= 1
    # Retries were attempted and the stuck cells kept failing them.
    assert record.retries >= 1
    assert record.recoveries == 0


def test_layered_metrics_cover_crossbar_and_array(smoke_result):
    stuck = smoke_result.record("stuck_at_lrs")
    drift = smoke_result.record("conductance_drift")
    assert stuck.crossbar_relative_error is not None
    assert stuck.crossbar_relative_error > 0.0
    assert drift.crossbar_relative_error is None  # not a stuck model
    assert stuck.array_mean_abs_error > 0.0


def test_energy_recorded_through_the_ledger(smoke_result):
    assert smoke_result.baseline_energy_j > 0.0
    for record in smoke_result.records:
        assert record.energy_j > 0.0
        assert record.energy_delta_j == pytest.approx(
            record.energy_j - smoke_result.baseline_energy_j)
    # Retrying tables paid reprogramming energy on top of the baseline.
    assert smoke_result.record("stuck_at_lrs").energy_delta_j > 0.0


def test_summary_names_every_model(smoke_result):
    text = "\n".join(smoke_result.summary_lines())
    for model in default_fault_models():
        assert model.name in text


def test_record_lookup_raises_on_unknown_model(smoke_result):
    with pytest.raises(KeyError):
        smoke_result.record("meteor_strike")


def test_traffic_phase_can_be_disabled():
    result = FaultCampaign(CampaignConfig(
        seed=1, n_probes=16, include_traffic=False,
        fault_models=(StuckAtFault("lrs"), ConductanceDrift()))).run()
    assert result.baseline_energy_j == 0.0
    for record in result.records:
        assert record.energy_j == 0.0
        assert not record.fallback_engaged
        assert record.events == {}


# ----------------------------------------------------------------------
# Identity sanity (hypothesis): a fault-free campaign deviates nowhere
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_fault_free_campaign_reports_zero_deviation(seed):
    """cell_fraction=0 injects nothing, so every leg is identical and
    the oracle must report exact zeros for every model and seed."""
    config = CampaignConfig(
        seed=seed, n_probes=12, cell_fraction=0.0, include_traffic=False,
        fault_models=(StuckAtFault("lrs"), ConductanceDrift()),
        envelope=DegradationEnvelope(max_mean_abs_error=0.0,
                                     max_abs_bias=0.0, max_abs_error=0.0))
    for record in FaultCampaign(config).run().records:
        assert record.n_injected == 0
        assert record.deviation.mean_abs_error == 0.0
        assert record.deviation.bias == 0.0
        assert record.deviation.max_abs_error == 0.0
        assert record.within_envelope
        assert record.array_mean_abs_error == 0.0
