"""Neuromorphic extensions: associative memory, self-learning AQM,
spiking blocks."""

import numpy as np
import pytest

from repro.neuro.associative import AssociativeMemory
from repro.neuro.neuromorphic import NeuromorphicAQM
from repro.neuro.spiking import (
    LIFNeuron,
    MemristiveSynapses,
    SpikingBurstDetector,
)
from repro.netfunc.aqm.base import TailDropAQM
from repro.simnet.topology import DumbbellExperiment, overload_profile


class TestAssociativeMemory:
    def make(self):
        memory = AssociativeMemory(("size", "rate"),
                                   receptive_width=0.1, fade_width=0.4)
        memory.store({"size": 0.4, "rate": 0.8}, "web")
        memory.store({"size": 1.3, "rate": 0.2}, "video")
        return memory

    def test_exact_recall_deterministic(self):
        memory = self.make()
        recall = memory.recall({"size": 0.4, "rate": 0.8})
        assert recall.value == "web"
        assert recall.deterministic

    def test_near_miss_recall_graded(self):
        memory = self.make()
        recall = memory.recall({"size": 0.6, "rate": 0.7})
        assert recall.value == "web"
        assert 0.0 < recall.confidence < 1.0
        assert not recall.deterministic

    def test_distribution_normalised(self):
        memory = self.make()
        recall = memory.recall({"size": 0.6, "rate": 0.7})
        assert sum(recall.distribution.values()) == pytest.approx(1.0)

    def test_far_query_returns_none(self):
        memory = self.make()
        assert memory.recall({"size": 10.0, "rate": 10.0}) is None

    def test_empty_memory_returns_none(self):
        memory = AssociativeMemory(("x",))
        assert memory.recall({"x": 0.0}) is None

    def test_recall_charges_energy(self):
        memory = self.make()
        memory.recall({"size": 0.4, "rate": 0.8})
        assert memory.ledger.total > 0.0

    def test_stored_key_inspection(self):
        memory = self.make()
        assert memory.stored_key(0) == {"size": 0.4, "rate": 0.8}
        with pytest.raises(IndexError):
            memory.stored_key(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            AssociativeMemory(())
        with pytest.raises(ValueError):
            AssociativeMemory(("x",), receptive_width=0.0)
        memory = self.make()
        with pytest.raises(KeyError):
            memory.store({"size": 1.0}, "incomplete")
        assert len(memory) == 2


class TestNeuromorphicAQM:
    def test_learns_to_control_delay(self):
        experiment = DumbbellExperiment(
            n_flows=6, load=0.9, service_rate_bps=40e6,
            capacity_packets=1500, duration_s=8.0,
            rate_fn=overload_profile(2.0, 7.0, 1.6), seed=3)
        aqm = NeuromorphicAQM(rng=np.random.default_rng(2))
        learned = experiment.run(aqm).recorder.summary()
        unmanaged = experiment.run(TailDropAQM()).recorder.summary()
        assert aqm.updates > 100
        assert learned.mean_delay_s < 0.1 * unmanaged.mean_delay_s
        assert learned.mean_delay_s < 0.035

    def test_idle_queue_never_drops(self):
        aqm = NeuromorphicAQM(rng=np.random.default_rng(1))

        class Idle:
            backlog_packets = 0
            backlog_bytes = 0
            capacity_packets = 100
            service_rate_bps = 1e9
            last_sojourn_s = 0.0

        from repro.packet import Packet
        assert not aqm.on_enqueue(Packet(), Idle(), 0.0)

    def test_weights_move_with_teaching_signal(self):
        aqm = NeuromorphicAQM(rng=np.random.default_rng(1))

        class Congested:
            backlog_packets = 500
            backlog_bytes = 500_000
            capacity_packets = 2000
            service_rate_bps = 40e6
            last_sojourn_s = 0.1

        from repro.packet import Packet
        before = aqm.weights
        for step in range(20):
            now = step * 0.01
            aqm.pdp(Congested(), now)
            aqm.on_dequeue(Packet(), Congested(), now, 0.1)
        assert aqm.updates > 0
        assert not np.allclose(aqm.weights, before)

    def test_no_update_inside_band(self):
        aqm = NeuromorphicAQM(rng=np.random.default_rng(1))

        class OnTarget:
            backlog_packets = 50
            backlog_bytes = 50_000
            capacity_packets = 2000
            service_rate_bps = 40e6
            last_sojourn_s = 0.02

        from repro.packet import Packet
        for step in range(10):
            aqm.on_dequeue(Packet(), OnTarget(), step * 0.01, 0.02)
        assert aqm.updates == 0

    def test_inference_charges_energy(self):
        aqm = NeuromorphicAQM(rng=np.random.default_rng(1))

        class Busy:
            backlog_packets = 100
            backlog_bytes = 100_000
            capacity_packets = 2000
            service_rate_bps = 40e6
            last_sojourn_s = 0.02

        aqm.pdp(Busy(), 0.0)
        assert aqm.ledger.account("neuro_aqm.inference") > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NeuromorphicAQM(target_delay_s=0.0)
        with pytest.raises(ValueError):
            NeuromorphicAQM(learning_rate=0.0)


class TestLIFNeuron:
    def test_integrates_and_fires(self):
        neuron = LIFNeuron(tau_s=1.0, threshold=1.0)
        fired = [neuron.step(t * 0.01, 0.3) for t in range(10)]
        assert any(fired)

    def test_leak_prevents_firing_at_low_rate(self):
        neuron = LIFNeuron(tau_s=0.01, threshold=1.0)
        fired = [neuron.step(t * 1.0, 0.3) for t in range(10)]
        assert not any(fired)

    def test_refractory_period(self):
        neuron = LIFNeuron(tau_s=1.0, threshold=0.1,
                           refractory_s=1.0)
        assert neuron.step(0.0, 1.0)
        assert not neuron.step(0.5, 1.0)  # refractory
        assert neuron.step(1.5, 1.0)

    def test_time_must_not_go_backwards(self):
        neuron = LIFNeuron()
        neuron.step(1.0, 0.0)
        with pytest.raises(ValueError):
            neuron.step(0.5, 0.0)


class TestMemristiveSynapses:
    def test_weighted_sum(self):
        synapses = MemristiveSynapses(3, initial_weight=0.5)
        total = synapses.weighted_sum(np.array([1.0, 0.0, 1.0]))
        assert total == pytest.approx(1.0, abs=0.05)

    def test_potentiation_and_depression(self):
        synapses = MemristiveSynapses(1, initial_weight=0.5)
        synapses.potentiate(0, amount=0.1)
        assert synapses.weights[0] > 0.55
        synapses.depress(0, amount=0.2)
        assert synapses.weights[0] < 0.5

    def test_learning_costs_energy(self):
        synapses = MemristiveSynapses(1)
        synapses.potentiate(0)
        assert synapses.learning_energy_j > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MemristiveSynapses(0)
        synapses = MemristiveSynapses(2)
        with pytest.raises(IndexError):
            synapses.potentiate(5)
        with pytest.raises(ValueError):
            synapses.weighted_sum(np.ones(3))


class TestBurstDetector:
    def test_quiet_at_nominal_rate(self, rng):
        detector = SpikingBurstDetector(nominal_rate_pps=1000.0,
                                        rng=rng)
        t = 0.0
        for _ in range(2000):
            t += rng.exponential(1e-3)
            detector.on_arrival(t)
        assert detector.spike_count == 0

    def test_spikes_during_burst(self, rng):
        detector = SpikingBurstDetector(nominal_rate_pps=1000.0,
                                        rng=rng)
        t = 0.0
        for _ in range(1000):
            t += rng.exponential(1e-3)
            detector.on_arrival(t)
        for _ in range(500):
            t += rng.exponential(1.25e-4)  # 8x burst
            detector.on_arrival(t)
        assert detector.spike_count > 0

    def test_homeostasis_weakens_synapse(self, rng):
        detector = SpikingBurstDetector(nominal_rate_pps=1000.0,
                                        rng=rng)
        before = detector.synaptic_weight
        t = 0.0
        for _ in range(3000):
            t += 1.0e-4
            detector.on_arrival(t)
        assert detector.spike_count > 0
        assert detector.synaptic_weight < before

    def test_validation(self):
        with pytest.raises(ValueError):
            SpikingBurstDetector(nominal_rate_pps=0.0)
        with pytest.raises(ValueError):
            SpikingBurstDetector(nominal_rate_pps=10.0, sensitivity=1.0)
