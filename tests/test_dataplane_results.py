"""Verdict vocabulary and the derived drop-counter names.

Satellite of the runtime refactor: telemetry drop-counter names are
derived from the Verdict enum in exactly one place
(``repro.dataplane.results``) instead of being repeated inline in the
scalar and batched paths.  These tests pin the derivation rule, the
historical counter names, and the guarantee that every future drop
verdict automatically gets a counter.
"""

import pytest

from repro.dataplane.results import (
    DROP_EVENTS,
    ProcessResult,
    Verdict,
    drop_event,
)


class TestDropEventDerivation:
    def test_every_verdict_member_is_covered(self):
        # Every member either maps to a counter or is the one
        # non-drop verdict — no third category can appear silently.
        for verdict in Verdict:
            if verdict is Verdict.QUEUED:
                assert drop_event(verdict) is None
                assert verdict not in DROP_EVENTS
            else:
                assert DROP_EVENTS[verdict] == drop_event(verdict)

    def test_historical_counter_names_preserved(self):
        # These exact strings are what dashboards and the golden
        # telemetry reference key on; the derivation must keep
        # reproducing them.
        assert DROP_EVENTS == {
            Verdict.DROPPED_PARSE: "parse_drop",
            Verdict.DROPPED_ACL: "acl_drop",
            Verdict.DROPPED_NO_ROUTE: "no_route_drop",
            Verdict.DROPPED_AQM: "aqm_drop",
            Verdict.DROPPED_OVERFLOW: "overflow_drop",
        }

    def test_derivation_rule(self):
        for verdict, event in DROP_EVENTS.items():
            assert verdict.value.startswith("dropped_")
            assert event == \
                verdict.value.removeprefix("dropped_") + "_drop"

    def test_dropped_property(self):
        assert not Verdict.QUEUED.dropped
        for verdict in Verdict:
            if verdict is not Verdict.QUEUED:
                assert verdict.dropped


class TestProcessResult:
    def test_delivered_only_when_queued(self):
        assert ProcessResult(Verdict.QUEUED, port=1).delivered
        assert not ProcessResult(Verdict.DROPPED_ACL).delivered

    def test_frozen(self):
        result = ProcessResult(Verdict.QUEUED, port=0)
        with pytest.raises(AttributeError):
            result.port = 2

    def test_drop_results_default_portless(self):
        result = ProcessResult(Verdict.DROPPED_NO_ROUTE)
        assert result.port is None and result.packet is None
