"""The precision-aware digital/analog placement compiler (RQ2)."""

import pytest

from repro.core.compiler import (
    CognitiveCompiler,
    CompilationError,
    Domain,
    FunctionKind,
    NetworkFunctionSpec,
    PrecisionClass,
)
from repro.crossbar.converters import DAC
from repro.crossbar.losses import LineLossModel
from repro.crossbar.sensing import SenseAmplifier
from repro.device.variability import VariabilityModel


def spec(name, precision, kind=FunctionKind.DETERMINISTIC):
    return NetworkFunctionSpec(name=name, precision=precision, kind=kind)


STANDARD_SPECS = [
    spec("ip_lookup", PrecisionClass.HIGH),
    spec("firewall", PrecisionClass.HIGH),
    spec("aqm", PrecisionClass.LOW, FunctionKind.COGNITIVE),
    spec("load_balancer", PrecisionClass.MEDIUM, FunctionKind.COGNITIVE),
    spec("traffic_analysis", PrecisionClass.LOW, FunctionKind.COGNITIVE),
]


class TestErrorBudget:
    def test_total_is_rss_of_terms(self):
        budget = CognitiveCompiler().error_budget()
        rss = (budget.quantization ** 2 + budget.device_noise ** 2
               + budget.line_loss ** 2 + budget.crosstalk ** 2
               + budget.sense_gain ** 2) ** 0.5
        assert budget.total == pytest.approx(rss)

    def test_more_dac_bits_less_quantization(self):
        coarse = CognitiveCompiler(dac=DAC(bits=4)).error_budget()
        fine = CognitiveCompiler(dac=DAC(bits=12)).error_budget()
        assert fine.quantization < coarse.quantization

    def test_noisier_devices_bigger_budget(self):
        quiet = CognitiveCompiler(
            variability=VariabilityModel(read_sigma=0.01)).error_budget()
        loud = CognitiveCompiler(
            variability=VariabilityModel(read_sigma=0.2)).error_budget()
        assert loud.total > quiet.total

    def test_bigger_array_more_line_loss(self):
        small = CognitiveCompiler(array_rows=16,
                                  array_cols=16).error_budget()
        large = CognitiveCompiler(array_rows=512,
                                  array_cols=512).error_budget()
        assert large.line_loss > small.line_loss

    def test_dominant_term_named(self):
        budget = CognitiveCompiler(
            variability=VariabilityModel(read_sigma=0.3)).error_budget()
        assert budget.dominant_term() == "device_noise"

    def test_sense_gain_contributes(self):
        budget = CognitiveCompiler(
            sense=SenseAmplifier(gain_error=0.5)).error_budget()
        assert budget.dominant_term() == "sense_gain"


class TestPlacement:
    def test_paper_split_reproduced(self):
        # RQ2: lookup/firewall digital; AQM/LB/analysis analog.
        placement = CognitiveCompiler().place(STANDARD_SPECS)
        assert placement.domain_of("ip_lookup") is Domain.DIGITAL_TCAM
        assert placement.domain_of("firewall") is Domain.DIGITAL_TCAM
        assert placement.domain_of("aqm") is Domain.ANALOG_PCAM
        assert placement.domain_of("load_balancer") is Domain.ANALOG_PCAM
        assert placement.domain_of("traffic_analysis") is \
            Domain.ANALOG_PCAM

    def test_tolerant_deterministic_function_goes_analog(self):
        placement = CognitiveCompiler().place(
            [spec("coarse_filter", PrecisionClass.LOW)])
        assert placement.domain_of("coarse_filter") is Domain.ANALOG_PCAM

    def test_cognitive_function_with_bad_substrate_fails(self):
        compiler = CognitiveCompiler(
            variability=VariabilityModel(read_sigma=0.5))
        with pytest.raises(CompilationError) as excinfo:
            compiler.place([spec("aqm", PrecisionClass.LOW,
                                 FunctionKind.COGNITIVE)])
        assert "device_noise" in str(excinfo.value)

    def test_deterministic_function_falls_back_to_digital(self):
        compiler = CognitiveCompiler(
            variability=VariabilityModel(read_sigma=0.5))
        placement = compiler.place(
            [spec("coarse_filter", PrecisionClass.LOW)])
        assert placement.domain_of("coarse_filter") is Domain.DIGITAL_TCAM

    def test_rationale_covers_every_function(self):
        placement = CognitiveCompiler().place(STANDARD_SPECS)
        assert set(placement.rationale) == {
            s.name for s in STANDARD_SPECS}

    def test_unknown_function_lookup_rejected(self):
        placement = CognitiveCompiler().place(STANDARD_SPECS)
        with pytest.raises(KeyError):
            placement.domain_of("nonexistent")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            CognitiveCompiler().place(
                [spec("x", PrecisionClass.LOW),
                 spec("x", PrecisionClass.LOW)])

    def test_empty_placement_rejected(self):
        with pytest.raises(ValueError):
            CognitiveCompiler().place([])


class TestSpecValidation:
    def test_name_required(self):
        with pytest.raises(ValueError):
            NetworkFunctionSpec(name="", precision=PrecisionClass.LOW,
                                kind=FunctionKind.COGNITIVE)

    def test_n_fields_positive(self):
        with pytest.raises(ValueError):
            NetworkFunctionSpec(name="x", precision=PrecisionClass.LOW,
                                kind=FunctionKind.COGNITIVE, n_fields=0)

    def test_compiler_geometry_validated(self):
        with pytest.raises(ValueError):
            CognitiveCompiler(array_rows=0)
