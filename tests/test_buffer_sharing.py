"""Shared-buffer admission policies (DT and ABM)."""

import pytest

from repro.dataplane.buffer_sharing import (
    ABMPolicy,
    BufferPool,
    DynamicThresholdPolicy,
)
from repro.packet import Packet


def make_pool(capacity=10_000, queues=("q0", "q1"), priorities=None):
    pool = BufferPool(capacity_bytes=capacity)
    for index, queue_id in enumerate(queues):
        priority = priorities[index] if priorities else 0
        pool.register(queue_id, priority=priority)
    return pool


class TestBufferPool:
    def test_charge_and_release_accounting(self):
        pool = make_pool()
        pool.charge("q0", 1000)
        pool.charge("q1", 500)
        assert pool.used_bytes == 1500
        assert pool.free_bytes == 8500
        pool.release("q0", 1000)
        assert pool.occupancy("q0") == 0

    def test_over_release_rejected(self):
        pool = make_pool()
        pool.charge("q0", 100)
        with pytest.raises(ValueError):
            pool.release("q0", 200)

    def test_unknown_queue_rejected(self):
        pool = make_pool()
        with pytest.raises(KeyError):
            pool.charge("ghost", 100)

    def test_duplicate_registration_rejected(self):
        pool = make_pool()
        with pytest.raises(ValueError):
            pool.register("q0")

    def test_congested_queue_count(self):
        pool = make_pool(queues=("a", "b", "c"),
                         priorities=(0, 0, 1))
        pool.charge("a", 100)
        pool.charge("c", 100)
        assert pool.congested_queues(0) == 1
        assert pool.congested_queues(1) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferPool(0)
        pool = make_pool()
        with pytest.raises(ValueError):
            pool.charge("q0", 0)


class TestDynamicThresholds:
    def test_admission_below_threshold(self):
        pool = make_pool()
        policy = DynamicThresholdPolicy(pool, alpha=0.5)
        assert policy.admits("q0", Packet(size_bytes=1000))
        assert pool.occupancy("q0") == 1000

    def test_threshold_shrinks_as_pool_fills(self):
        pool = make_pool(capacity=10_000)
        policy = DynamicThresholdPolicy(pool, alpha=0.5)
        empty_threshold = policy.threshold_bytes("q0")
        pool.charge("q1", 6000)
        assert policy.threshold_bytes("q0") < empty_threshold

    def test_one_queue_cannot_monopolise_the_pool(self):
        pool = make_pool(capacity=10_000)
        policy = DynamicThresholdPolicy(pool, alpha=1.0)
        admitted = 0
        while policy.admits("q0", Packet(size_bytes=500)):
            admitted += 1
        # DT with alpha=1 converges to half the buffer for one hog.
        assert pool.occupancy("q0") <= 5000
        # ...and the other queue can still get something in.
        assert policy.admits("q1", Packet(size_bytes=500))

    def test_full_pool_rejects(self):
        pool = make_pool(capacity=1000)
        policy = DynamicThresholdPolicy(pool, alpha=10.0)
        assert policy.admits("q0", Packet(size_bytes=900))
        assert not policy.admits("q1", Packet(size_bytes=200))

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            DynamicThresholdPolicy(make_pool(), alpha=0.0)


class TestABM:
    def test_high_priority_gets_more_headroom(self):
        pool = make_pool(queues=("hi", "lo"), priorities=(0, 2))
        policy = ABMPolicy(pool)
        assert policy.threshold_bytes("hi") > policy.threshold_bytes("lo")

    def test_threshold_divided_among_congested_queues(self):
        pool = make_pool(queues=("a", "b", "c"),
                         priorities=(1, 1, 1))
        policy = ABMPolicy(pool)
        alone = policy.threshold_bytes("a")
        pool.charge("a", 100)
        pool.charge("b", 100)
        crowded = policy.threshold_bytes("a")
        assert crowded < alone

    def test_unknown_priority_uses_most_conservative_alpha(self):
        pool = make_pool(queues=("x",), priorities=(9,))
        policy = ABMPolicy(pool)
        assert policy._alpha_for(9) == min(
            policy.alphas_by_priority.values())

    def test_admission_respects_scaled_threshold(self):
        pool = make_pool(capacity=10_000, queues=("hi", "lo"),
                         priorities=(0, 2))
        policy = ABMPolicy(pool)
        while policy.admits("lo", Packet(size_bytes=500)):
            pass
        low_share = pool.occupancy("lo")
        while policy.admits("hi", Packet(size_bytes=500)):
            pass
        assert pool.occupancy("hi") > low_share

    def test_alphas_validated(self):
        with pytest.raises(ValueError):
            ABMPolicy(make_pool(), alphas_by_priority={0: -1.0})
