"""Egress scheduling and the cognitive AQM hook."""

import pytest

from repro.dataplane.traffic_manager import (
    CognitiveTrafficManager,
    TrafficManager,
)
from repro.netfunc.aqm.base import AQMAlgorithm
from repro.packet import Packet


class AlwaysDropAQM(AQMAlgorithm):
    name = "always-drop"

    def on_enqueue(self, packet, queue, now):
        return True


class DropAtDequeueAQM(AQMAlgorithm):
    name = "head-drop"

    def __init__(self):
        self.dropped = 0

    def on_dequeue(self, packet, queue, now, sojourn_s):
        if self.dropped == 0:
            self.dropped += 1
            return True
        return False


class TestTrafficManager:
    def test_strict_priority_scheduling(self):
        manager = TrafficManager(n_ports=1, n_priorities=2)
        low = Packet(priority=1)
        high = Packet(priority=0)
        manager.enqueue(0, low)
        manager.enqueue(0, high)
        assert manager.dequeue(0) is high
        assert manager.dequeue(0) is low

    def test_priority_clamped_to_classes(self):
        manager = TrafficManager(n_ports=1, n_priorities=2)
        manager.enqueue(0, Packet(priority=7))
        assert manager.backlog(0) == 1

    def test_overflow_counted(self):
        manager = TrafficManager(n_ports=1, queue_capacity=1)
        manager.enqueue(0, Packet())
        assert not manager.enqueue(0, Packet())
        assert manager.stats[0].overflow_drops == 1

    def test_dequeue_empty_port(self):
        assert TrafficManager(n_ports=1).dequeue(0) is None

    def test_port_bounds_checked(self):
        manager = TrafficManager(n_ports=2)
        with pytest.raises(IndexError):
            manager.enqueue(5, Packet())
        with pytest.raises(IndexError):
            manager.dequeue(-1)
        with pytest.raises(IndexError):
            manager.queue(9, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficManager(n_ports=0)
        with pytest.raises(ValueError):
            TrafficManager(n_ports=1, n_priorities=0)


class TestCognitiveTrafficManager:
    def test_enqueue_aqm_drop(self):
        manager = CognitiveTrafficManager(1, AlwaysDropAQM)
        packet = Packet()
        assert not manager.enqueue(0, packet)
        assert packet.dropped
        assert manager.stats[0].aqm_drops == 1
        assert manager.backlog(0) == 0

    def test_dequeue_aqm_drop_skips_to_next(self):
        manager = CognitiveTrafficManager(1, DropAtDequeueAQM)
        first, second = Packet(), Packet()
        manager.enqueue(0, first, now=0.0)
        manager.enqueue(0, second, now=0.0)
        served = manager.dequeue(0, now=1.0)
        assert served is second
        assert first.dropped
        assert manager.stats[0].aqm_drops == 1

    def test_per_port_independent_aqms(self):
        manager = CognitiveTrafficManager(2, DropAtDequeueAQM)
        assert manager.aqm(0) is not manager.aqm(1)
        with pytest.raises(IndexError):
            manager.aqm(5)

    def test_last_sojourn_tracked(self):
        manager = CognitiveTrafficManager(1, DropAtDequeueAQM)
        manager.enqueue(0, Packet(), now=0.0)
        manager.enqueue(0, Packet(), now=0.0)
        manager.dequeue(0, now=0.25)
        assert manager.last_sojourn_s(0) == pytest.approx(0.25)

    def test_port_rate_validated(self):
        with pytest.raises(ValueError):
            CognitiveTrafficManager(1, AlwaysDropAQM, port_rate_bps=0.0)
