"""SwitchFabric unit behaviour: merges, egress, metrics, lifecycle."""

import numpy as np
import pytest

from tests.test_runtime_golden import build_processor, make_traffic

from repro.dataplane.results import Verdict
from repro.fabric import SwitchFabric, ToeplitzRSS
from repro.fabric.shards import merge_telemetry
from repro.simnet.scenarios import default_switch_spec, scenario
from repro.fabric.scenario import build_fabric


def small_fabric(n_shards=2, **kwargs):
    return SwitchFabric(lambda: build_processor(4096, None), n_shards,
                        **kwargs)


def test_rejects_bad_construction():
    with pytest.raises(ValueError):
        small_fabric(0)
    with pytest.raises(ValueError):
        small_fabric(2, mode="threads")
    with pytest.raises(ValueError):
        small_fabric(2, rss=ToeplitzRSS(3))


def test_process_matches_process_batch():
    with small_fabric() as batch_fab, small_fabric() as scalar_fab:
        packets = make_traffic(n=60)
        batched = batch_fab.process_batch(packets, now=0.5)
        singles = [scalar_fab.process(p, now=0.5) for p in packets]
        assert [r.verdict for r in batched] == \
            [r.verdict for r in singles]
        assert [r.port for r in batched] == [r.port for r in singles]


def test_results_carry_original_packets_in_order():
    with small_fabric(4) as fabric:
        packets = make_traffic(n=40)
        results = fabric.process_batch(packets, now=0.5)
        assert [r.packet for r in results] == packets


def test_verdict_counts_and_processed_sum_across_shards():
    with small_fabric(4) as fabric:
        packets = make_traffic(n=120)
        results = fabric.process_batch(packets, now=0.5)
        assert fabric.processed == 120
        counts = fabric.verdict_counts
        assert sum(counts.values()) == 120
        assert counts[Verdict.QUEUED] == \
            sum(1 for r in results if r.verdict is Verdict.QUEUED)


def test_flow_cache_view_sums_shards():
    with small_fabric(2) as fabric:
        packets = make_traffic(n=240)
        fabric.process_batch(packets, now=0.5, chunk_size=64)
        view = fabric.flow_cache
        assert view.hits + view.misses > 0
        assert len(view) == view.entries > 0


def test_dequeue_round_robin_drains_all_shards():
    with small_fabric(4) as fabric:
        packets = make_traffic(n=240)
        results = fabric.process_batch(packets, now=0.5, chunk_size=64)
        queued = sum(1 for r in results if r.verdict is Verdict.QUEUED)
        drained = sum(len(fabric.drain(port, now=1.0))
                      for port in range(fabric.n_ports))
        assert drained == queued
        # Everything served: another dequeue on any port yields None.
        assert all(fabric.dequeue(port, now=1.0) is None
                   for port in range(fabric.n_ports))


def test_drain_respects_limit():
    with small_fabric(2) as fabric:
        fabric.process_batch(make_traffic(n=240), now=0.5)
        got = fabric.drain(0, now=1.0, limit=3)
        assert len(got) == 3


def test_poll_metrics_shape_and_steering():
    with small_fabric(2) as fabric:
        fabric.process_batch(make_traffic(n=240), now=0.5,
                             chunk_size=60)
        metrics = fabric.poll_metrics()
        assert metrics["generation"] == 0
        assert metrics["mode"] == "in_process"
        assert metrics["n_shards"] == 2
        assert metrics["processed"] == 240
        assert len(metrics["shards"]) == 2
        steering = metrics["steering"]
        assert steering["hashed_packets"] == 240
        assert sum(steering["per_shard_packets"]) == 240
        assert steering["imbalance"] >= 1.0
        assert steering["steering_seconds"] >= 0.0
        assert "tables" in metrics["telemetry"]
        assert metrics["energy_total_j"] > 0.0


def test_slice_extremes_takes_max_over_shards():
    with small_fabric(2) as fabric:
        fabric.process_batch(make_traffic(n=240), now=0.5)
        delay, pdp, backlog = fabric.slice_extremes()
        per_shard = [shard.extremes() for shard in fabric.shards]
        assert delay == max(e[0] for e in per_shard)
        assert pdp == max(e[1] for e in per_shard)
        assert backlog == max(e[2] for e in per_shard)
        assert backlog > 0


def test_robustness_stats_prefixes_shard_names():
    with small_fabric(2) as fabric:
        stats = fabric.robustness_stats()
        assert stats["fallback_events"] == 0
        assert stats["retries"] == 0
        assert stats["degraded_tables"] == []


def test_merge_telemetry_recomputes_hit_rate():
    merged = merge_telemetry([
        {"tables": {"t": {"lookups": 10, "hits": 5, "hit_rate": 0.5,
                          "verdicts": {"allow": 5}}},
         "gauges": {"port0.backlog": 2.0}, "events": {"drop": 1}},
        {"tables": {"t": {"lookups": 30, "hits": 5, "hit_rate": 1 / 6,
                          "verdicts": {"allow": 3, "deny": 2}}},
         "gauges": {"port0.backlog": 3.0}, "events": {"drop": 2}},
    ])
    table = merged["tables"]["t"]
    assert table["lookups"] == 40
    assert table["hits"] == 10
    assert table["hit_rate"] == pytest.approx(0.25)
    assert table["verdicts"] == {"allow": 8, "deny": 2}
    assert merged["gauges"]["port0.backlog"] == 5.0
    assert merged["events"]["drop"] == 3


def test_process_columns_equals_packet_path():
    spec = default_switch_spec()
    entry = scenario("flash_crowd")
    chunks = list(entry.stream(seed=3, n_packets=1500, chunk_size=500))
    a = build_fabric(spec, 7, 2)
    b = build_fabric(spec, 7, 2)
    try:
        for cols in chunks:
            now = float(cols.times_s[0])
            codes, ports = a.process_columns(cols, now=now,
                                             chunk_size=250)
            results = b.process_batch(cols.to_packets(), now=now,
                                      chunk_size=250)
            assert [int(c) for c in codes] == \
                [list(Verdict).index(r.verdict) for r in results]
            assert [int(p) for p in ports] == \
                [-1 if r.port is None else r.port for r in results]
        assert a.energy_total_j() == b.energy_total_j()
    finally:
        a.close()
        b.close()


def test_close_is_idempotent_and_context_manager_closes():
    fabric = small_fabric(2, mode="multiprocessing")
    with fabric:
        fabric.process_batch(make_traffic(n=30), now=0.5)
    fabric.close()  # second close: no-op


def test_multiprocessing_workers_survive_many_chunks():
    with small_fabric(2, mode="multiprocessing") as fabric:
        for _ in range(5):
            fabric.process_batch(make_traffic(n=60), now=0.5,
                                 chunk_size=16)
        assert fabric.processed == 300


def test_fabric_runs_scenario_end_to_end():
    from repro.fabric import fabric_scenario_factory
    from repro.simnet.scenarios import run_scenario

    report = run_scenario(
        "flash_crowd", seed=1, n_packets=2000, chunk_size=512,
        admission_chunk=128, observe=True,
        processor_factory=fabric_scenario_factory(2))
    assert sum(report.verdict_counts.values()) == 2000
    assert report.energy_total_j > 0
    assert report.metrics is not None
    assert report.metrics["n_shards"] == 2
    assert report.metrics["steering"]["hashed_packets"] == 2000
    assert len(report.windows) == 20


def test_switch_path_of_fabrics_delivers():
    from repro.simnet.multihop import run_switch_path

    spec = default_switch_spec()
    entry = scenario("flash_crowd")
    hops = [build_fabric(spec, 11, 2), build_fabric(spec, 12, 1)]
    try:
        result = run_switch_path(
            hops, entry.stream(seed=5, n_packets=1200, chunk_size=600),
            link_delays_s=[0.002, 0.002],
            port_rate_bps=spec.port_rate_bps)
        assert result.hops[0].admitted == 1200
        queued_out_of_hop0 = result.hops[0].verdict_counts["queued"]
        assert result.hops[1].admitted == queued_out_of_hop0
        assert result.delivered == \
            result.hops[1].verdict_counts["queued"]
        assert result.mean_delay_s > 0.004  # two links of 2 ms
        assert result.energy_total_j == pytest.approx(
            sum(h.energy_total_j for h in result.hops))
    finally:
        for hop in hops:
            hop.close()
