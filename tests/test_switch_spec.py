"""Declarative switch assembly via SwitchSpec + build_switch."""

from dataclasses import replace

import numpy as np
import pytest

from repro.dataplane import (
    CognitiveNetworkController,
    SwitchSpec,
    Verdict,
    build_switch,
)
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.netfunc.firewall import Action, FirewallRule
from repro.packet import Packet
from repro.robustness.degradation import DegradingAQM


def packet(dst, size=500):
    return Packet(size_bytes=size,
                  fields={"src_ip": "1.2.3.4", "dst_ip": dst,
                          "src_port": 1000, "dst_port": 80,
                          "protocol": 6})


BASE = SwitchSpec(
    n_ports=2,
    routes=(("10.0.0.0/8", 0), ("192.168.0.0/16", 1)),
    firewall_rules=(FirewallRule(action=Action.DENY,
                                 dst_prefix="203.0.113.0/24"),))


class TestSpecValidation:
    def test_route_port_out_of_range(self):
        with pytest.raises(ValueError, match="targets port 5"):
            SwitchSpec(n_ports=2, routes=(("10.0.0.0/8", 5),))

    def test_needs_a_port(self):
        with pytest.raises(ValueError, match="at least one port"):
            SwitchSpec(n_ports=0)

    def test_with_routes_appends_immutably(self):
        extended = BASE.with_routes(("172.16.0.0/12", 1))
        assert len(extended.routes) == 3
        assert len(BASE.routes) == 2
        assert extended.n_ports == BASE.n_ports

    def test_supervision_requires_degradation(self):
        with pytest.raises(ValueError, match="degradation-capable"):
            build_switch(SwitchSpec(n_ports=1, supervised=True))


class TestBuildSwitch:
    def test_tables_installed_from_spec(self):
        processor = build_switch(BASE)
        routed = processor.process(packet("10.1.2.3"), now=0.0)
        denied = processor.process(packet("203.0.113.9"), now=0.0)
        lost = processor.process(packet("8.8.8.8"), now=0.0)
        assert routed.verdict is Verdict.QUEUED and routed.port == 0
        assert denied.verdict is Verdict.DROPPED_ACL
        assert lost.verdict is Verdict.DROPPED_NO_ROUTE

    def test_scalar_knobs_forwarded(self):
        spec = SwitchSpec(n_ports=3, queue_capacity=17,
                          flow_cache_size=0)
        processor = build_switch(spec)
        assert processor.traffic_manager.n_ports == 3
        assert processor.flow_cache is None

    def test_graceful_degradation_wraps_every_port(self):
        processor = build_switch(
            replace(BASE, graceful_degradation=True))
        for port in range(2):
            assert isinstance(processor.traffic_manager.aqm(port),
                              DegradingAQM)

    def test_supervised_registers_and_ticks(self):
        spec = replace(BASE, graceful_degradation=True,
                       supervised=True)
        controller = CognitiveNetworkController()
        processor = build_switch(spec, controller=controller)
        assert processor.controller is controller
        assert len(controller.supervised) == spec.n_ports
        # The supervision middleware drives controller.tick once per
        # chunk; ticking must not change traffic outcomes.
        result = processor.process(packet("192.168.7.7"), now=0.5)
        assert result.verdict is Verdict.QUEUED and result.port == 1

    def test_aqm_factory_override(self):
        built = []

        def factory():
            aqm = PCAMAQM(rng=np.random.default_rng(0))
            built.append(aqm)
            return aqm

        processor = build_switch(SwitchSpec(n_ports=2),
                                 aqm_factory=factory)
        assert len(built) == 2
        assert processor.traffic_manager.aqm(0) is built[0]

    def test_controller_convenience_method(self):
        controller = CognitiveNetworkController()
        processor = controller.build_switch(BASE)
        assert processor.controller is controller
