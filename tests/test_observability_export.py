"""Exporter golden tests: Prometheus text, JSON, parse and lint."""

import json

import pytest

from repro.observability.export import (
    lint_prometheus,
    parse_prometheus_text,
    to_json,
    to_prometheus_text,
)
from repro.observability.registry import MetricsRegistry


def _demo_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.gauge("demo_depth", "Depth.").set(2.5)
    histogram = registry.histogram(
        "demo_latency_seconds", "Latency.", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    registry.counter("demo_packets_total", "Packets.",
                     {"port": "0"}).inc(3)
    return registry


GOLDEN = """\
# HELP demo_depth Depth.
# TYPE demo_depth gauge
demo_depth 2.5
# HELP demo_latency_seconds Latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.1"} 1
demo_latency_seconds_bucket{le="1"} 2
demo_latency_seconds_bucket{le="+Inf"} 3
demo_latency_seconds_sum 5.55
demo_latency_seconds_count 3
# HELP demo_packets_total Packets.
# TYPE demo_packets_total counter
demo_packets_total{port="0"} 3
"""


class TestPrometheusText:
    def test_golden_exposition(self):
        assert to_prometheus_text(_demo_registry()) == GOLDEN

    def test_registry_to_prometheus_delegates(self):
        assert _demo_registry().to_prometheus() == GOLDEN

    def test_integers_render_without_decimal_point(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(4)
        assert "c_total 4\n" in to_prometheus_text(registry)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total",
                         labels={"name": 'quo"te\\back\nline'}).inc()
        text = to_prometheus_text(registry)
        assert r'name="quo\"te\\back\nline"' in text
        # And the escape survives a parse round-trip.
        parsed = parse_prometheus_text(text)
        (_, labels, _), = parsed["samples"]
        assert labels == {"name": 'quo"te\\back\nline'}

    def test_export_runs_collectors(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda reg: reg.counter("pulled_total").set_total(9))
        assert "pulled_total 9" in to_prometheus_text(registry)


class TestParse:
    def test_round_trips_every_sample(self):
        parsed = parse_prometheus_text(GOLDEN)
        assert parsed["types"] == {
            "demo_depth": "gauge",
            "demo_latency_seconds": "histogram",
            "demo_packets_total": "counter"}
        assert parsed["helps"]["demo_depth"] == "Depth."
        assert ("demo_packets_total", {"port": "0"}, 3.0) \
            in parsed["samples"]
        assert ("demo_latency_seconds_bucket", {"le": "+Inf"}, 3.0) \
            in parsed["samples"]
        assert len(parsed["samples"]) == 7

    def test_duplicate_type_line_rejected(self):
        text = "# TYPE a counter\n# TYPE a counter\na 1\n"
        with pytest.raises(ValueError):
            parse_prometheus_text(text)

    def test_blank_lines_and_comments_skipped(self):
        text = "# a comment\n\n# TYPE x gauge\nx 1.5\n"
        parsed = parse_prometheus_text(text)
        assert parsed["samples"] == [("x", {}, 1.5)]


class TestLint:
    def test_clean_export_has_no_problems(self):
        assert lint_prometheus(to_prometheus_text(_demo_registry())) == []

    def test_sample_without_type_line_flagged(self):
        problems = lint_prometheus("orphan_total 1\n")
        assert any("no TYPE line" in problem for problem in problems)

    def test_duplicate_sample_flagged(self):
        text = "# TYPE a counter\na 1\na 2\n"
        problems = lint_prometheus(text)
        assert any("duplicate sample" in problem for problem in problems)

    def test_unknown_type_flagged(self):
        text = "# TYPE a summary\na 1\n"
        problems = lint_prometheus(text)
        assert any("unknown type" in problem for problem in problems)

    def test_histogram_missing_series_flagged(self):
        text = ('# TYPE h histogram\n'
                'h_bucket{le="+Inf"} 1\n'
                'h_count 1\n')  # no h_sum
        problems = lint_prometheus(text)
        assert any("missing h_sum" in problem for problem in problems)

    def test_unparseable_text_reported_not_raised(self):
        problems = lint_prometheus("# TYPE a counter\n# TYPE a counter\n")
        assert len(problems) == 1
        assert "unparseable" in problems[0]


class TestJson:
    def test_json_round_trips_through_from_snapshot(self):
        registry = _demo_registry()
        document = to_json(registry)
        rebuilt = MetricsRegistry.from_snapshot(json.loads(document))
        assert rebuilt.snapshot() == registry.snapshot()

    def test_json_is_sorted_and_indentable(self):
        document = to_json(_demo_registry(), indent=2)
        parsed = json.loads(document)
        assert "\n" in document
        names = [entry["name"] for entry in parsed["metrics"]]
        assert names == sorted(names)
