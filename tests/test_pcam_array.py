"""pCAM match-action memory: stored words searched in parallel."""

import numpy as np
import pytest

from repro.core.pcam_array import PCAMArray, PCAMWord
from repro.core.pcam_cell import prog_pcam

FIELDS = ("dst_port", "size")


def make_array() -> PCAMArray:
    array = PCAMArray(FIELDS)
    # Word 0: web traffic (port ~80, small packets).
    array.add({"dst_port": prog_pcam(70, 79, 81, 90),
               "size": prog_pcam(0, 100, 600, 800)})
    # Word 1: video (port ~443, large packets).
    array.add({"dst_port": prog_pcam(430, 442, 444, 455),
               "size": prog_pcam(800, 1200, 1500, 1600)})
    return array


class TestWord:
    def test_match_is_product_over_fields(self):
        word = PCAMWord.from_params(
            {"a": prog_pcam(0, 1, 2, 3), "b": prog_pcam(0, 1, 2, 3)})
        assert word.match({"a": 1.5, "b": 0.5}) == pytest.approx(0.5)

    def test_missing_field_rejected(self):
        word = PCAMWord.from_params({"a": prog_pcam(0, 1, 2, 3)})
        with pytest.raises(KeyError):
            word.match({"b": 1.0})

    def test_deterministic_match_requires_all_fields(self):
        word = PCAMWord.from_params(
            {"a": prog_pcam(0, 1, 2, 3), "b": prog_pcam(0, 1, 2, 3)})
        assert word.deterministic_match({"a": 1.5, "b": 1.5})
        assert not word.deterministic_match({"a": 1.5, "b": 0.5})

    def test_empty_word_rejected(self):
        with pytest.raises(ValueError):
            PCAMWord({})

    def test_cell_access(self):
        word = PCAMWord.from_params({"a": prog_pcam(0, 1, 2, 3)})
        assert word.cell("a").params.m2 == 1
        with pytest.raises(KeyError):
            word.cell("missing")


class TestSearch:
    def test_exact_query_matches_deterministically(self):
        array = make_array()
        result = array.search({"dst_port": 80, "size": 400})
        assert result.hit
        assert result.best_index == 0
        assert 0 in result.deterministic_indices

    def test_rq1_zero_match_query_still_ranks(self):
        # A query matching no word exactly still returns the closest
        # stored policy - the paper's headline analog capability.
        array = make_array()
        result = array.search({"dst_port": 85, "size": 650})
        assert not result.hit
        assert result.best_index == 0
        assert 0.0 < result.best_probability < 1.0

    def test_probabilities_one_per_word(self):
        array = make_array()
        result = array.search({"dst_port": 80, "size": 400})
        assert result.probabilities.shape == (2,)

    def test_search_energy_scales_with_cells(self):
        array = make_array()
        energy_two = array.search({"dst_port": 80, "size": 400}).energy_j
        array.add({"dst_port": prog_pcam(0, 1, 2, 3),
                   "size": prog_pcam(0, 1, 2, 3)})
        energy_three = array.search({"dst_port": 80, "size": 400}).energy_j
        assert energy_three == pytest.approx(energy_two * 1.5)

    def test_empty_array_misses(self):
        array = PCAMArray(FIELDS)
        result = array.search({"dst_port": 80, "size": 100})
        assert result.best_index is None
        assert not result.hit
        assert result.energy_j == 0.0

    def test_search_counter(self):
        array = make_array()
        array.search({"dst_port": 80, "size": 400})
        assert array.searches == 1


class TestManagement:
    def test_field_mismatch_rejected(self):
        array = make_array()
        with pytest.raises(ValueError):
            array.add({"wrong_field": prog_pcam(0, 1, 2, 3)})

    def test_remove_and_bounds(self):
        array = make_array()
        array.remove(0)
        assert len(array) == 1
        with pytest.raises(IndexError):
            array.remove(5)
        with pytest.raises(IndexError):
            array.word(5)

    def test_word_accessor(self):
        array = make_array()
        assert set(array.word(0).fields) == set(FIELDS)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PCAMArray(())
        with pytest.raises(ValueError):
            PCAMArray(FIELDS, match_threshold=0.0)
