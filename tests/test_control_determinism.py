"""Determinism of the learned control plane.

The learning policies draw every variate from the counter-based
SplitMix64 streams of :mod:`repro.simnet.workloads`, indexed by
*decision* counts — never by packets, chunks or wall time.  Two
consequences are pinned here with hypothesis sweeps:

* **chunk-size invariance** — regenerating the same scenario in
  different column-chunk sizes changes nothing about the traffic or
  the decision schedule, so the learned programming is bit-identical;
* **shard-count invariance** — a fleet sweep senses partition
  invariants (summed per-port backlog gauges, fleet-wide drop and
  packet counts), so resharding the fabric N in {1, 2, 4} leaves the
  learned programming bit-identical while every candidate still
  deploys through one gated two-phase commit per action.

Plus the ground rule that makes either possible: no learning
component touches numpy's global RNG.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.control.fleet import FleetLearningController
from repro.control.gate import control_switch_factory
from repro.control.learning import SPSAPolicy
from repro.dataplane.switch import SwitchSpec, build_switch
from repro.fabric import SwitchFabric
from repro.packet import Packet
from repro.simnet.scenarios import default_switch_spec, run_scenario

GATE_SPEC = dict(port_rate_bps=60e6, queue_capacity=2_400,
                 n_priorities=1)


def learned_sweep(seed: int, chunk_size: int) -> dict:
    """One short learned diurnal sweep; returns its full trajectory."""
    attachments: dict = {}
    spec = default_switch_spec(**GATE_SPEC)
    run_scenario(
        "diurnal", seed=seed, n_packets=30_720, spec=spec,
        chunk_size=chunk_size,
        processor_factory=control_switch_factory(
            learned=True, min_interval_s=0.06,
            attachments=attachments))
    policy = attachments["policy"]
    loop = attachments["loop"]
    return {"programming": policy.programming,
            "best": policy.best_programming,
            "episodes": policy.episodes,
            "decisions": loop.decisions,
            "applied": loop.applied}


@settings(max_examples=2, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=7))
def test_learned_programming_is_chunk_size_invariant(seed):
    """Column chunking is a memory knob, not a semantics knob.

    Chunk sizes are multiples of the admission chunk (256), so the
    admission slice boundaries — and therefore the simulated queue
    dynamics — are identical; what the test pins is that the *sweep*
    (RNG draws, episode schedule, deployments) introduces no
    chunk-shape dependence of its own.
    """
    small = learned_sweep(seed, chunk_size=1_024)
    large = learned_sweep(seed, chunk_size=65_536)
    assert small["episodes"] > 0
    assert small == large


# ----------------------------------------------------------------------
# Fleet resharding
# ----------------------------------------------------------------------
def build_shard():
    spec = SwitchSpec(n_ports=2, routes=(("10.0.0.0/8", 0),),
                      flow_cache_size=0)
    return build_switch(spec)


def probe_chunk(now: float, n: int = 8) -> list[Packet]:
    return [Packet(size_bytes=200, created_at=now,
                   fields={"src_ip": f"10.4.{i}.1",
                           "src_port": 2000 + i,
                           "dst_ip": f"10.9.{i}.9", "dst_port": 80,
                           "protocol": 6})
            for i in range(n)]


def fleet_sweep(seed: int, n_shards: int) -> dict:
    """Drive a learned fleet sweep over an N-shard fabric.

    The probe stream builds port backlog without ever engaging the
    shard AQMs (the per-shard implied delay stays below any
    programmable band), so the only congestion signal is the
    partition-invariant summed backlog gauge.
    """
    with SwitchFabric(build_shard, n_shards) as fabric:
        aqms = [shard.processor.traffic_manager.aqm(port)
                for shard in fabric.shards for port in range(2)]
        policy = SPSAPolicy(seed, np.log([0.120, 0.5]))
        fleet = FleetLearningController(
            fabric.controller, policy, min_interval_s=0.05,
            drain_pps=200.0, gate_aqms=aqms)
        for tick in range(40):
            now = 0.1 * tick
            fabric.process_batch(probe_chunk(now), now=now)
            fleet.step(now)
        final = fleet.finalise()
        generation = fabric.generation
        programmings = {
            (round(getattr(aqm, "analog", aqm).target_delay_s, 12),
             round(getattr(aqm, "analog", aqm).max_deviation_s, 12))
            for aqm in aqms}
        return {"final": final,
                "episodes": policy.episodes,
                "commits": fleet.commits,
                "generation": generation,
                "gate_checks": fleet.gate.checks,
                "gate_violations": fleet.gate.violations,
                "programmings": programmings}


@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=7))
def test_learned_programming_is_shard_count_invariant(seed):
    runs = {n: fleet_sweep(seed, n) for n in (1, 2, 4)}
    reference = runs[1]
    assert reference["episodes"] > 0
    assert reference["commits"] > 0
    assert reference["gate_violations"] == 0
    for n in (2, 4):
        assert runs[n] == reference, \
            f"resharding to {n} changed the learned sweep"
    # The finalised programming is shared by every table, uniformly.
    assert len(reference["programmings"]) == 1
    (programming,) = reference["programmings"]
    assert programming == pytest.approx(reference["final"])


def test_learning_never_touches_the_global_rng():
    state_before = np.random.get_state()[1].copy()
    learned_sweep(0, chunk_size=8_192)
    fleet_sweep(0, n_shards=2)
    state_after = np.random.get_state()[1]
    assert (state_before == state_after).all()
