"""Span tracing under the sim clock, and the profiling hooks."""

import pytest

from repro.observability.profiling import (
    PROFILE_METRIC,
    Profiler,
    get_default_profiler,
    profiled,
    set_default_profiler,
)
from repro.observability.registry import MetricsRegistry
from repro.observability.tracing import (
    SimClock,
    Tracer,
    _NULL_SPAN,
    maybe_span,
)


class TestSimClock:
    def test_set_and_advance(self):
        clock = SimClock()
        clock.set(1.5)
        clock.advance(0.5)
        assert clock() == 2.0

    def test_rewind_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_start_time(self):
        assert SimClock(3.0)() == 3.0


class TestSpanNesting:
    def test_child_records_parent_id(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        children = tracer.children_of(root)
        assert [span.name for span in children] == ["a", "b"]

    def test_active_stack_outermost_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert [s.name for s in tracer.active] == [
                    "outer", "inner"]
        assert tracer.active == ()

    def test_finished_children_before_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.finished
        assert span.end_s is not None
        assert tracer.active == ()


class TestSpanTimestamps:
    def test_sim_clock_drives_start_and_end(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        clock.set(10.0)
        with tracer.span("op"):
            clock.set(10.25)
        (span,) = tracer.finished
        assert span.start_s == 10.0
        assert span.end_s == 10.25
        assert span.duration_s == pytest.approx(0.25)

    def test_wall_time_recorded(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        (span,) = tracer.finished
        assert span.wall_s is not None and span.wall_s >= 0.0

    def test_open_span_duration_zero(self):
        tracer = Tracer()
        with tracer.span("op") as span:
            assert span.duration_s == 0.0

    def test_attributes_kept(self):
        tracer = Tracer()
        with tracer.span("op", batch=8):
            pass
        assert tracer.spans("op")[0].attributes == {"batch": 8}

    def test_to_dict_serialisable(self):
        tracer = Tracer()
        with tracer.span("op", k="v"):
            pass
        (entry,) = tracer.to_dicts()
        assert entry["name"] == "op"
        assert entry["attributes"] == {"k": "v"}


class TestTracerRetention:
    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer(max_spans=3)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.finished] == ["s7", "s8", "s9"]
        assert tracer.started == 10

    def test_max_spans_validated(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_reset_clears_finished(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        tracer.reset()
        assert tracer.finished == ()
        assert tracer.started == 0

    def test_format_tree_indents_children(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        tree = tracer.format_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("parent")
        assert lines[1].startswith("  child")


class TestTracerRegistry:
    def test_finished_spans_feed_latency_histograms(self):
        registry = MetricsRegistry()
        clock = SimClock()
        tracer = Tracer(clock=clock, registry=registry)
        with tracer.span("stage"):
            clock.advance(0.01)
        wall = registry.histogram("span_wall_seconds",
                                  labels={"span": "stage"})
        sim = registry.histogram("span_sim_seconds",
                                 labels={"span": "stage"})
        assert wall.count == 1
        assert sim.count == 1
        assert sim.sum == pytest.approx(0.01)


class TestMaybeSpan:
    def test_none_tracer_returns_shared_null_context(self):
        assert maybe_span(None, "anything") is _NULL_SPAN
        with maybe_span(None, "anything"):
            pass  # usable as a context manager

    def test_real_tracer_opens_a_span(self):
        tracer = Tracer()
        with maybe_span(tracer, "op", n=1):
            pass
        assert tracer.spans("op")[0].attributes == {"n": 1}


class _Kernel:
    def __init__(self, profiler=None):
        self.profiler = profiler

    @profiled("kernel.run")
    def run(self, x):
        return x * 2


class TestProfiled:
    def teardown_method(self):
        set_default_profiler(None)

    def test_instance_profiler_records_site(self):
        registry = MetricsRegistry()
        profiler = Profiler(registry)
        kernel = _Kernel(profiler=profiler)
        assert kernel.run(3) == 6
        histogram = profiler.site_histogram("kernel.run")
        assert histogram is not None and histogram.count == 1
        assert registry.histogram(PROFILE_METRIC,
                                  labels={"site": "kernel.run"}).count == 1

    def test_default_profiler_fallback(self):
        registry = MetricsRegistry()
        profiler = Profiler(registry)
        set_default_profiler(profiler)
        assert get_default_profiler() is profiler
        kernel = _Kernel()  # no instance profiler
        kernel.run(1)
        assert profiler.site_histogram("kernel.run").count == 1

    def test_unprofiled_call_is_passthrough(self):
        kernel = _Kernel()
        assert kernel.run(5) == 10  # no profiler anywhere: still works

    def test_site_name_attached_to_wrapper(self):
        assert _Kernel.run.__profiled_site__ == "kernel.run"

    def test_empty_site_rejected(self):
        with pytest.raises(ValueError):
            profiled("")

    def test_exception_still_recorded(self):
        registry = MetricsRegistry()
        profiler = Profiler(registry)

        class Boom:
            def __init__(self):
                self.profiler = profiler

            @profiled("boom")
            def run(self):
                raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            Boom().run()
        assert profiler.site_histogram("boom").count == 1
