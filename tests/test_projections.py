"""Switch-scale power projections."""

import pytest

from repro.energy.projections import (
    SwitchProfile,
    TOFINO2_CLASS,
    power_comparison,
    projected_power_w,
)


def test_bits_per_second():
    profile = SwitchProfile("x", packets_per_second=1e9,
                            cam_bits=100, tables_per_packet=2)
    assert profile.bits_per_second == pytest.approx(2e11)


def test_projected_power_linear_in_energy():
    assert projected_power_w(2e-15) == pytest.approx(
        2.0 * projected_power_w(1e-15))


def test_tofino_class_digital_power_order_of_magnitude():
    # 0.58 fJ/bit over 18 Mb x 4 tables at 3.2 G searches/s lands in
    # the tens-of-watts regime of real lookup stages.
    power = projected_power_w(0.58e-15, TOFINO2_CLASS)
    assert 10.0 < power < 1000.0


def test_comparison_factor_matches_energy_ratio():
    result = power_comparison(analog_j_per_bit=1e-17,
                              digital_j_per_bit=0.58e-15)
    assert result["factor"] == pytest.approx(58.0)
    assert result["saving_w"] == pytest.approx(
        result["digital_w"] - result["analog_w"])


def test_zero_analog_power_infinite_factor():
    assert power_comparison(0.0, 1e-15)["factor"] == float("inf")


def test_validation():
    with pytest.raises(ValueError):
        SwitchProfile("x", packets_per_second=0.0, cam_bits=10)
    with pytest.raises(ValueError):
        SwitchProfile("x", packets_per_second=1.0, cam_bits=0)
    with pytest.raises(ValueError):
        projected_power_w(-1.0)
