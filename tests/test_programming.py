"""The programming abstractions (paper Sec. 5 pseudocode)."""

import pytest

from repro.core.match_action import StoredActionMemory
from repro.core.pcam_cell import prog_pcam
from repro.core.programming import (
    PipelineProgram,
    TableProgram,
    update_pcam,
)


class TestPipelineProgram:
    def test_builds_pipeline_in_declaration_order(self):
        program = (PipelineProgram()
                   .stage("sojourn", prog_pcam(0, 1, 2, 3))
                   .stage("d_sojourn", prog_pcam(-1, 0, 1, 2)))
        pipeline = program.build()
        assert pipeline.stage_names == ("sojourn", "d_sojourn")

    def test_duplicate_stage_rejected(self):
        program = PipelineProgram().stage("a", prog_pcam(0, 1, 2, 3))
        with pytest.raises(ValueError):
            program.stage("a", prog_pcam(0, 1, 2, 3))

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            PipelineProgram().build()

    def test_unnamed_stage_rejected(self):
        with pytest.raises(ValueError):
            PipelineProgram().stage("", prog_pcam(0, 1, 2, 3))

    def test_custom_composition(self):
        program = (PipelineProgram(composition="min")
                   .stage("a", prog_pcam(0, 1, 2, 3)))
        assert program.build().composition == "min"


class TestUpdatePcam:
    def test_updates_pipeline_stage(self):
        pipeline = (PipelineProgram()
                    .stage("a", prog_pcam(0, 1, 2, 3))).build()
        update_pcam(pipeline, "a", prog_pcam(10, 11, 12, 13))
        assert pipeline.stage("a").params.m1 == 10

    def test_updates_table_stage(self):
        table = (TableProgram("analogAQM")
                 .output(PipelineProgram()
                         .stage("a", prog_pcam(0, 1, 2, 3)))).build()
        update_pcam(table, "a", prog_pcam(5, 6, 7, 8))
        assert table.pipeline.stage("a").params.m3 == 7

    def test_unknown_stage_rejected(self):
        pipeline = (PipelineProgram()
                    .stage("a", prog_pcam(0, 1, 2, 3))).build()
        with pytest.raises(KeyError):
            update_pcam(pipeline, "missing", prog_pcam(0, 1, 2, 3))


class TestTableProgram:
    def test_full_table_construction(self):
        actions = StoredActionMemory()
        actions.store(0.5, 1.01, "escalate")
        table = (TableProgram("analogAQM")
                 .output(PipelineProgram()
                         .stage("sojourn", prog_pcam(0, 1, 2, 3))
                         .stage("buffer", prog_pcam(0, 1, 2, 3)))
                 .action(lambda t, o, f: "acted")
                 .stored_actions(actions)
                 ).build()
        assert table.name == "analogAQM"
        assert table.reads == ("sojourn", "buffer")
        result = table.process({"sojourn": 1.5, "buffer": 1.5})
        assert result.action_taken == "acted"
        assert result.fetched_action == "escalate"

    def test_output_required(self):
        with pytest.raises(ValueError):
            TableProgram("t").build()

    def test_name_required(self):
        with pytest.raises(ValueError):
            TableProgram("")

    def test_device_backed_build(self, rng):
        from repro.device.variability import VariabilityModel
        table = (TableProgram("t")
                 .output(PipelineProgram()
                         .stage("a", prog_pcam(0.5, 1.0, 2.0, 2.5)))
                 ).build(device_backed=True,
                         variability=VariabilityModel.ideal(), rng=rng)
        result = table.process({"a": 1.5})
        assert result.output == pytest.approx(1.0, abs=0.05)
        assert result.energy_j > 0.0
