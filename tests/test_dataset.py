"""The synthetic chip measurement campaign."""

import numpy as np
import pytest

from repro.device.dataset import (
    MemristorDataset,
    REFERENCE_READ_DURATION_S,
    generate_dataset,
)


class TestGeneration:
    def test_grid_shapes(self, small_dataset):
        n_states = len(small_dataset.states)
        n_voltages = len(small_dataset.read_voltages)
        assert small_dataset.currents_a.shape == (n_states, n_voltages)
        assert small_dataset.energies_j.shape == (n_states, n_voltages)

    def test_voltage_grid_covers_figure7_ranges(self, small_dataset):
        assert small_dataset.read_voltages.min() <= -2.0
        assert small_dataset.read_voltages.max() >= 4.0

    def test_resistance_window_spans_decades(self, small_dataset):
        assert small_dataset.resistance_window > 1e6

    def test_energies_consistent_with_currents(self, small_dataset):
        expected = (np.abs(small_dataset.read_voltages[None, :]
                           * small_dataset.currents_a)
                    * REFERENCE_READ_DURATION_S)
        np.testing.assert_allclose(small_dataset.energies_j, expected)

    def test_rejects_degenerate_grids(self):
        with pytest.raises(ValueError):
            generate_dataset(n_states=1)
        with pytest.raises(ValueError):
            generate_dataset(n_voltages=1)
        with pytest.raises(ValueError):
            generate_dataset(v_min=2.0, v_max=1.0)

    def test_reproducible_with_seed(self):
        a = generate_dataset(n_states=6, n_voltages=9, seed=3,
                             include_sweeps=False,
                             include_pulse_trains=False)
        b = generate_dataset(n_states=6, n_voltages=9, seed=3,
                             include_sweeps=False,
                             include_pulse_trains=False)
        np.testing.assert_array_equal(a.currents_a, b.currents_a)


class TestSweeps:
    def test_hysteresis_loop_has_area(self, small_dataset):
        # Memristance signature: the I-V loop encloses area.
        assert small_dataset.sweeps
        for sweep in small_dataset.sweeps:
            assert sweep.loop_area > 0.0

    def test_larger_amplitude_larger_loop(self, small_dataset):
        areas = [sweep.loop_area for sweep in small_dataset.sweeps]
        assert areas[-1] > areas[0]

    def test_sweep_alignment_enforced(self):
        from repro.device.dataset import SweepRecord
        with pytest.raises(ValueError):
            SweepRecord(voltages=np.zeros(3), currents=np.zeros(4))


class TestPulseTrains:
    def test_set_train_decreases_resistance(self, small_dataset):
        train = small_dataset.pulse_trains[0]
        assert train.pulse_voltage_v > 0
        assert train.resistances_ohm[-1] < train.resistances_ohm[0]

    def test_reset_train_increases_resistance(self, small_dataset):
        train = small_dataset.pulse_trains[1]
        assert train.pulse_voltage_v < 0
        assert train.resistances_ohm[-1] > train.resistances_ohm[0]

    def test_train_length(self, small_dataset):
        assert small_dataset.pulse_trains[0].n_pulses == 40


class TestLookups:
    def test_current_at_interpolates(self, small_dataset):
        v = 2.0
        direct = small_dataset.current_at(1.0, v)
        # LRS at 2 V must exceed HRS at 2 V by orders of magnitude.
        assert direct > 1e3 * small_dataset.current_at(0.0, v)

    def test_energy_at_positive(self, small_dataset):
        assert small_dataset.energy_at(0.5, 2.0) > 0.0

    def test_voltage_clamping_at_grid_edges(self, small_dataset):
        low = small_dataset.current_at(0.5, -100.0)
        high = small_dataset.current_at(0.5, 100.0)
        assert low == small_dataset.current_at(
            0.5, float(small_dataset.read_voltages[0]))
        assert high == small_dataset.current_at(
            0.5, float(small_dataset.read_voltages[-1]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MemristorDataset(states=np.linspace(0, 1, 4),
                             read_voltages=np.linspace(0, 1, 5),
                             currents_a=np.zeros((4, 4)),
                             energies_j=np.zeros((4, 5)))


class TestPersistence:
    def test_save_load_round_trip(self, small_dataset, tmp_path):
        path = tmp_path / "campaign.npz"
        small_dataset.save(path)
        loaded = MemristorDataset.load(path)
        np.testing.assert_allclose(loaded.currents_a,
                                   small_dataset.currents_a)
        np.testing.assert_allclose(loaded.states, small_dataset.states)
