"""Property tests pinning the scenario engine's seed discipline.

The contract the whole harness rests on: a scenario stream is a pure
function of ``(seed, packet index)``.  Hypothesis hunts for chunk
sizes that shift the stream (they must not — byte-identical
concatenations regardless of chunking), seeds that collide (distinct
seeds must give distinct streams), and index ranges that break
resumability (any slice must be generatable without its prefix).
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.scenarios import iter_scenarios, scenario, scenario_names
from repro.simnet.workloads import (
    ChunkColumns,
    hash_u64,
    integers,
    pareto,
    uniforms,
)

SCENARIOS = scenario_names()
N = 3000  # stream length under test: small enough for ~ms generation


def digest(entry, seed: int, chunk_size: int, n: int = N) -> str:
    cols = ChunkColumns.concat(entry.stream(seed=seed, n_packets=n,
                                            chunk_size=chunk_size))
    return hashlib.sha256(cols.tobytes()).hexdigest()


@pytest.mark.parametrize("name", SCENARIOS)
class TestChunkSizeInvariance:
    @given(chunk_size=st.integers(min_value=1, max_value=N + 7),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_any_chunking_yields_identical_bytes(self, name,
                                                 chunk_size, seed):
        entry = scenario(name)
        assert digest(entry, seed, chunk_size) \
            == digest(entry, seed, N)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_any_slice_is_resumable(self, name, seed):
        entry = scenario(name)
        full = ChunkColumns.concat(entry.stream(seed=seed, n_packets=N,
                                                chunk_size=N))
        start, count = 1021, 511
        resumed = entry.columns(seed, start, count, N)
        expected = ChunkColumns(**{
            column: getattr(full, column)[start:start + count]
            for column in ("times_s", "sizes_bytes", "flow_ids",
                           "priorities", "src_ip", "dst_ip",
                           "src_port", "dst_port", "protocol",
                           "has_dst")})
        assert resumed.tobytes() == expected.tobytes()


@pytest.mark.parametrize("name", SCENARIOS)
class TestSeedDistinctness:
    @given(seeds=st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                          min_size=2, max_size=2, unique=True))
    @settings(max_examples=10, deadline=None)
    def test_distinct_seeds_give_distinct_streams(self, name, seeds):
        entry = scenario(name)
        assert digest(entry, seeds[0], N) != digest(entry, seeds[1], N)


class TestStreamStructure:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_times_non_decreasing_across_chunk_boundaries(self, name):
        entry = scenario(name)
        cols = ChunkColumns.concat(entry.stream(seed=11, n_packets=N,
                                                chunk_size=257))
        assert np.all(np.diff(cols.times_s) >= 0)

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_present_destinations_are_never_zero(self, name):
        # the parser treats dst_ip=0 as "no destination header": a
        # scenario that emits it silently turns routed packets into
        # parse drops.
        entry = scenario(name)
        cols = ChunkColumns.concat(entry.stream(seed=11, n_packets=N,
                                                chunk_size=N))
        present = np.asarray(cols.has_dst)
        assert np.all(np.asarray(cols.dst_ip)[present] != 0)


class TestPrimitives:
    @given(seed=st.integers(min_value=0, max_value=2**64 - 1),
           stream=st.integers(min_value=0, max_value=63),
           start=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_hash_is_a_pure_function_of_index(self, seed, stream, start):
        idx = np.arange(start, start + 64, dtype=np.uint64)
        first = hash_u64(seed, stream, idx)
        again = hash_u64(seed, stream, idx)
        np.testing.assert_array_equal(first, again)
        shifted = hash_u64(seed, stream, idx[32:])
        np.testing.assert_array_equal(first[32:], shifted)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_uniforms_in_unit_interval(self, seed):
        u = uniforms(seed, 1, np.arange(4096, dtype=np.uint64))
        assert u.min() >= 0.0 and u.max() < 1.0
        # crude uniformity: the mean of 4096 uniforms is near 1/2
        assert abs(u.mean() - 0.5) < 0.05

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           lo=st.integers(min_value=-100, max_value=100),
           span=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_integers_respect_bounds(self, seed, lo, span):
        values = integers(seed, 2, np.arange(512, dtype=np.uint64),
                          lo, lo + span)
        assert values.min() >= lo and values.max() < lo + span

    def test_integers_reject_empty_range(self):
        with pytest.raises(ValueError):
            integers(0, 1, np.arange(4, dtype=np.uint64), 5, 5)

    def test_pareto_is_heavy_tailed(self):
        u = uniforms(0, 12, np.arange(200_000, dtype=np.uint64))
        x = pareto(u, alpha=1.1)
        assert x.min() >= 1.0
        # the top 1% of an alpha=1.1 Pareto dwarfs the median mass
        top = np.sort(x)[-2000:]
        assert top.sum() > 0.5 * x.sum()

    def test_pareto_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            pareto(np.array([0.5]), alpha=0.0)


class TestChunkColumns:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ChunkColumns(times_s=np.zeros(3), sizes_bytes=np.zeros(2),
                         flow_ids=np.zeros(3), priorities=np.zeros(3),
                         src_ip=np.zeros(3), dst_ip=np.zeros(3),
                         src_port=np.zeros(3), dst_port=np.zeros(3),
                         protocol=np.zeros(3), has_dst=np.zeros(3))

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            ChunkColumns(times_s=np.array([1.0, 0.5]),
                         sizes_bytes=np.zeros(2), flow_ids=np.zeros(2),
                         priorities=np.zeros(2), src_ip=np.zeros(2),
                         dst_ip=np.zeros(2), src_port=np.zeros(2),
                         dst_port=np.zeros(2), protocol=np.zeros(2),
                         has_dst=np.zeros(2))

    def test_concat_of_nothing_is_empty(self):
        empty = ChunkColumns.concat([])
        assert len(empty) == 0
        assert empty.duration_s == 0.0

    def test_to_packets_round_trips_fields(self):
        cols = scenario("elephants_mice").columns(5, 0, 64, 64)
        packets = cols.to_packets()
        assert len(packets) == 64
        for i, packet in enumerate(packets):
            assert packet.size_bytes == int(cols.sizes_bytes[i])
            assert packet.flow_id == int(cols.flow_ids[i])
            assert packet.fields["src_ip"] == int(cols.src_ip[i])
            assert ("dst_ip" in packet.fields) == bool(cols.has_dst[i])
