"""Synchronous packet buffers."""

import pytest

from repro.dataplane.queues import PacketQueue
from repro.packet import Packet


def test_fifo_order():
    queue = PacketQueue("q")
    first, second = Packet(), Packet()
    queue.push(first)
    queue.push(second)
    assert queue.pop() is first
    assert queue.pop() is second


def test_byte_accounting():
    queue = PacketQueue("q")
    queue.push(Packet(size_bytes=100))
    queue.push(Packet(size_bytes=250))
    assert queue.backlog_bytes == 350
    queue.pop()
    assert queue.backlog_bytes == 250


def test_packet_capacity_overflow():
    queue = PacketQueue("q", capacity_packets=2)
    assert queue.push(Packet())
    assert queue.push(Packet())
    overflow = Packet()
    assert not queue.push(overflow)
    assert overflow.dropped
    assert queue.dropped == 1


def test_byte_capacity_overflow():
    queue = PacketQueue("q", capacity_packets=100, capacity_bytes=1000)
    assert queue.push(Packet(size_bytes=900))
    assert queue.push(Packet(size_bytes=200))  # crosses after admit
    assert queue.is_full
    assert not queue.push(Packet(size_bytes=10))


def test_timestamps_set_on_push_pop():
    queue = PacketQueue("q")
    packet = Packet()
    queue.push(packet, now=1.0)
    queue.pop(now=2.5)
    assert packet.sojourn_time == pytest.approx(1.5)


def test_pop_empty_returns_none():
    assert PacketQueue("q").pop() is None


def test_peek_does_not_remove():
    queue = PacketQueue("q")
    packet = Packet()
    queue.push(packet)
    assert queue.peek() is packet
    assert len(queue) == 1
    assert PacketQueue("empty").peek() is None


def test_counters():
    queue = PacketQueue("q", capacity_packets=1)
    queue.push(Packet())
    queue.push(Packet())
    assert queue.enqueued == 1
    assert queue.dropped == 1


def test_validation():
    with pytest.raises(ValueError):
        PacketQueue("q", capacity_packets=0)
    with pytest.raises(ValueError):
        PacketQueue("q", capacity_bytes=0)


def test_repr():
    assert "q" in repr(PacketQueue("q"))
