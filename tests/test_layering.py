"""The architectural layering contract, enforced in CI.

``tools/check_layering.py`` walks ``src/repro`` with ``ast`` and
rejects imports that would invert the layering the staged-runtime
refactor established: runtime must stay generic (no dataplane or
netfunc imports), netfunc must not reach up into the dataplane,
``repro.packet`` stays a leaf, and ``repro.control`` sits above
dataplane/fabric/robustness/observability — nothing imports it from
below except the sanctioned deprecation shims and the dataplane
facade's re-export.
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_layering", REPO / "tools" / "check_layering.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repository_is_clean():
    checker = load_checker()
    assert checker.violations() == []


def test_checker_catches_a_planted_violation(tmp_path, monkeypatch):
    # The test must fail when the contract is broken, not only pass
    # when it holds — plant each forbidden import in a fake tree.
    checker = load_checker()
    src = tmp_path / "src"
    cases = {
        "repro/runtime/bad_a.py":
            "from repro.dataplane.pipeline import AnalogPacketProcessor\n",
        "repro/runtime/bad_b.py": "import repro.netfunc.firewall\n",
        "repro/netfunc/bad_c.py": "from repro.dataplane import Packet\n",
        "repro/packet.py": "from repro.observability import Observability\n",
        # Rule 7: nothing below the control plane may import it back.
        "repro/fabric/bad_d.py": "import repro.control\n",
        "repro/robustness/bad_e.py":
            "from repro.control.learning import SPSAPolicy\n",
        "repro/observability/bad_f.py":
            "from repro.control import ControlLoop\n",
        "repro/dataplane/bad_g.py": "import repro.control.loop\n",
        # Legal imports planted alongside must NOT be flagged.
        "repro/runtime/good.py": "from repro.observability.tracing "
                                 "import maybe_span\n",
        "repro/dataplane/good.py": "import repro.netfunc.firewall\n",
        # The control plane itself may import everything below it...
        "repro/control/good.py": "import repro.fabric\n"
                                 "from repro.dataplane import switch\n",
        # ...and the sanctioned shim back-edges stay waived.
        "repro/dataplane/control_loop.py":
            "from repro.control.intent import Intent\n",
        "repro/dataplane/controller.py":
            "from repro.control.cognitive import "
            "CognitiveNetworkController\n",
        "repro/dataplane/pipeline.py":
            "from repro.control.cognitive import "
            "CognitiveNetworkController\n",
    }
    for relative, body in cases.items():
        path = src / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
    monkeypatch.setattr(checker, "SRC", src)
    problems = checker.violations()
    flagged = {p.split(":")[0] for p in problems}
    assert flagged == {"src/repro/runtime/bad_a.py",
                       "src/repro/runtime/bad_b.py",
                       "src/repro/netfunc/bad_c.py",
                       "src/repro/packet.py",
                       "src/repro/fabric/bad_d.py",
                       "src/repro/robustness/bad_e.py",
                       "src/repro/observability/bad_f.py",
                       "src/repro/dataplane/bad_g.py"}


def test_relative_imports_resolved(tmp_path, monkeypatch):
    checker = load_checker()
    src = tmp_path / "src"
    bad = src / "repro" / "netfunc" / "sub" / "bad.py"
    bad.parent.mkdir(parents=True)
    # "from ...dataplane import x" inside repro.netfunc.sub resolves
    # to repro.dataplane — the checker must see through the dots.
    bad.write_text("from ...dataplane import pipeline\n")
    monkeypatch.setattr(checker, "SRC", src)
    assert len(checker.violations()) == 1


def test_runtime_package_imports_no_dataplane_at_runtime():
    # Belt and braces: actually import the runtime package in a fresh
    # interpreter and confirm it loads no dataplane/netfunc module
    # beyond what the top-level ``repro`` facade already pulled in.
    # (A subprocess, not sys.modules surgery — evicting repro modules
    # mid-suite would hand later tests duplicate enum classes.)
    code = ("import sys; import repro; before = set(sys.modules); "
            "import repro.runtime; "
            "bad = [m for m in set(sys.modules) - before "
            "if m.startswith(('repro.dataplane', 'repro.netfunc'))]; "
            "sys.exit(f'loaded: {bad}' if bad else 0)")
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    result = subprocess.run([sys.executable, "-c", code], env=env,
                            capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
