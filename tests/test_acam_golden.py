"""Golden pins for the aCAM energy comparison and fault oracle.

Two committed behaviours:

* the Table-1-style energy table for the seeded reference classifier
  is pinned **byte-for-byte** against ``tests/golden/acam_energy.json``
  — any change to the energy anchors, the compiler's row emission, or
  the TCAM expansion shows up as a diff against a reviewed artifact;
* the differential fault oracle is pinned behaviourally — a seeded
  targeted fault plan flags exactly the rows it hit and nothing else,
  while a healthy bank stays entirely inside the envelope.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.acam import (
    ACAMDecisionTree,
    ACAMFaultPlan,
    build_energy_table,
    energy_table_json,
    format_energy_table,
    reference_classifier,
)
from repro.robustness.models import StuckAtFault

GOLDEN = Path(__file__).parent / "golden" / "acam_energy.json"


@pytest.fixture(scope="module")
def table():
    tree, _, ranges = reference_classifier()
    return build_energy_table(tree, ranges)


class TestEnergyTableGolden:
    def test_table_matches_committed_artifact_byte_for_byte(
            self, table):
        rendered = json.dumps(energy_table_json(table), indent=2,
                              sort_keys=True) + "\n"
        assert rendered == GOLDEN.read_text(), (
            "energy table drifted from tests/golden/acam_energy.json; "
            "if the change is intended, regenerate the artifact and "
            "review the diff")

    def test_acam_is_the_cheapest_design_point(self, table):
        doc = energy_table_json(table)
        assert doc["cheapest"] == "aCAM one-shot"
        acam, = [r for r in table if r.name == "aCAM one-shot"]
        for other in table:
            if other.name == acam.name:
                continue
            assert acam.energy_fj_per_classification \
                < other.energy_fj_per_classification

    def test_rendered_table_names_the_cheapest(self, table):
        lines = format_energy_table(table)
        assert lines[-1] == \
            "(cheapest per classification: aCAM one-shot)"


class TestFaultOracleGolden:
    @pytest.fixture()
    def bank(self):
        tree, names, _ = reference_classifier()
        return ACAMDecisionTree(tree, names).array

    @pytest.fixture()
    def probes(self, bank):
        return bank.probe_grid(256, np.random.default_rng(42))

    def test_healthy_bank_stays_inside_the_envelope(
            self, bank, probes):
        assert bank.out_of_envelope(probes) == ()

    def test_targeted_fault_plan_flags_exactly_the_hit_rows(
            self, bank, probes):
        plan = ACAMFaultPlan(StuckAtFault(state="lrs"),
                             rows=(1, 3), seed=11)
        report = bank.apply_fault_plan(plan)
        assert report.n_injected > 0
        assert bank.out_of_envelope(probes) == (1, 3)

    def test_clearing_faults_restores_the_envelope(self, bank, probes):
        bank.apply_fault_plan(ACAMFaultPlan(StuckAtFault(state="hrs"),
                                            rows=(0,), seed=3))
        assert bank.out_of_envelope(probes) != ()
        bank.clear_faults()
        assert bank.out_of_envelope(probes) == ()
