"""Flow-cache and crossbar-cache invalidation regressions.

A cache that can serve one stale verdict after a table update (or one
stale attenuation matrix after a reprogram / fault injection) is a
correctness bug dressed as a speedup; these tests mutate state
mid-stream and pin that the very next evaluation sees the new world.
"""

import numpy as np
import pytest

from repro.crossbar.array import Crossbar
from repro.crossbar.losses import LineLossModel
from repro.dataplane.fastpath import FlowCache
from repro.dataplane.pipeline import AnalogPacketProcessor, Verdict
from repro.device.faults import inject_crossbar_faults
from repro.device.variability import VariabilityModel
from repro.netfunc.firewall import Action, FirewallRule
from repro.packet import Packet


def make_packet(dst="10.1.2.3"):
    return Packet(fields={"src_ip": "1.2.3.4", "dst_ip": dst,
                          "src_port": 1000, "dst_port": 80,
                          "protocol": 17})


def build_processor():
    processor = AnalogPacketProcessor(n_ports=2)
    processor.add_route("10.0.0.0/8", 0)
    return processor


class TestFlowCacheUnit:
    def test_lru_eviction(self):
        cache = FlowCache(capacity=2)
        generation = (0, 0)
        cache.put("a", generation, 1)
        cache.put("b", generation, 2)
        assert cache.get("a", generation) == 1   # refresh "a"
        cache.put("c", generation, 3)            # evicts "b"
        assert cache.get("b", generation) is None
        assert cache.get("a", generation) == 1
        assert cache.get("c", generation) == 3

    def test_generation_mismatch_flushes(self):
        cache = FlowCache()
        cache.put("a", (0, 0), 1)
        assert cache.get("a", (0, 0)) == 1
        assert cache.get("a", (1, 0)) is None    # firewall moved
        assert len(cache) == 0
        assert cache.invalidations == 1

    def test_hit_miss_counters(self):
        cache = FlowCache()
        cache.put("a", (0, 0), 1)
        cache.get("a", (0, 0))
        cache.get("zzz", (0, 0))
        assert (cache.hits, cache.misses) == (1, 1)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlowCache(capacity=0)

    def test_put_counts_generation_invalidation(self):
        # Regression: a generation mismatch on ``put`` used to clear
        # the cache without counting the invalidation (``get``
        # counted it), so write-first workloads under-reported.
        cache = FlowCache()
        cache.put("a", (0, 0), 1)
        cache.put("b", (1, 0), 2)               # firewall moved
        assert cache.invalidations == 1
        assert cache.get("a", (1, 0)) is None   # flushed, not stale
        assert cache.get("b", (1, 0)) == 2
        assert cache.invalidations == 1         # counted once per flush

    def test_first_generation_put_is_not_an_invalidation(self):
        # Filling a fresh cache establishes the generation; there is
        # nothing to invalidate (mirrors ``get`` on a fresh cache).
        cache = FlowCache()
        cache.put("a", (3, 7), 1)
        cache.get("zzz", (3, 7))
        assert cache.invalidations == 0

    def test_eviction_order_under_interleaved_get_put(self):
        # Recency is shared between probes and installs: a ``get``
        # refresh must save an entry from eviction exactly like a
        # re-``put`` does, and eviction always takes the stalest.
        cache = FlowCache(capacity=3)
        generation = (0, 0)
        cache.put("a", generation, 1)
        cache.put("b", generation, 2)
        cache.put("c", generation, 3)
        assert cache.get("a", generation) == 1  # order now b, c, a
        cache.put("b", generation, 22)          # order now c, a, b
        cache.put("d", generation, 4)           # evicts "c"
        assert cache.get("c", generation) is None
        assert cache.get("a", generation) == 1
        assert cache.get("b", generation) == 22
        assert cache.get("d", generation) == 4
        cache.put("e", generation, 5)           # evicts stalest: "a"
        assert cache.get("a", generation) is None
        assert len(cache) == 3


class TestMidStreamTableMutation:
    def test_new_firewall_rule_applies_to_next_chunk(self):
        processor = build_processor()
        packets = [make_packet() for _ in range(8)]
        first = processor.process_batch(packets, now=0.0,
                                        chunk_size=4)
        assert all(r.verdict is Verdict.QUEUED for r in first)
        assert processor.flow_cache.hits > 0   # cache is live
        processor.add_firewall_rule(FirewallRule(
            action=Action.DENY, dst_prefix="10.0.0.0/8"))
        second = processor.process_batch(packets, now=1e-3)
        assert all(r.verdict is Verdict.DROPPED_ACL for r in second)

    def test_new_route_applies_to_next_chunk(self):
        processor = build_processor()
        packets = [make_packet(dst="192.168.1.1") for _ in range(8)]
        first = processor.process_batch(packets, now=0.0)
        assert all(r.verdict is Verdict.DROPPED_NO_ROUTE
                   for r in first)
        processor.add_route("192.168.0.0/16", 1)
        second = processor.process_batch(packets, now=1e-3)
        assert all(r.verdict is Verdict.QUEUED and r.port == 1
                   for r in second)

    def test_direct_tcam_mutation_caught_by_generation(self):
        # Bypass the pipeline helpers: a table mutated behind the
        # processor's back still invalidates via the generation pair.
        processor = build_processor()
        packets = [make_packet() for _ in range(4)]
        processor.process_batch(packets, now=0.0)
        processor.firewall.add_rule(FirewallRule(
            action=Action.DENY, dst_prefix="10.0.0.0/8"))
        second = processor.process_batch(packets, now=1e-3)
        assert all(r.verdict is Verdict.DROPPED_ACL for r in second)

    def test_scalar_path_shares_the_invalidation(self):
        processor = build_processor()
        assert processor.process(make_packet(),
                                 now=0.0).verdict is Verdict.QUEUED
        processor.add_firewall_rule(FirewallRule(
            action=Action.DENY, dst_prefix="10.0.0.0/8"))
        assert processor.process(
            make_packet(), now=1e-3).verdict is Verdict.DROPPED_ACL

    def test_explicit_invalidation_hook(self):
        processor = build_processor()
        processor.process_batch([make_packet() for _ in range(4)],
                                now=0.0)
        assert len(processor.flow_cache) > 0
        processor.invalidate_flow_cache()
        assert len(processor.flow_cache) == 0


def make_crossbar(seed=0):
    bar = Crossbar(8, 6,
                   losses=LineLossModel(wire_resistance_per_cell_ohm=2.0,
                                        sneak_conductance_s=1e-9,
                                        crosstalk_fraction=0.01),
                   variability=VariabilityModel.ideal(),
                   rng=np.random.default_rng(seed))
    bar.program_normalised(np.random.default_rng(42).random((8, 6)))
    return bar


class TestCrossbarConductanceCache:
    def test_version_bumps_on_program_and_fault_install(self):
        bar = make_crossbar()
        version = bar.version
        bar.program_normalised(np.full((8, 6), 0.25))
        assert bar.version > version
        version = bar.version
        inject_crossbar_faults(bar, fault_rate=0.3,
                               rng=np.random.default_rng(1))
        assert bar.version > version

    def test_cached_reads_not_stale_after_reprogram(self):
        cached = make_crossbar()
        voltages = np.random.default_rng(3).random((4, 8))
        cached.matvec_batch(voltages, noisy=False)   # warm the cache
        weights = np.random.default_rng(5).random((8, 6))
        cached.program_normalised(weights)
        fresh = make_crossbar()
        fresh.program_normalised(weights)
        np.testing.assert_allclose(
            cached.matvec_batch(voltages, noisy=False).currents_a,
            fresh.matvec_batch(voltages, noisy=False).currents_a,
            rtol=1e-12)

    def test_cached_reads_not_stale_after_fault_injection(self):
        cached = make_crossbar()
        voltages = np.random.default_rng(3).random((4, 8))
        before = cached.matvec_batch(voltages, noisy=False).currents_a
        mask = inject_crossbar_faults(cached, fault_rate=0.4,
                                      rng=np.random.default_rng(7))
        assert mask.any()
        after = cached.matvec_batch(voltages, noisy=False).currents_a
        assert not np.allclose(before, after)
        # ... and the faulted reads equal an uncached reference built
        # directly in the faulted state.
        fresh = make_crossbar()
        fresh.program(cached.conductances)
        np.testing.assert_allclose(
            after,
            fresh.matvec_batch(voltages, noisy=False).currents_a,
            rtol=1e-12)

    def test_repeated_reads_reuse_one_attenuation_matrix(self):
        import unittest.mock as mock

        bar = make_crossbar()
        original = type(bar.losses).attenuation_matrix
        with mock.patch.object(type(bar.losses), "attenuation_matrix",
                               autospec=True,
                               side_effect=original) as spy:
            voltages = np.ones((2, 8))
            bar.matvec_batch(voltages, noisy=False)
            bar.matvec_batch(voltages, noisy=False)
            bar.matvec(np.ones(8), noisy=False)
            assert spy.call_count == 1
            bar.program_normalised(np.full((8, 6), 0.5))
            bar.matvec_batch(voltages, noisy=False)
            assert spy.call_count == 2


class TestReadOnlyConductances:
    def test_view_rejects_mutation(self):
        bar = make_crossbar()
        with pytest.raises(ValueError):
            bar.conductances[0, 0] = 1.0

    def test_copy_is_writable_and_detached(self):
        bar = make_crossbar()
        scratch = bar.conductances_copy()
        scratch[0, 0] = scratch[0, 0] * 0.5
        assert bar.conductances[0, 0] != scratch[0, 0]

    def test_snapshot_semantics_survive_reprogram(self):
        bar = make_crossbar()
        snapshot = bar.conductances
        bar.program_normalised(np.full((8, 6), 0.9))
        # The old view still holds the old values: program() replaces
        # the matrix, it never mutates in place.
        assert not np.shares_memory(snapshot, bar.conductances)
        assert not np.allclose(snapshot, bar.conductances)
