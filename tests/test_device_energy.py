"""Energy statistics over the chip dataset (paper Sec. 6)."""

import numpy as np
import pytest

from repro.device.energy import (
    BEST_DIGITAL_ENERGY_J_PER_BIT,
    energy_histogram,
    energy_statistics,
    energy_statistics_all_reads,
)


class TestHeadlineNumbers:
    def test_minimum_state_energy_near_001_fj(self, small_dataset):
        stats = energy_statistics(small_dataset)
        assert stats.min_fj == pytest.approx(0.01, rel=0.15)

    def test_maximum_state_energy_near_016_nj(self, small_dataset):
        stats = energy_statistics(small_dataset)
        assert stats.max_nj == pytest.approx(0.16, rel=0.15)

    def test_at_least_50x_better_than_best_digital(self, small_dataset):
        stats = energy_statistics(small_dataset)
        assert stats.improvement_over_digital() >= 50.0

    def test_best_digital_reference_is_058_fj(self):
        assert BEST_DIGITAL_ENERGY_J_PER_BIT == pytest.approx(0.58e-15)


class TestStatisticsShape:
    def test_ordering_of_stats(self, small_dataset):
        stats = energy_statistics(small_dataset)
        assert stats.min_j < stats.median_j < stats.max_j
        assert stats.min_j < stats.mean_j <= stats.max_j

    def test_state_space_spans_many_decades(self, small_dataset):
        stats = energy_statistics(small_dataset)
        assert stats.decades > 6.0

    def test_custom_search_voltage(self, small_dataset):
        low_v = energy_statistics(small_dataset, search_voltage_v=1.0)
        high_v = energy_statistics(small_dataset, search_voltage_v=4.0)
        assert low_v.max_j < high_v.max_j

    def test_zero_search_voltage_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            energy_statistics(small_dataset, search_voltage_v=0.0)


class TestAllReads:
    def test_all_reads_span_wider_than_per_state(self, small_dataset):
        per_state = energy_statistics(small_dataset)
        all_reads = energy_statistics_all_reads(small_dataset)
        assert all_reads.min_j <= per_state.min_j
        assert all_reads.max_j >= per_state.max_j

    def test_positive_only_excludes_reverse(self, small_dataset):
        both = energy_statistics_all_reads(small_dataset)
        positive = energy_statistics_all_reads(small_dataset,
                                               positive_reads_only=True)
        assert positive.min_j >= both.min_j


class TestHistogram:
    def test_histogram_counts_everything(self, small_dataset):
        counts, edges = energy_histogram(small_dataset)
        positive = small_dataset.energies_j[small_dataset.energies_j > 0]
        assert counts.sum() == positive.size
        assert len(edges) == len(counts) + 1

    def test_histogram_edges_log_spaced(self, small_dataset):
        _, edges = energy_histogram(small_dataset, bins_per_decade=1)
        ratios = edges[1:] / edges[:-1]
        np.testing.assert_allclose(ratios, ratios[0], rtol=1e-6)

    def test_bins_per_decade_validated(self, small_dataset):
        with pytest.raises(ValueError):
            energy_histogram(small_dataset, bins_per_decade=0)
