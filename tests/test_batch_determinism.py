"""Seeded-RNG reproducibility of the batched stochastic paths.

Every stochastic batch kernel draws its variates from the same stream,
in the same order, as the scalar loop it replaces — so two components
built from the same seed make identical decisions whether the work
arrives one packet at a time or as one vectorised chunk.
"""

import numpy as np
import pytest

from repro.crossbar.array import Crossbar
from repro.crossbar.losses import LineLossModel
from repro.dataplane.pipeline import AnalogPacketProcessor
from repro.device.variability import VariabilityModel
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.packet import Packet
from repro.simnet.engine import Simulator
from repro.simnet.queue_sim import BottleneckQueue


class StaticView:
    """A frozen QueueView so batch and scalar see identical state."""

    def __init__(self, backlog_packets=900, packet_bytes=1500,
                 capacity_packets=1000, service_rate_bps=1e6,
                 last_sojourn_s=0.5):
        self.backlog_packets = backlog_packets
        self.backlog_bytes = backlog_packets * packet_bytes
        self.capacity_packets = capacity_packets
        self.service_rate_bps = service_rate_bps
        self.last_sojourn_s = last_sojourn_s


def make_packets(n, priority=None):
    return [Packet(size_bytes=1500,
                   priority=(i % 2 if priority is None else priority),
                   fields={"id": i})
            for i in range(n)]


class TestAQMDeterminism:
    def test_batch_reproduces_scalar_loop_from_same_seed(self):
        view = StaticView()
        batch_aqm = PCAMAQM(rng=np.random.default_rng(42))
        scalar_aqm = PCAMAQM(rng=np.random.default_rng(42))
        batch = batch_aqm.on_enqueue_batch(make_packets(64), view, 2.0)
        scalar = [scalar_aqm.on_enqueue(packet, view, 2.0)
                  for packet in make_packets(64)]
        assert list(batch) == scalar
        assert batch_aqm.evaluations == scalar_aqm.evaluations
        assert batch_aqm.last_pdp == pytest.approx(scalar_aqm.last_pdp)

    def test_same_seed_same_batch_decisions(self):
        view = StaticView()
        first = PCAMAQM(rng=np.random.default_rng(7)) \
            .on_enqueue_batch(make_packets(50), view, 1.0)
        second = PCAMAQM(rng=np.random.default_rng(7)) \
            .on_enqueue_batch(make_packets(50), view, 1.0)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_diverge(self):
        view = StaticView(backlog_packets=600, last_sojourn_s=0.025)
        draws = [PCAMAQM(rng=np.random.default_rng(seed))
                 .on_enqueue_batch(make_packets(200), view, 1.0)
                 for seed in (1, 2)]
        assert not np.array_equal(draws[0], draws[1])

    def test_drop_decisions_consume_one_variate_per_packet(self):
        aqm = PCAMAQM()
        p = np.array([0.3, 0.7, 0.0, 1.0, 0.5])
        decisions = aqm.drop_decisions(p, rng=np.random.default_rng(9))
        expected = np.random.default_rng(9).random(5) < p
        np.testing.assert_array_equal(decisions, expected)

    def test_drop_decisions_batch_equals_scalar_stream(self):
        p = np.linspace(0.0, 1.0, 17)
        aqm = PCAMAQM()
        batch = aqm.drop_decisions(p, rng=np.random.default_rng(3))
        scalar_rng = np.random.default_rng(3)
        scalar = [bool(aqm.drop_decisions(np.array([x]),
                                          rng=scalar_rng)[0])
                  for x in p]
        assert list(batch) == scalar

    def test_empty_chunk_draws_nothing(self):
        aqm = PCAMAQM(rng=np.random.default_rng(5))
        result = aqm.on_enqueue_batch([], StaticView(), 1.0)
        assert result.shape == (0,)
        # The stream is untouched: the next draw equals a fresh seed's.
        assert aqm.drop_decisions(np.array([0.5])) == \
            (np.random.default_rng(5).random(1) < 0.5)


class TestCrossbarDeterminism:
    def make(self, seed):
        crossbar = Crossbar(
            8, 6,
            losses=LineLossModel(wire_resistance_per_cell_ohm=1.0,
                                 sneak_conductance_s=1e-9,
                                 crosstalk_fraction=0.02),
            variability=VariabilityModel(read_sigma=0.05),
            rng=np.random.default_rng(seed))
        crossbar.program_normalised(
            np.random.default_rng(77).random((8, 6)))
        return crossbar

    def test_batch_matches_scalar_loop_same_stream(self):
        voltages = np.random.default_rng(3).random((16, 8))
        batched, scalar = self.make(11), self.make(11)
        batch = batched.matvec_batch(voltages)
        results = [scalar.matvec(voltages[i]) for i in range(16)]
        np.testing.assert_allclose(
            batch.currents_a,
            np.stack([r.currents_a for r in results]), rtol=1e-9)
        assert batch.energy_j == pytest.approx(
            sum(r.energy_j for r in results), rel=1e-9)
        assert batched.operations == scalar.operations == 16

    def test_noiseless_batch_bitwise_reproducible(self):
        voltages = np.random.default_rng(4).random((8, 8))
        a = self.make(1).matvec_batch(voltages, noisy=False)
        b = self.make(2).matvec_batch(voltages, noisy=False)
        np.testing.assert_array_equal(a.currents_a, b.currents_a)


class TestChunkedAdmission:
    def build(self, seed):
        processor = AnalogPacketProcessor(
            n_ports=2,
            aqm_factory=lambda: PCAMAQM(rng=np.random.default_rng(seed)))
        processor.add_route("10.0.0.0/8", 0)
        processor.add_route("192.168.0.0/16", 1)
        return processor

    def traffic(self, n=80):
        rng = np.random.default_rng(21)
        packets = []
        for i in range(n):
            dst = "10.1.2.3" if rng.random() < 0.7 else "192.168.1.9"
            packets.append(Packet(
                size_bytes=1000, priority=int(rng.random() < 0.3),
                fields={"dst_ip": dst, "src_ip": "1.2.3.4"}))
        return packets

    def test_chunk_of_one_reproduces_scalar_process(self):
        batched, scalar = self.build(9), self.build(9)
        batch = batched.process_batch(self.traffic(), now=0.5,
                                      chunk_size=1)
        reference = [scalar.process(packet, now=0.5)
                     for packet in self.traffic()]
        assert [r.verdict for r in batch] == \
            [r.verdict for r in reference]
        assert [r.port for r in batch] == [r.port for r in reference]
        assert batched.verdict_counts == scalar.verdict_counts

    def test_chunked_run_is_seed_reproducible(self):
        first = self.build(13).process_batch(self.traffic(), now=0.5,
                                             chunk_size=16)
        second = self.build(13).process_batch(self.traffic(), now=0.5,
                                              chunk_size=16)
        assert [r.verdict for r in first] == [r.verdict for r in second]

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            self.build(1).process_batch(self.traffic(4), chunk_size=0)


class TestSimnetBatch:
    def run_queue(self, batched: bool):
        sim = Simulator()
        queue = BottleneckQueue(
            sim, service_rate_bps=1e6, capacity_packets=50,
            aqm=PCAMAQM(rng=np.random.default_rng(3)))
        packets = make_packets(120, priority=0)
        if batched:
            sim.schedule_batch(
                0.001,
                [(lambda chunk=packets[i:i + 30]:
                  queue.enqueue_batch(chunk))
                 for i in range(0, 120, 30)])
        else:
            for packet in packets:
                sim.schedule(0.001, lambda p=packet: queue.enqueue(p))
        sim.run_until(2.0)
        return queue

    def test_batched_arrivals_conserve_packets(self):
        queue = self.run_queue(batched=True)
        assert (queue.admitted + queue.aqm_drops
                + queue.overflow_drops) == 120
        assert queue.overflow_drops > 0  # capacity still enforced

    def test_batched_run_reproducible(self):
        a, b = self.run_queue(True), self.run_queue(True)
        assert (a.admitted, a.aqm_drops, a.overflow_drops) == \
            (b.admitted, b.aqm_drops, b.overflow_drops)

    def test_schedule_batch_counts_each_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule_batch(0.5, [lambda i=i: fired.append(i)
                                 for i in range(4)])
        assert sim.pending == 1  # one heap entry for the whole chunk
        sim.run_until(1.0)
        assert fired == [0, 1, 2, 3]
        assert sim.processed == 4

    def test_schedule_batch_empty_is_noop(self):
        sim = Simulator()
        sim.schedule_batch(0.5, [])
        assert sim.pending == 0
