"""Property-based round-trip test for the DSL: render -> parse."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.dsl import parse_table
from repro.core.pcam_cell import PCAMParams


@st.composite
def stage_params(draw):
    m1 = draw(st.floats(-5.0, 5.0, allow_nan=False))
    gaps = [draw(st.floats(0.05, 3.0)) for _ in range(3)]
    pmin = draw(st.floats(0.0, 0.4))
    pmax = draw(st.floats(0.6, 1.0))
    return PCAMParams.canonical(
        m1=m1, m2=m1 + gaps[0], m3=m1 + gaps[0] + gaps[1],
        m4=m1 + sum(gaps), pmax=pmax, pmin=pmin)


def render_table(name: str, stages: dict[str, PCAMParams]) -> str:
    """Emit a table definition in the DSL surface syntax."""
    stage_lines = []
    for stage_name, params in stages.items():
        numbers = (f"{params.m1!r}, {params.m2!r}, {params.m3!r}, "
                   f"{params.m4!r}, {params.sa!r}, {params.sb!r}, "
                   f"{params.pmax!r}, {params.pmin!r}")
        stage_lines.append(f"pCAM({stage_name}: {numbers})")
    body = ",\n            ".join(stage_lines)
    return (f"table {name} {{\n"
            f"    output {{ pipeline {{\n            {body}\n"
            f"    }} }}\n"
            f"}}")


@given(params_list=st.lists(stage_params(), min_size=1, max_size=4))
@settings(max_examples=40)
def test_render_parse_round_trip(params_list):
    stages = {f"f{i}": params for i, params in enumerate(params_list)}
    text = render_table("roundtrip", stages)
    table = parse_table(text)
    assert table.name == "roundtrip"
    assert table.reads == tuple(stages)
    for name, params in stages.items():
        parsed = table.pipeline.stage(name).params
        assert np.isclose(parsed.m1, params.m1)
        assert np.isclose(parsed.m4, params.m4)
        assert np.isclose(parsed.sa, params.sa)
        assert np.isclose(parsed.pmin, params.pmin)


@given(params_list=st.lists(stage_params(), min_size=1, max_size=3),
       x=st.floats(-10.0, 10.0, allow_nan=False))
@settings(max_examples=40)
def test_parsed_pipeline_behaves_like_original(params_list, x):
    from repro.core.pcam_pipeline import PCAMPipeline

    stages = {f"f{i}": params for i, params in enumerate(params_list)}
    reference = PCAMPipeline.from_params(stages)
    parsed = parse_table(render_table("t", stages)).pipeline
    features = {name: x for name in stages}
    assert np.isclose(parsed.evaluate(features),
                      reference.evaluate(features), atol=1e-9)
