"""The control-plane deprecation shims, pinned precisely.

``IntentController`` and ``CognitiveNetworkController`` moved up into
the unified :mod:`repro.control` package; the old dataplane paths
(``repro.dataplane.control_loop``, ``repro.dataplane.controller``)
are warn-on-import re-exports kept for external callers, mirroring
the ``repro.dataplane.packet`` shim.  These tests pin the full shim
contract: the warning fires at import time (once per interpreter —
repeat imports are served from ``sys.modules`` silently), every
re-exported name stays the canonical object, and the silent facade
re-export on ``repro.dataplane`` itself keeps resolving.
"""

import importlib
import sys
import warnings

import pytest

import repro.control as canonical

SHIMS = {
    "repro.dataplane.control_loop": {
        "names": ("Intent", "IntentController"),
        "redirect": "import Intent and IntentController from "
                    "repro.control instead",
    },
    "repro.dataplane.controller": {
        "names": ("CognitiveNetworkController", "RegisteredFunction"),
        "redirect": "import CognitiveNetworkController and "
                    "RegisteredFunction from repro.control instead",
    },
}


def fresh_import(shim: str):
    """Force the shim's module body to re-execute."""
    sys.modules.pop(shim, None)
    return importlib.import_module(shim)


@pytest.mark.parametrize("shim", sorted(SHIMS))
def test_import_warns_deprecation_with_redirect(shim):
    with pytest.warns(DeprecationWarning,
                      match=SHIMS[shim]["redirect"]):
        fresh_import(shim)


@pytest.mark.parametrize("shim", sorted(SHIMS))
def test_warning_fires_once_per_interpreter(shim):
    # First import executes the module body (and warns); any further
    # import is a sys.modules hit and must stay silent.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        module = fresh_import(shim)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = importlib.import_module(shim)
    assert again is module


@pytest.mark.parametrize("shim", sorted(SHIMS))
def test_reexports_are_the_canonical_objects(shim):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        module = fresh_import(shim)
    for name in SHIMS[shim]["names"]:
        assert getattr(module, name) is getattr(canonical, name), name
    assert set(module.__all__) == set(SHIMS[shim]["names"])


def test_dataplane_facade_reexports_silently():
    # The package facade (like Packet's) must not warn: deprecation
    # is scoped to the old *module* paths only.
    import repro.dataplane as dataplane
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        importlib.reload(dataplane)
    assert dataplane.IntentController is canonical.IntentController
    assert dataplane.CognitiveNetworkController \
        is canonical.CognitiveNetworkController


def test_shimmed_controller_still_constructs():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        module = fresh_import("repro.dataplane.controller")
    controller = module.CognitiveNetworkController()
    assert isinstance(controller, canonical.CognitiveNetworkController)
    assert controller.reprogram_events == 0
