"""Device noise models."""

import numpy as np
import pytest

from repro.device.variability import VariabilityModel


def test_ideal_model_is_deterministic(rng):
    model = VariabilityModel.ideal()
    assert model.sample_read_factor(rng) == 1.0
    assert model.sample_device_factor(rng) == 1.0
    assert model.drift_state(0.7, 1e6) == 0.7


def test_read_factor_lognormal_statistics(rng):
    model = VariabilityModel(read_sigma=0.1, device_sigma=0.0)
    samples = np.array([model.sample_read_factor(rng)
                        for _ in range(4000)])
    assert samples.min() > 0.0
    assert np.log(samples).mean() == pytest.approx(0.0, abs=0.02)
    assert np.log(samples).std() == pytest.approx(0.1, abs=0.02)


def test_device_factor_varies(rng):
    model = VariabilityModel(read_sigma=0.0, device_sigma=0.2)
    factors = {model.sample_device_factor(rng) for _ in range(5)}
    assert len(factors) == 5


def test_drift_exponential_decay():
    model = VariabilityModel(drift_rate_per_s=1.0, drift_target=0.0)
    assert model.drift_state(1.0, 1.0) == pytest.approx(np.exp(-1.0))


def test_drift_toward_nonzero_target():
    model = VariabilityModel(drift_rate_per_s=10.0, drift_target=0.5)
    drifted = model.drift_state(1.0, 100.0)
    assert drifted == pytest.approx(0.5, abs=1e-6)


def test_drift_zero_elapsed_identity():
    model = VariabilityModel(drift_rate_per_s=1.0)
    assert model.drift_state(0.42, 0.0) == 0.42


def test_drift_rejects_negative_elapsed():
    with pytest.raises(ValueError):
        VariabilityModel().drift_state(0.5, -1.0)


@pytest.mark.parametrize("field", ["read_sigma", "device_sigma",
                                   "drift_rate_per_s"])
def test_negative_parameters_rejected(field):
    with pytest.raises(ValueError):
        VariabilityModel(**{field: -0.1})


def test_drift_target_validated():
    with pytest.raises(ValueError):
        VariabilityModel(drift_target=2.0)
