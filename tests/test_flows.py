"""Traffic generators."""

import numpy as np
import pytest

from repro.simnet.engine import Simulator
from repro.simnet.flows import (
    OnOffFlowGenerator,
    ParetoBurstGenerator,
    PoissonFlowGenerator,
)


def collect(generator, duration):
    sim = Simulator()
    packets = []
    generator.attach(sim, packets.append)
    sim.run_until(duration)
    return packets


class TestPoisson:
    def test_mean_rate_close_to_nominal(self, rng):
        generator = PoissonFlowGenerator(rate_pps=1000.0, rng=rng)
        packets = collect(generator, 5.0)
        assert len(packets) == pytest.approx(5000, rel=0.1)

    def test_interarrivals_exponential_cv(self, rng):
        generator = PoissonFlowGenerator(rate_pps=2000.0, rng=rng)
        packets = collect(generator, 3.0)
        gaps = np.diff([p.created_at for p in packets])
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, abs=0.1)  # Poisson signature

    def test_packet_attributes_stamped(self, rng):
        generator = PoissonFlowGenerator(rate_pps=100.0,
                                         packet_size_bytes=512,
                                         flow_id=7, priority=1, rng=rng)
        packets = collect(generator, 1.0)
        assert all(p.size_bytes == 512 for p in packets)
        assert all(p.flow_id == 7 for p in packets)
        assert all(p.priority == 1 for p in packets)

    def test_stop_at_silences_flow(self, rng):
        generator = PoissonFlowGenerator(rate_pps=1000.0, stop_at=1.0,
                                         rng=rng)
        packets = collect(generator, 5.0)
        assert all(p.created_at <= 1.0 + 0.1 for p in packets)

    def test_rate_fn_scales_load(self, rng):
        generator = PoissonFlowGenerator(
            rate_pps=1000.0,
            rate_fn=lambda t: 3.0 if t >= 1.0 else 1.0, rng=rng)
        packets = collect(generator, 2.0)
        first = sum(1 for p in packets if p.created_at < 1.0)
        second = sum(1 for p in packets if p.created_at >= 1.0)
        assert second > 2.0 * first

    def test_negative_rate_factor_rejected(self, rng):
        generator = PoissonFlowGenerator(rate_pps=10.0,
                                         rate_fn=lambda t: -1.0, rng=rng)
        sim = Simulator()
        with pytest.raises(ValueError):
            generator.attach(sim, lambda p: None)

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            PoissonFlowGenerator(rate_pps=0.0)


class TestOnOff:
    def test_duty_cycle_and_mean_rate(self, rng):
        generator = OnOffFlowGenerator(peak_rate_pps=1000.0,
                                       mean_on_s=0.5, mean_off_s=0.5,
                                       rng=rng)
        assert generator.duty_cycle == pytest.approx(0.5)
        assert generator.mean_rate_pps == pytest.approx(500.0)
        packets = collect(generator, 20.0)
        assert len(packets) == pytest.approx(10000, rel=0.25)

    def test_off_periods_exist(self, rng):
        generator = OnOffFlowGenerator(peak_rate_pps=2000.0,
                                       mean_on_s=0.2, mean_off_s=0.5,
                                       rng=rng)
        packets = collect(generator, 10.0)
        gaps = np.diff([p.created_at for p in packets])
        # The largest gaps are OFF periods, far above 1/peak_rate.
        assert gaps.max() > 20.0 / 2000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffFlowGenerator(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            OnOffFlowGenerator(10.0, 0.0, 1.0)


class TestParetoBursts:
    def test_bursts_arrive_back_to_back(self, rng):
        generator = ParetoBurstGenerator(burst_rate_hz=5.0,
                                         mean_burst_packets=20.0,
                                         rng=rng)
        packets = collect(generator, 10.0)
        assert len(packets) > 100
        gaps = np.diff(sorted(p.created_at for p in packets))
        # Intra-burst spacing is the configured 10 us.
        assert np.median(gaps) == pytest.approx(1e-5, rel=0.2)

    def test_burst_sizes_heavy_tailed(self, rng):
        generator = ParetoBurstGenerator(burst_rate_hz=50.0,
                                         mean_burst_packets=10.0,
                                         pareto_alpha=1.3, rng=rng)
        sizes = [generator._burst_size() for _ in range(2000)]
        assert max(sizes) > 10 * np.median(sizes)

    def test_mean_burst_size_calibrated(self, rng):
        generator = ParetoBurstGenerator(burst_rate_hz=1.0,
                                         mean_burst_packets=30.0,
                                         pareto_alpha=2.5, rng=rng)
        sizes = [generator._burst_size() for _ in range(4000)]
        assert np.mean(sizes) == pytest.approx(30.0, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParetoBurstGenerator(0.0, 10.0)
        with pytest.raises(ValueError):
            ParetoBurstGenerator(1.0, 0.5)
        with pytest.raises(ValueError):
            ParetoBurstGenerator(1.0, 10.0, pareto_alpha=1.0)
