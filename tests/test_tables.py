"""Digital match-action tables over the TCAM."""

import pytest

from repro.dataplane.tables import (
    DigitalMatchActionTable,
    FieldKeySpec,
)
from repro.packet import Packet
from repro.tcam.tcam import TernaryPattern

KEY = (FieldKeySpec("dst_ip", 32), FieldKeySpec("protocol", 8))


def make_packet(dst="10.0.0.1", protocol=6):
    return Packet(fields={"dst_ip": dst, "protocol": protocol})


def make_table(**kwargs):
    return DigitalMatchActionTable("acl", KEY, **kwargs)


class TestFieldKeySpec:
    def test_ip_string_encoding(self):
        spec = FieldKeySpec("dst_ip", 32)
        assert spec.encode("10.0.0.1") == (10 << 24) | 1

    def test_int_encoding_with_bounds(self):
        spec = FieldKeySpec("protocol", 8)
        assert spec.encode(17) == 17
        with pytest.raises(ValueError):
            spec.encode(256)

    def test_custom_encoder(self):
        spec = FieldKeySpec("flag", 1, encoder=lambda v: 1 if v else 0)
        assert spec.encode("anything") == 1

    def test_unencodable_type_rejected(self):
        with pytest.raises(TypeError):
            FieldKeySpec("x", 8).encode(3.14)


class TestLookups:
    def test_exact_match_runs_action(self):
        table = make_table()
        marks = []
        pattern = TernaryPattern.from_value(
            ((10 << 24) | 1) << 8 | 6, 40)
        table.add_entry(pattern, verdict="allow",
                        action=lambda p: marks.append(p.packet_id))
        result = table.lookup(make_packet())
        assert result.hit
        assert result.verdict == "allow"
        assert len(marks) == 1

    def test_wildcard_protocol(self):
        table = make_table()
        value = ((10 << 24) | 1) << 8
        mask = ((0xFFFFFFFF) << 8)
        table.add_entry(TernaryPattern.from_value(value, 40, mask=mask),
                        verdict="route")
        assert table.lookup(make_packet(protocol=17)).verdict == "route"

    def test_miss_returns_default(self):
        table = make_table(default_verdict="deny")
        result = table.lookup(make_packet())
        assert not result.hit
        assert result.verdict == "deny"
        assert result.entry_index is None

    def test_action_verdict_overrides_static(self):
        table = make_table()
        pattern = TernaryPattern.from_value(((10 << 24) | 1) << 8 | 6, 40)
        table.add_entry(pattern, verdict="static",
                        action=lambda p: "dynamic")
        assert table.lookup(make_packet()).verdict == "dynamic"

    def test_missing_field_raises(self):
        table = make_table()
        with pytest.raises(KeyError):
            table.lookup(Packet(fields={"dst_ip": "10.0.0.1"}))

    def test_energy_charged_to_ledger(self):
        table = make_table()
        table.add_entry("x" * 40)
        table.lookup(make_packet())
        assert table.ledger.total > 0.0
        assert table.lookups == 1

    def test_len(self):
        table = make_table()
        table.add_entry("x" * 40)
        assert len(table) == 1


class TestValidation:
    def test_name_required(self):
        with pytest.raises(ValueError):
            DigitalMatchActionTable("", KEY)

    def test_key_spec_required(self):
        with pytest.raises(ValueError):
            DigitalMatchActionTable("t", ())

    def test_injected_tcam_width_checked(self):
        from repro.tcam.tcam import TCAM
        with pytest.raises(ValueError):
            DigitalMatchActionTable("t", KEY, tcam=TCAM(8))
