"""5-tuple ACL firewall."""

import pytest

from repro.netfunc.firewall import Action, Firewall, FirewallRule
from repro.packet import Packet


def make_packet(src="10.0.0.1", dst="192.168.1.1", sport=1234,
                dport=80, proto=6):
    return Packet(fields={"src_ip": src, "dst_ip": dst,
                          "src_port": sport, "dst_port": dport,
                          "protocol": proto})


def test_first_match_wins():
    firewall = Firewall(default_action=Action.DENY)
    firewall.add_rule(FirewallRule(Action.PERMIT,
                                   src_prefix="10.0.0.0/8"))
    firewall.add_rule(FirewallRule(Action.DENY,
                                   src_prefix="10.0.0.0/16"))
    # Both rules match; the earlier (PERMIT) wins.
    assert firewall.check(make_packet(src="10.0.1.1")) is Action.PERMIT


def test_default_action_on_miss():
    deny_default = Firewall(default_action=Action.DENY)
    assert deny_default.check(make_packet()) is Action.DENY
    permit_default = Firewall(default_action=Action.PERMIT)
    assert permit_default.check(make_packet()) is Action.PERMIT


def test_port_specific_rule():
    firewall = Firewall(default_action=Action.DENY)
    firewall.add_rule(FirewallRule(Action.PERMIT, dst_port=443))
    assert firewall.permits(make_packet(dport=443))
    assert not firewall.permits(make_packet(dport=80))


def test_protocol_specific_rule():
    firewall = Firewall(default_action=Action.DENY)
    firewall.add_rule(FirewallRule(Action.PERMIT, protocol=17))
    assert firewall.permits(make_packet(proto=17))
    assert not firewall.permits(make_packet(proto=6))


def test_full_five_tuple_rule():
    firewall = Firewall(default_action=Action.DENY)
    firewall.add_rule(FirewallRule(
        Action.PERMIT, src_prefix="10.0.0.0/24",
        dst_prefix="192.168.1.0/24", src_port=1234, dst_port=80,
        protocol=6))
    assert firewall.permits(make_packet())
    assert not firewall.permits(make_packet(sport=9999))
    assert not firewall.permits(make_packet(dst="192.168.2.1"))


def test_block_subnet_permit_rest():
    firewall = Firewall(default_action=Action.PERMIT)
    firewall.add_rule(FirewallRule(Action.DENY,
                                   src_prefix="172.16.0.0/12"))
    assert not firewall.permits(make_packet(src="172.20.1.1"))
    assert firewall.permits(make_packet(src="10.0.0.1"))


def test_missing_fields_default_to_zero():
    firewall = Firewall(default_action=Action.DENY)
    firewall.add_rule(FirewallRule(Action.PERMIT, protocol=0))
    assert firewall.permits(Packet(fields={}))


def test_rule_count():
    firewall = Firewall()
    firewall.add_rule(FirewallRule(Action.PERMIT))
    assert len(firewall) == 1


def test_energy_charged():
    firewall = Firewall()
    firewall.add_rule(FirewallRule(Action.PERMIT))
    firewall.check(make_packet())
    assert firewall.ledger.total > 0.0


def test_bad_port_rejected():
    firewall = Firewall()
    with pytest.raises(ValueError):
        firewall.add_rule(FirewallRule(Action.PERMIT, src_port=70000))
