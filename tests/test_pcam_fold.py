"""The analog constant-folding pass (:mod:`repro.core.pcam_fold`).

The fold is only legal when a single scalar evaluation broadcast over
a uniform chunk is *bit-identical* to the batch kernel — so these
tests are mostly about refusals and exact equality: property tests
pin ``evaluate_uniform`` against ``evaluate_batch`` over uniform
columns (including degenerate zero-width ramps and non-canonical
slopes), gating tests pin every documented refusal, and the AQM
section pins the compiled admission lane indistinguishable from the
batch path in decisions, counters, energy and ``last_pdp``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pcam_cell import PCAMCell, PCAMParams, prog_pcam
from repro.core.pcam_fold import (
    LOWERING,
    FoldedPCAMPipeline,
    fold_pipeline,
)
from repro.core.pcam_pipeline import PCAMPipeline
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.packet import Packet
from repro.robustness import FaultInjector, StuckAtFault

P1 = prog_pcam(0.0, 1.0, 2.0, 3.0)
P2 = prog_pcam(-1.0, 0.5, 1.5, 2.5)
P3 = prog_pcam(0.2, 0.9, 1.1, 1.8)


def make_pipeline(composition="product", params=(P1, P2, P3)):
    return PCAMPipeline.from_params(
        {f"s{i}": p for i, p in enumerate(params)},
        composition=composition)


@st.composite
def arbitrary_params(draw):
    """Valid params, canonical slopes NOT required, ramps may be
    degenerate (zero width) — the branches the fold must mirror."""
    m1 = draw(st.floats(-10.0, 10.0, allow_nan=False))
    gap1 = draw(st.floats(0.0, 5.0))
    gap2 = draw(st.floats(0.0, 5.0))
    gap3 = draw(st.floats(0.0, 5.0))
    pmin = draw(st.floats(0.0, 0.5))
    pmax = draw(st.floats(0.5, 1.0))
    sa = draw(st.floats(-20.0, 20.0, allow_nan=False))
    sb = draw(st.floats(-20.0, 20.0, allow_nan=False))
    return PCAMParams(m1=m1, m2=m1 + gap1, m3=m1 + gap1 + gap2,
                      m4=m1 + gap1 + gap2 + gap3, sa=sa, sb=sb,
                      pmax=pmax, pmin=pmin)


class TestGating:
    @pytest.mark.parametrize("composition",
                             ["product", "min", "geometric"])
    def test_sequential_compositions_fold(self, composition):
        folded = fold_pipeline(make_pipeline(composition))
        assert isinstance(folded, FoldedPCAMPipeline)
        assert len(folded) == 3

    def test_mean_composition_refused(self):
        # np.add.reduce pairwise-summation order depends on operand
        # contiguity, so uniform-broadcast equality is unprovable.
        assert fold_pipeline(make_pipeline("mean")) is None

    def test_tracer_or_profiler_refused(self):
        pipeline = make_pipeline()
        pipeline.tracer = object()
        assert fold_pipeline(pipeline) is None
        pipeline.tracer = None
        pipeline.profiler = object()
        assert fold_pipeline(pipeline) is None

    def test_faulted_cell_refused(self):
        pipeline = make_pipeline()
        FaultInjector(StuckAtFault(state="hrs"), cell_fraction=1.0,
                      rng=np.random.default_rng(3)) \
            .inject_pipeline(pipeline)
        assert fold_pipeline(pipeline) is None

    def test_nonlinear_cell_refused(self):
        pipeline = PCAMPipeline({
            "a": PCAMCell(P1),
            "b": PCAMCell(prog_pcam(0.0, 1.0, 2.0, 3.0),
                          nonlinearity="sigmoid")})
        assert fold_pipeline(pipeline) is None

    def test_subclassed_cell_refused(self):
        class DeviceishCell(PCAMCell):
            pass

        pipeline = PCAMPipeline({"a": DeviceishCell(P1)})
        assert fold_pipeline(pipeline) is None

    def test_lowering_reported(self):
        # The hermetic CI container has no numba; either way the
        # module constant and the fold must agree.
        folded = fold_pipeline(make_pipeline())
        assert LOWERING in ("numba", "python")
        assert folded.lowering in ("numba", "python")


class TestExactness:
    @pytest.mark.parametrize("composition",
                             ["product", "min", "geometric"])
    @settings(max_examples=120, deadline=None)
    @given(params=st.lists(arbitrary_params(), min_size=1, max_size=8),
           value=st.floats(-20.0, 20.0, allow_nan=False),
           n=st.integers(1, 64))
    def test_uniform_equals_batch_kernel(self, composition, params,
                                         value, n):
        pipeline = make_pipeline(composition, params)
        folded = fold_pipeline(pipeline)
        values = [value] * len(params)
        batch = {name: np.full(n, value)
                 for name in pipeline.stage_names}
        expected = pipeline.evaluate_batch(batch)
        assert np.all(expected == expected[0])
        got = folded.evaluate_uniform(values, count=n)
        assert got == expected[0]  # bit-exact, no tolerance

    def test_counters_advance_like_the_batch_kernel(self):
        pipeline = make_pipeline()
        folded = fold_pipeline(pipeline)
        folded.evaluate_uniform([0.5, 0.5, 0.5], count=17)
        for name in pipeline.stage_names:
            assert pipeline.stage(name).evaluations == 17

    def test_count_validation_guards_accounting(self):
        cell = PCAMCell(P1)
        with pytest.raises(ValueError, match="count must be >= 0"):
            cell.tally_evaluations(-1)


class TestInvalidation:
    def test_reprogram_invalidates_the_fold(self):
        pipeline = make_pipeline()
        folded = fold_pipeline(pipeline)
        assert folded.matches(pipeline)
        pipeline.program_stage("s1", prog_pcam(0.0, 0.5, 1.0, 1.5))
        assert not folded.matches(pipeline)
        refolded = fold_pipeline(pipeline)
        assert refolded is not None and refolded.matches(pipeline)

    def test_fault_injection_invalidates_the_fold(self):
        pipeline = make_pipeline()
        folded = fold_pipeline(pipeline)
        cell = pipeline.stage("s0")
        fault = StuckAtFault(state="hrs").materialise(
            cell.params, np.random.default_rng(0))
        cell.inject_fault(fault)
        assert not folded.matches(pipeline)
        pipeline.stage("s0").clear_fault()
        # Clearing the fault restores the *intended* params object?
        # No — clear_fault reprograms, so identity may change; the
        # contract is only that a fresh fold succeeds again.
        assert fold_pipeline(pipeline) is not None

    def test_attached_tracer_invalidates_without_refolding(self):
        pipeline = make_pipeline()
        folded = fold_pipeline(pipeline)
        pipeline.tracer = object()
        assert not folded.matches(pipeline)

    def test_different_pipeline_never_matches(self):
        folded = fold_pipeline(make_pipeline())
        assert not folded.matches(make_pipeline())


class FakeQueue:
    def __init__(self, packets=0, bytes_=0, rate=40e6, sojourn=0.0):
        self.backlog_packets = packets
        self.backlog_bytes = bytes_
        self.capacity_packets = 2000
        self.service_rate_bps = rate
        self.last_sojourn_s = sojourn


def congested_queue():
    return FakeQueue(packets=600, bytes_=600 * 1200, sojourn=0.05)


def aqm_pair(seed=7):
    """Two identically-seeded AQMs, one with the compiled lane."""
    plain = PCAMAQM(rng=np.random.default_rng(seed))
    compiled = PCAMAQM(rng=np.random.default_rng(seed))
    assert compiled.enable_compiled_lane()
    return plain, compiled


class TestAQMCompiledLane:
    def test_lane_is_opt_in_and_reversible(self):
        aqm = PCAMAQM(rng=np.random.default_rng(1))
        assert not aqm.compiled_lane
        assert aqm.enable_compiled_lane()
        assert aqm.compiled_lane
        aqm.disable_compiled_lane()
        assert not aqm.compiled_lane

    def test_admission_indistinguishable_from_batch_path(self):
        plain, compiled = aqm_pair()
        for step in range(30):
            now = 0.01 * (step + 1)
            packets_a = [Packet(size_bytes=1000, priority=step % 2)
                         for _ in range(16)]
            packets_b = [Packet(size_bytes=1000, priority=step % 2)
                         for _ in range(16)]
            drops_a = plain.on_enqueue_batch(
                packets_a, congested_queue(), now)
            drops_b = compiled.on_enqueue_batch(
                packets_b, congested_queue(), now)
            assert np.array_equal(drops_a, drops_b), step
        assert plain.evaluations == compiled.evaluations > 0
        assert plain.last_pdp == compiled.last_pdp
        assert plain.ledger.total == compiled.ledger.total
        for name in plain.pipeline.stage_names:
            assert plain.pipeline.stage(name).evaluations == \
                compiled.pipeline.stage(name).evaluations

    def test_monitor_attachment_demotes_per_chunk(self):
        plain, compiled = aqm_pair(seed=11)
        seen = []
        compiled.output_monitor = lambda batch, pdps: \
            seen.append(pdps.shape)
        plain.output_monitor = lambda batch, pdps: None
        drops_a = plain.on_enqueue_batch(
            [Packet(size_bytes=900) for _ in range(8)],
            congested_queue(), 0.02)
        drops_b = compiled.on_enqueue_batch(
            [Packet(size_bytes=900) for _ in range(8)],
            congested_queue(), 0.02)
        # The monitor saw the full batch (lane bypassed), decisions
        # unchanged.
        assert seen == [(8,)]
        assert np.array_equal(drops_a, drops_b)

    def test_fault_injection_demotes_mid_stream(self):
        plain, compiled = aqm_pair(seed=13)
        for aqm in (plain, compiled):
            FaultInjector(StuckAtFault(state="hrs"),
                          cell_fraction=1.0,
                          rng=np.random.default_rng(99)) \
                .inject_aqm(aqm)
        drops_a = plain.on_enqueue_batch(
            [Packet(size_bytes=900) for _ in range(12)],
            congested_queue(), 0.02)
        drops_b = compiled.on_enqueue_batch(
            [Packet(size_bytes=900) for _ in range(12)],
            congested_queue(), 0.02)
        assert np.array_equal(drops_a, drops_b)
        assert plain.last_pdp == compiled.last_pdp
