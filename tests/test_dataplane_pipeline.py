"""End-to-end tests of the Figure 5 packet processor."""

import numpy as np
import pytest

from repro.dataplane.parser import build_ethernet_frame, build_ipv4_packet
from repro.dataplane.pipeline import AnalogPacketProcessor, Verdict
from repro.netfunc.firewall import Action, FirewallRule
from repro.packet import Packet


def make_processor(**kwargs):
    processor = AnalogPacketProcessor(n_ports=2, **kwargs)
    processor.add_route("10.0.0.0/8", port=0)
    processor.add_route("192.168.0.0/16", port=1)
    processor.add_firewall_rule(FirewallRule(
        action=Action.DENY, src_prefix="172.16.0.0/12"))
    return processor


def make_packet(src="10.1.1.1", dst="10.2.2.2", **fields):
    merged = {"src_ip": src, "dst_ip": dst, "protocol": 17,
              "src_port": 1000, "dst_port": 80}
    merged.update(fields)
    return Packet(fields=merged)


class TestDataPath:
    def test_routed_packet_queued(self):
        processor = make_processor()
        result = processor.process(make_packet(dst="192.168.3.4"))
        assert result.verdict is Verdict.QUEUED
        assert result.port == 1

    def test_acl_denied_packet_dropped(self):
        processor = make_processor()
        result = processor.process(make_packet(src="172.16.5.5"))
        assert result.verdict is Verdict.DROPPED_ACL

    def test_unrouted_packet_dropped(self):
        processor = make_processor()
        result = processor.process(make_packet(dst="8.8.8.8"))
        assert result.verdict is Verdict.DROPPED_NO_ROUTE

    def test_frame_path_parses_and_routes(self):
        processor = make_processor()
        frame = build_ethernet_frame(build_ipv4_packet(
            "10.1.1.1", "10.9.9.9"))
        result = processor.process_frame(frame)
        assert result.verdict is Verdict.QUEUED
        assert result.port == 0

    def test_garbage_frame_dropped_at_parse(self):
        processor = make_processor()
        assert processor.process_frame(b"junk").verdict is \
            Verdict.DROPPED_PARSE

    def test_drain_serves_queued_packets(self):
        processor = make_processor()
        for _ in range(3):
            processor.process(make_packet())
        served = processor.drain(0, now=0.001)
        assert len(served) == 3
        assert processor.drain(0) == []

    def test_drain_limit(self):
        processor = make_processor()
        for _ in range(3):
            processor.process(make_packet())
        assert len(processor.drain(0, limit=2)) == 2

    def test_verdict_counters(self):
        processor = make_processor()
        processor.process(make_packet())
        processor.process(make_packet(dst="8.8.8.8"))
        assert processor.verdict_counts[Verdict.QUEUED] == 1
        assert processor.verdict_counts[Verdict.DROPPED_NO_ROUTE] == 1
        assert processor.processed == 2


class TestEnergyAccounting:
    def test_searches_charge_energy(self):
        processor = make_processor()
        before = processor.energy_total_j()
        processor.process(make_packet())
        assert processor.energy_total_j() > before

    def test_memristor_pipeline_cheaper_than_transistor(self):
        analog = make_processor(use_memristor_tcam=True)
        digital = make_processor(use_memristor_tcam=False)
        for processor in (analog, digital):
            for index in range(50):
                processor.process(make_packet(dst=f"10.0.0.{index}"))
        assert analog.energy_total_j() < digital.energy_total_j()

    def test_breakdown_has_accounts(self):
        processor = make_processor()
        processor.process(make_packet())
        assert processor.energy_breakdown()


class TestAQMIntegration:
    def test_overloaded_port_triggers_aqm(self):
        # Tiny port rate -> large estimated delay -> pCAM drops.
        processor = make_processor(port_rate_bps=1e5,
                                   aqm_factory=None)
        rng = np.random.default_rng(0)
        drops = 0
        for index in range(400):
            result = processor.process(make_packet(), now=index * 1e-4)
            if result.verdict is Verdict.DROPPED_AQM:
                drops += 1
        assert drops > 0

    def test_route_port_validated(self):
        processor = make_processor()
        with pytest.raises(IndexError):
            processor.add_route("1.0.0.0/8", port=9)

    def test_n_ports_validated(self):
        with pytest.raises(ValueError):
            AnalogPacketProcessor(n_ports=0)
