"""Property-based tests (hypothesis) for the pCAM core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.pcam_cell import PCAMCell, PCAMParams, prog_pcam
from repro.core.pcam_pipeline import PCAMPipeline


@st.composite
def canonical_params(draw):
    """Random valid canonical parameter sets."""
    m1 = draw(st.floats(-10.0, 10.0, allow_nan=False))
    gap1 = draw(st.floats(0.05, 5.0))
    gap2 = draw(st.floats(0.0, 5.0))
    gap3 = draw(st.floats(0.05, 5.0))
    pmin = draw(st.floats(0.0, 0.4))
    pmax = draw(st.floats(0.6, 1.0))
    return PCAMParams.canonical(m1=m1, m2=m1 + gap1, m3=m1 + gap1 + gap2,
                                m4=m1 + gap1 + gap2 + gap3,
                                pmax=pmax, pmin=pmin)


@given(params=canonical_params(),
       x=st.floats(-50.0, 50.0, allow_nan=False))
def test_output_always_within_rails(params, x):
    cell = PCAMCell(params)
    output = cell.response(x)
    assert params.pmin - 1e-9 <= output <= params.pmax + 1e-9


@given(params=canonical_params())
def test_plateau_hits_pmax(params):
    cell = PCAMCell(params)
    centre = 0.5 * (params.m2 + params.m3)
    assert cell.response(centre) == np.float64(params.pmax)


@given(params=canonical_params(),
       offset=st.floats(0.01, 100.0))
def test_outside_support_is_pmin(params, offset):
    cell = PCAMCell(params)
    assert cell.response(params.m1 - offset) == np.float64(params.pmin)
    assert cell.response(params.m4 + offset) == np.float64(params.pmin)


@given(params=canonical_params())
def test_rising_ramp_monotone_nondecreasing(params):
    cell = PCAMCell(params)
    xs = np.linspace(params.m1, params.m2, 33)
    outputs = cell.response_array(xs)
    assert np.all(np.diff(outputs) >= -1e-9)


@given(params=canonical_params())
def test_falling_ramp_monotone_nonincreasing(params):
    cell = PCAMCell(params)
    xs = np.linspace(params.m3, params.m4, 33)
    outputs = cell.response_array(xs)
    assert np.all(np.diff(outputs) <= 1e-9)


@given(params=canonical_params(),
       x=st.floats(-20.0, 20.0, allow_nan=False),
       delta=st.floats(-5.0, 5.0, allow_nan=False))
def test_shift_equivariance(params, x, delta):
    """Translating thresholds translates the response."""
    cell = PCAMCell(params)
    shifted = PCAMCell(params.shifted(delta))
    # Equal up to floating-point rearrangement of the ramp intercepts.
    assert abs(shifted.response(x + delta) - cell.response(x)) < 1e-7


@given(params=canonical_params(),
       x=st.floats(-20.0, 20.0, allow_nan=False),
       n_stages=st.integers(1, 5))
@settings(max_examples=50)
def test_series_product_is_power_of_single(params, x, n_stages):
    """Identical stages in series: output = single ** n (Figure 4b)."""
    single = PCAMCell(params).response(x)
    pipeline = PCAMPipeline.from_params(
        {f"s{i}": params for i in range(n_stages)})
    combined = pipeline.evaluate([x] * n_stages)
    assert combined == np.float64(single ** n_stages) or \
        abs(combined - single ** n_stages) < 1e-9


@given(params=canonical_params(),
       x=st.floats(-20.0, 20.0, allow_nan=False))
def test_pipeline_product_never_exceeds_weakest_stage(params, x):
    pipeline = PCAMPipeline.from_params({"a": params, "b": params})
    product = pipeline.evaluate([x, x])
    single = PCAMCell(params).response(x)
    assert product <= single + 1e-9


@given(params=canonical_params(),
       x=st.floats(-20.0, 20.0, allow_nan=False))
def test_deterministic_view_consistent_with_response(params, x):
    """Digital view True iff analog response equals pmax region."""
    cell = PCAMCell(params)
    verdict = cell.deterministic_match(x)
    response = cell.response(x)
    if verdict is True:
        assert response == np.float64(params.pmax)
    elif verdict is False:
        assert response == np.float64(params.pmin)
    else:
        assert params.pmin <= response <= params.pmax
