"""Degenerate pCAM programmings: zero-width ramps and flat rails.

``M1 == M2`` or ``M3 == M4`` collapses a probabilistic ramp to a
zero-width step, and ``pmin == pmax`` pins the cell to a constant
output.  All are legal programmings (a controller narrowing a window
can reach them), and neither the scalar nor the batch transfer
function may divide by zero on the way.
"""

import warnings

import numpy as np
import pytest

from repro.core.pcam_cell import MatchRegion, PCAMCell, PCAMParams
from repro.core.pcam_pipeline import PCAMPipeline

PROBE = np.array([-5.0, -1.0, 0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 7.0])


def evaluate_strict(cell, values):
    """Scalar + batch responses with warnings promoted to errors."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        batch = cell.response_array(values)
        scalar = np.array([cell.response(float(v)) for v in values])
    return batch, scalar


class TestZeroWidthRamps:
    def test_m1_equals_m2_steps_to_plateau(self):
        params = PCAMParams.canonical(1.0, 1.0, 2.0, 3.0)
        assert params.canonical_sa == 0.0
        cell = PCAMCell(params)
        batch, scalar = evaluate_strict(cell, PROBE)
        np.testing.assert_allclose(batch, scalar, rtol=1e-9)
        # The step sits at M1 == M2; the mismatch side keeps the
        # boundary point (x <= M1 -> pmin), the plateau is open-left.
        assert cell.response(1.0) == 0.0
        assert cell.response(1.001) == 1.0
        assert cell.response(2.0) == 1.0

    def test_m3_equals_m4_steps_to_floor(self):
        params = PCAMParams.canonical(0.0, 1.0, 2.0, 2.0)
        assert params.canonical_sb == 0.0
        cell = PCAMCell(params)
        batch, scalar = evaluate_strict(cell, PROBE)
        np.testing.assert_allclose(batch, scalar, rtol=1e-9)
        # Mirrored: x >= M4 -> pmin keeps the boundary point.
        assert cell.response(1.999) == 1.0
        assert cell.response(2.0) == 0.0

    def test_both_ramps_degenerate_is_a_window_function(self):
        params = PCAMParams.canonical(1.0, 1.0, 2.0, 2.0)
        cell = PCAMCell(params)
        batch, scalar = evaluate_strict(cell, PROBE)
        np.testing.assert_allclose(batch, scalar, rtol=1e-9)
        inside = (PROBE > 1.0) & (PROBE < 2.0)
        np.testing.assert_array_equal(batch, np.where(inside, 1.0, 0.0))

    def test_all_thresholds_equal_has_empty_support(self):
        params = PCAMParams.canonical(1.5, 1.5, 1.5, 1.5)
        cell = PCAMCell(params)
        batch, scalar = evaluate_strict(cell, PROBE)
        np.testing.assert_allclose(batch, scalar, rtol=1e-9)
        # Support is the open interval (M1, M4), here empty: the cell
        # reads pmin everywhere, including at the collapsed point.
        np.testing.assert_array_equal(batch, np.zeros(PROBE.shape))
        assert cell.response(1.5) == 0.0

    def test_noncanonical_slopes_with_empty_ramps(self):
        # Arbitrary programmed slopes must not leak into the empty
        # regions' output (their branch values are never selected).
        params = PCAMParams(m1=1.0, m2=1.0, m3=2.0, m4=2.0,
                            sa=123.0, sb=-456.0)
        cell = PCAMCell(params)
        batch, scalar = evaluate_strict(cell, PROBE)
        np.testing.assert_allclose(batch, scalar, rtol=1e-9)
        assert np.all((batch == 0.0) | (batch == 1.0))


class TestFlatRails:
    def test_pmin_equals_pmax_is_constant_inside_support(self):
        params = PCAMParams.canonical(0.0, 1.0, 2.0, 3.0,
                                      pmax=0.5, pmin=0.5)
        cell = PCAMCell(params)
        batch, scalar = evaluate_strict(cell, PROBE)
        np.testing.assert_allclose(batch, scalar, rtol=1e-9)
        np.testing.assert_array_equal(batch, np.full(PROBE.shape, 0.5))
        assert params.canonical_sa == 0.0
        assert params.canonical_sb == 0.0

    def test_fully_degenerate_cell(self):
        params = PCAMParams.canonical(1.0, 1.0, 1.0, 1.0,
                                      pmax=0.25, pmin=0.25)
        cell = PCAMCell(params)
        batch, scalar = evaluate_strict(cell, PROBE)
        np.testing.assert_allclose(batch, scalar, rtol=1e-9)
        np.testing.assert_array_equal(batch,
                                      np.full(PROBE.shape, 0.25))


class TestDegenerateTransforms:
    def test_widened_survives_degenerate_windows(self):
        params = PCAMParams.canonical(1.0, 1.0, 2.0, 2.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            wider = params.widened(2.0)
        assert wider.m1 <= wider.m2 <= wider.m3 <= wider.m4

    def test_shifted_preserves_degeneracy(self):
        params = PCAMParams.canonical(1.0, 1.0, 2.0, 3.0)
        moved = params.shifted(0.5)
        assert moved.m1 == moved.m2 == 1.5
        cell = PCAMCell(moved)
        batch, scalar = evaluate_strict(cell, PROBE)
        np.testing.assert_allclose(batch, scalar, rtol=1e-9)

    def test_region_classification_degenerate(self):
        cell = PCAMCell(PCAMParams.canonical(1.0, 1.0, 2.0, 2.0))
        assert cell.region(1.5) is MatchRegion.MATCH
        assert cell.region(0.5) is MatchRegion.MISMATCH_LOW
        assert cell.region(2.5) is MatchRegion.MISMATCH_HIGH


class TestDegeneratePipelines:
    def test_pipeline_with_degenerate_stage_scalar_and_batch(self):
        pipeline = PCAMPipeline.from_params({
            "window": PCAMParams.canonical(1.0, 1.0, 2.0, 2.0),
            "flat": PCAMParams.canonical(0.0, 1.0, 2.0, 3.0,
                                         pmax=0.5, pmin=0.5)})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            scalar = pipeline.evaluate({"window": 1.5, "flat": 1.5})
            batch = pipeline.evaluate_batch(
                {"window": PROBE, "flat": PROBE})
        assert scalar == pytest.approx(0.5)
        reference = np.array([
            pipeline.evaluate({"window": float(v), "flat": float(v)})
            for v in PROBE])
        np.testing.assert_allclose(batch, reference, rtol=1e-9)

    def test_reversed_thresholds_still_rejected(self):
        with pytest.raises(ValueError):
            PCAMParams.canonical(3.0, 2.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            PCAMParams(0.0, 1.0, 2.0, 3.0, sa=1.0, sb=-1.0,
                       pmax=0.2, pmin=0.8)
