"""Fault model unit behaviour: seedability, composability, persistence.

Every fault model must (a) draw exclusively from the caller's seeded
generator, so the same seed materialises the same defect; (b) compose
through :class:`CompositeFaultModel`; and (c) implement the documented
reprogramming semantics — drift scrubs, programming variance
resamples, stuck cells and converter resolution persist.
"""

import numpy as np
import pytest

from repro.core.pcam_cell import PCAMCell, PCAMParams
from repro.robustness.models import (
    CellFault,
    CompositeFaultModel,
    ConductanceDrift,
    ConverterQuantization,
    ProgrammingVariance,
    StuckAtFault,
    TransientReadNoise,
)

PARAMS = PCAMParams.canonical(0.0, 1.0, 2.0, 3.0, pmax=0.9, pmin=0.05)
PROBES = np.linspace(-1.0, 4.0, 41)


def faulted_cell(model, seed=0, params=PARAMS):
    cell = PCAMCell(params)
    cell.inject_fault(model.materialise(cell.intended_params,
                                        np.random.default_rng(seed)))
    return cell


class TestBaseFault:
    def test_identity_fault_changes_nothing(self):
        cell = PCAMCell(PARAMS)
        clean = cell.response_array(PROBES)
        cell.inject_fault(CellFault())
        np.testing.assert_array_equal(cell.response_array(PROBES), clean)

    def test_clear_fault_restores_intent(self):
        cell = faulted_cell(ConductanceDrift(bias=0.5, scale=0.0))
        assert cell.params != PARAMS
        cell.clear_fault()
        assert cell.fault is None
        assert cell.params == PARAMS


class TestStuckAt:
    def test_lrs_pins_at_pmax(self):
        cell = faulted_cell(StuckAtFault(state="lrs"))
        np.testing.assert_allclose(cell.response_array(PROBES),
                                   PARAMS.pmax)

    def test_hrs_pins_at_pmin(self):
        cell = faulted_cell(StuckAtFault(state="hrs"))
        np.testing.assert_allclose(cell.response_array(PROBES),
                                   PARAMS.pmin)

    def test_survives_reprogramming(self):
        cell = faulted_cell(StuckAtFault(state="lrs"))
        cell.program(PARAMS.shifted(0.3))
        assert cell.fault is not None
        np.testing.assert_allclose(cell.response_array(PROBES),
                                   PARAMS.pmax)

    def test_state_validated(self):
        with pytest.raises(ValueError):
            StuckAtFault(state="floating")


class TestConductanceDrift:
    def test_shifts_all_thresholds(self):
        cell = faulted_cell(ConductanceDrift(bias=0.5, scale=0.0))
        assert cell.params.m1 == pytest.approx(PARAMS.m1 + 0.5)
        assert cell.params.m4 == pytest.approx(PARAMS.m4 + 0.5)
        assert cell.intended_params == PARAMS

    def test_seedable(self):
        a = faulted_cell(ConductanceDrift(scale=0.3), seed=7)
        b = faulted_cell(ConductanceDrift(scale=0.3), seed=7)
        c = faulted_cell(ConductanceDrift(scale=0.3), seed=8)
        assert a.params == b.params
        assert a.params != c.params

    def test_scrubbed_by_reprogram(self):
        cell = faulted_cell(ConductanceDrift(bias=1.0, scale=0.0))
        cell.program(PARAMS)
        assert cell.fault is None
        assert cell.params == PARAMS

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            ConductanceDrift(scale=-0.1)


class TestProgrammingVariance:
    def test_threshold_ordering_preserved(self):
        model = ProgrammingVariance(sigma=5.0)  # huge on purpose
        for seed in range(20):
            p = faulted_cell(model, seed=seed).params
            assert p.m1 <= p.m2 <= p.m3 <= p.m4

    def test_seedable(self):
        a = faulted_cell(ProgrammingVariance(sigma=0.2), seed=3)
        b = faulted_cell(ProgrammingVariance(sigma=0.2), seed=3)
        assert a.params == b.params

    def test_reprogram_resamples_but_persists(self):
        cell = faulted_cell(ProgrammingVariance(sigma=0.2), seed=5)
        first = cell.params
        cell.program(PARAMS)
        assert cell.fault is not None
        assert cell.params != first  # fresh landing error
        assert cell.params != PARAMS

    def test_sigma_validated(self):
        with pytest.raises(ValueError):
            ProgrammingVariance(sigma=-1.0)


class TestConverterQuantization:
    def test_deterministic_and_snapped(self):
        model = ConverterQuantization(dac_bits=3, adc_bits=3,
                                      v_lo=-1.0, v_hi=4.0)
        cell = faulted_cell(model)
        once = cell.response_array(PROBES)
        np.testing.assert_array_equal(cell.response_array(PROBES), once)
        # 3-bit ADC: every response sits on one of 8 levels in [0, 1]
        # (modulo the rail clip applied after the fault hook).
        levels = np.round(once * 7) / 7
        clipped = np.clip(levels, PARAMS.pmin, PARAMS.pmax)
        np.testing.assert_allclose(once, clipped, atol=1e-12)

    def test_coarse_dac_merges_nearby_inputs(self):
        model = ConverterQuantization(dac_bits=2, adc_bits=12,
                                      v_lo=-1.0, v_hi=4.0)
        cell = faulted_cell(model)
        fine = cell.response_array(np.array([1.4, 1.5, 1.6]))
        # A 2-bit DAC has levels 5/3 apart; all three snap together.
        assert fine[0] == fine[1] == fine[2]

    def test_survives_reprogramming(self):
        cell = faulted_cell(ConverterQuantization())
        cell.program(PARAMS)
        assert cell.fault is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            ConverterQuantization(dac_bits=0)
        with pytest.raises(ValueError):
            ConverterQuantization(v_lo=1.0, v_hi=1.0)


class TestTransientReadNoise:
    def test_seedable_stream(self):
        a = faulted_cell(TransientReadNoise(sigma=0.05), seed=11)
        b = faulted_cell(TransientReadNoise(sigma=0.05), seed=11)
        np.testing.assert_array_equal(a.response_array(PROBES),
                                      b.response_array(PROBES))

    def test_fresh_noise_per_read(self):
        cell = faulted_cell(TransientReadNoise(sigma=0.05))
        assert not np.array_equal(cell.response_array(PROBES),
                                  cell.response_array(PROBES))

    def test_zero_sigma_is_identity(self):
        clean = PCAMCell(PARAMS).response_array(PROBES)
        cell = faulted_cell(TransientReadNoise(sigma=0.0))
        np.testing.assert_array_equal(cell.response_array(PROBES), clean)

    def test_noise_stays_inside_rails(self):
        cell = faulted_cell(TransientReadNoise(sigma=0.5))
        out = cell.response_array(PROBES)
        assert np.all(out >= PARAMS.pmin) and np.all(out <= PARAMS.pmax)


class TestComposition:
    def test_name_joins_members(self):
        model = CompositeFaultModel([ConductanceDrift(),
                                     TransientReadNoise()])
        assert model.name == "conductance_drift+transient_read_noise"
        labelled = CompositeFaultModel([ConductanceDrift()], label="x")
        assert labelled.name == "x"

    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError):
            CompositeFaultModel([])

    def test_applies_all_members(self):
        model = CompositeFaultModel([
            ConductanceDrift(bias=0.5, scale=0.0),
            StuckAtFault(state="hrs")])
        cell = faulted_cell(model)
        # Drift moved the realised thresholds...
        assert cell.params.m1 == pytest.approx(PARAMS.m1 + 0.5)
        # ...and the stuck member still pins the output.
        np.testing.assert_allclose(cell.response_array(PROBES),
                                   PARAMS.pmin)

    def test_reprogram_scrubs_only_transient_members(self):
        model = CompositeFaultModel([
            ConductanceDrift(bias=0.5, scale=0.0),
            ConverterQuantization(dac_bits=3, adc_bits=3)])
        cell = faulted_cell(model)
        cell.program(PARAMS)
        # Drift member scrubbed: realised thresholds back on target.
        assert cell.params == PARAMS
        # Quantization member survives.
        assert cell.fault is not None
        assert len(cell.fault.faults) == 1

    def test_composite_of_transients_clears_entirely(self):
        model = CompositeFaultModel([ConductanceDrift(bias=0.3,
                                                      scale=0.0)])
        cell = faulted_cell(model)
        cell.program(PARAMS)
        assert cell.fault is None

    def test_seedable(self):
        model = CompositeFaultModel([ConductanceDrift(scale=0.2),
                                     ProgrammingVariance(sigma=0.1)])
        assert (faulted_cell(model, seed=2).params
                == faulted_cell(model, seed=2).params)
