"""Decision trees on the analog CAM."""

import numpy as np
import pytest

from repro.netfunc.decision_tree import (
    AnalogDecisionTree,
    CARTTree,
    tree_to_boxes,
)


def two_cluster_data(rng, n=200):
    """Two well-separated classes in 2-D."""
    a = rng.normal([0.3, 0.3], 0.08, size=(n // 2, 2))
    b = rng.normal([0.7, 0.7], 0.08, size=(n // 2, 2))
    features = np.vstack([a, b])
    labels = np.array([0] * (n // 2) + [1] * (n // 2))
    return features, labels


def quadrant_data(rng, n=400):
    """Class 1 in the upper-right quadrant (needs depth >= 2)."""
    x = rng.uniform(0, 1, size=(n, 2))
    labels = ((x[:, 0] > 0.5) & (x[:, 1] > 0.5)).astype(int)
    return x, labels


class TestCARTTree:
    def test_separable_data_fits_perfectly(self, rng):
        features, labels = two_cluster_data(rng)
        tree = CARTTree(max_depth=3).fit(features, labels)
        assert np.mean(tree.predict(features) == labels) > 0.98

    def test_quadrant_needs_depth_two(self, rng):
        features, labels = quadrant_data(rng)
        shallow = CARTTree(max_depth=1).fit(features, labels)
        deep = CARTTree(max_depth=3).fit(features, labels)
        shallow_acc = np.mean(shallow.predict(features) == labels)
        deep_acc = np.mean(deep.predict(features) == labels)
        assert deep_acc > 0.95
        assert shallow_acc < deep_acc

    def test_pure_node_becomes_leaf(self, rng):
        features = rng.uniform(0, 1, size=(50, 2))
        labels = np.zeros(50, dtype=int)
        tree = CARTTree(max_depth=5).fit(features, labels)
        assert tree.root.is_leaf
        assert tree.n_leaves() == 1

    def test_min_samples_leaf_respected(self, rng):
        features, labels = quadrant_data(rng, n=40)
        tree = CARTTree(max_depth=10, min_samples_leaf=15).fit(
            features, labels)
        assert tree.n_leaves() <= 3

    def test_unfitted_tree_rejected(self):
        with pytest.raises(RuntimeError):
            CARTTree().root

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            CARTTree(max_depth=0)
        with pytest.raises(ValueError):
            CARTTree(min_samples_leaf=0)
        with pytest.raises(ValueError):
            CARTTree().fit(np.zeros((3, 2)), np.zeros(4))


class TestTreeToBoxes:
    def test_boxes_partition_the_space(self, rng):
        features, labels = quadrant_data(rng)
        tree = CARTTree(max_depth=3).fit(features, labels)
        boxes = tree_to_boxes(tree, [(0.0, 1.0), (0.0, 1.0)])
        assert len(boxes) == tree.n_leaves()
        # Every training point falls in exactly one box.
        for row in features[:50]:
            containing = [
                1 for _, box in boxes
                if all(lo <= value <= hi
                       for value, (lo, hi) in zip(row, box))]
            assert len(containing) >= 1

    def test_box_class_matches_tree_prediction(self, rng):
        features, labels = two_cluster_data(rng)
        tree = CARTTree(max_depth=3).fit(features, labels)
        boxes = tree_to_boxes(tree, [(0.0, 1.0), (0.0, 1.0)])
        for prediction, box in boxes:
            centre = [0.5 * (lo + hi) for lo, hi in box]
            assert tree.predict_one(centre) == prediction

    def test_range_count_validated(self, rng):
        features, labels = two_cluster_data(rng)
        tree = CARTTree().fit(features, labels)
        with pytest.raises(ValueError):
            tree_to_boxes(tree, [(0.0, 1.0)])


class TestAnalogDecisionTree:
    def make(self, rng, data=two_cluster_data):
        features, labels = data(rng)
        tree = CARTTree(max_depth=3).fit(features, labels)
        analog = AnalogDecisionTree(
            tree, feature_names=("x", "y"),
            feature_ranges=[(0.0, 1.0), (0.0, 1.0)])
        return tree, analog, features, labels

    def test_one_word_per_leaf(self, rng):
        tree, analog, _, _ = self.make(rng)
        assert analog.n_words == tree.n_leaves()

    def test_agreement_with_digital_tree(self, rng):
        tree, analog, features, _ = self.make(rng)
        assert analog.agreement_with(tree, features[:80]) > 0.95

    def test_quadrant_agreement(self, rng):
        tree, analog, features, _ = self.make(rng, data=quadrant_data)
        assert analog.agreement_with(tree, features[:80]) > 0.9

    def test_in_box_classification_deterministic(self, rng):
        _, analog, _, _ = self.make(rng)
        prediction, probability = analog.classify({"x": 0.3, "y": 0.3})
        assert prediction == 0
        assert probability == pytest.approx(1.0)

    def test_out_of_distribution_still_classifies(self, rng):
        # RQ1 again: a sample outside every leaf box falls to the
        # nearest leaf with a graded score.
        _, analog, _, _ = self.make(rng)
        prediction, probability = analog.classify(
            {"x": 1.02, "y": 0.72})
        assert prediction in (0, 1)
        assert 0.0 < probability

    def test_search_energy_charged(self, rng):
        _, analog, _, _ = self.make(rng)
        analog.classify({"x": 0.3, "y": 0.3})
        assert analog.ledger.total > 0.0

    def test_validation(self, rng):
        features, labels = two_cluster_data(rng)
        tree = CARTTree().fit(features, labels)
        with pytest.raises(ValueError):
            AnalogDecisionTree(tree, ("only_one",),
                               [(0.0, 1.0), (0.0, 1.0)])
        with pytest.raises(ValueError):
            AnalogDecisionTree(tree, ("x", "y"),
                               [(0.0, 1.0), (0.0, 1.0)],
                               fade_fraction=0.0)
