"""Data-plane telemetry."""

import pytest

from repro.dataplane.telemetry import (
    TelemetryCollector,
    int_metadata,
    stamp_packet,
)
from repro.packet import Packet


class TestINTStamping:
    def test_trail_accumulates_in_order(self):
        packet = Packet()
        stamp_packet(packet, "ingress", 3, 0.001)
        stamp_packet(packet, "egress0", 12, 0.002)
        trail = int_metadata(packet)
        assert [record["component"] for record in trail] == \
            ["ingress", "egress0"]
        assert trail[1]["queue_depth"] == 12

    def test_unstamped_packet_empty_trail(self):
        assert int_metadata(Packet()) == []

    def test_trail_copy_not_aliased(self):
        packet = Packet()
        stamp_packet(packet, "a", 1, 0.0)
        trail = int_metadata(packet)
        trail.append({"component": "fake"})
        assert len(int_metadata(packet)) == 1

    def test_trail_records_not_aliased(self):
        # The copy must be per record, not just the outer list: a sink
        # annotating a returned record must not corrupt the packet.
        packet = Packet()
        stamp_packet(packet, "a", 1, 0.0)
        trail = int_metadata(packet)
        trail[0]["queue_depth"] = 999
        trail[0]["annotation"] = "sink-side"
        fresh = int_metadata(packet)
        assert fresh[0]["queue_depth"] == 1
        assert "annotation" not in fresh[0]


class TestTelemetryCollector:
    def test_table_counters(self):
        collector = TelemetryCollector()
        collector.record_lookup("acl", hit=True, verdict="permit")
        collector.record_lookup("acl", hit=True, verdict="deny")
        collector.record_lookup("acl", hit=False)
        stats = collector.table("acl")
        assert stats.lookups == 3
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.verdicts["permit"] == 1

    def test_unknown_table_rejected(self):
        with pytest.raises(KeyError):
            TelemetryCollector().table("ghost")

    def test_hit_rate_empty_table(self):
        from repro.dataplane.telemetry import TableStats
        assert TableStats().hit_rate == 0.0

    def test_events_and_gauges(self):
        collector = TelemetryCollector()
        collector.record_event("aqm_drop", 3)
        collector.record_event("aqm_drop")
        collector.set_gauge("delay_ewma_s", 0.021)
        assert collector.event_count("aqm_drop") == 4
        assert collector.event_count("never") == 0
        assert collector.gauge("delay_ewma_s") == pytest.approx(0.021)
        assert collector.gauge("missing", default=-1.0) == -1.0

    def test_negative_event_count_rejected(self):
        with pytest.raises(ValueError):
            TelemetryCollector().record_event("x", -1)

    def test_snapshot_serialisable(self):
        import json
        collector = TelemetryCollector()
        collector.record_lookup("lpm", hit=True, verdict="port0")
        collector.set_gauge("pdp", 0.3)
        collector.record_event("mark")
        text = json.dumps(collector.snapshot())
        assert "lpm" in text and "pdp" in text and "mark" in text

    def test_reset(self):
        collector = TelemetryCollector()
        collector.record_lookup("t", hit=True)
        collector.reset()
        assert collector.tables == {}
