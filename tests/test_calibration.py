"""Feature-to-voltage calibration (the Figure 7 DAC mapping)."""

import numpy as np
import pytest

from repro.core.calibration import (
    FeatureScaler,
    analog_read_energy_j,
    noise_band,
    scale_params,
)
from repro.core.device_cell import DevicePCAMCell
from repro.core.pcam_cell import PCAMCell, prog_pcam
from repro.crossbar.converters import DAC
from repro.device.variability import VariabilityModel


class TestFeatureScaler:
    def make(self, **kwargs):
        defaults = dict(feature_lo=0.0, feature_hi=0.1,
                        v_lo=0.0, v_hi=4.0)
        defaults.update(kwargs)
        return FeatureScaler(**defaults)

    def test_endpoints_map_to_rails(self):
        scaler = self.make()
        assert scaler.to_voltage(0.0) == pytest.approx(0.0)
        assert scaler.to_voltage(0.1) == pytest.approx(4.0)

    def test_linearity(self):
        scaler = self.make()
        assert scaler.to_voltage(0.05) == pytest.approx(2.0)

    def test_clipping_at_rails(self):
        scaler = self.make()
        assert scaler.to_voltage(-1.0) == pytest.approx(0.0)
        assert scaler.to_voltage(1.0) == pytest.approx(4.0)

    def test_round_trip(self):
        scaler = self.make()
        assert scaler.from_voltage(scaler.to_voltage(0.03)) == \
            pytest.approx(0.03)

    def test_gain(self):
        assert self.make().gain == pytest.approx(40.0)

    def test_vectorised_matches_scalar(self):
        scaler = self.make()
        features = np.linspace(-0.02, 0.12, 9)
        array = scaler.to_voltage_array(features)
        scalar = [scaler.to_voltage(float(f)) for f in features]
        np.testing.assert_allclose(array, scalar)

    def test_dac_routing_quantizes(self):
        coarse = self.make(dac=DAC(bits=3, v_min=0.0, v_max=4.0))
        smooth = self.make()
        voltage = coarse.to_voltage(0.0333)
        # Must land exactly on one of the 8 DAC levels.
        levels = [coarse.dac.convert(code) for code in range(8)]
        assert any(voltage == pytest.approx(level) for level in levels)
        assert voltage != pytest.approx(smooth.to_voltage(0.0333),
                                        abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(feature_lo=1.0, feature_hi=0.0)
        with pytest.raises(ValueError):
            self.make(v_lo=4.0, v_hi=0.0)


class TestScaleParams:
    def test_thresholds_translated(self):
        scaler = FeatureScaler(0.0, 100.0, 0.0, 4.0)
        scaled = scale_params(prog_pcam(10, 20, 60, 80), scaler)
        assert scaled.m1 == pytest.approx(0.4)
        assert scaled.m2 == pytest.approx(0.8)
        assert scaled.m3 == pytest.approx(2.4)
        assert scaled.m4 == pytest.approx(3.2)

    def test_response_preserved_at_corresponding_points(self):
        scaler = FeatureScaler(0.0, 100.0, 0.0, 4.0)
        feature_params = prog_pcam(10, 20, 60, 80)
        voltage_params = scale_params(feature_params, scaler)
        feature_cell = PCAMCell(feature_params)
        voltage_cell = PCAMCell(voltage_params)
        for feature in (5.0, 15.0, 40.0, 70.0, 90.0):
            assert voltage_cell.response(
                scaler.to_voltage(feature)) == pytest.approx(
                    feature_cell.response(feature), abs=1e-9)

    def test_slopes_rescaled_by_gain(self):
        scaler = FeatureScaler(0.0, 100.0, 0.0, 4.0)
        base = prog_pcam(10, 20, 60, 80)
        scaled = scale_params(base, scaler)
        assert scaled.sa == pytest.approx(base.sa / scaler.gain)


class TestNoiseBand:
    def test_band_shape_and_positivity(self, rng):
        cell = DevicePCAMCell(
            prog_pcam(1.0, 2.0, 2.5, 3.5),
            variability=VariabilityModel(read_sigma=0.05,
                                         device_sigma=0.0), rng=rng)
        inputs = np.linspace(0.5, 4.0, 7)
        mean, std = noise_band(cell, inputs, trials=6)
        assert mean.shape == std.shape == inputs.shape
        assert np.all(std >= 0.0)
        assert std.max() > 0.0

    def test_trials_validated(self, rng):
        cell = DevicePCAMCell(prog_pcam(1.0, 2.0, 2.5, 3.5), rng=rng)
        with pytest.raises(ValueError):
            noise_band(cell, np.zeros(3), trials=1)


class TestAnalogReadEnergy:
    def test_within_dataset_extremes(self, small_dataset):
        from repro.device.energy import energy_statistics
        stats = energy_statistics(small_dataset)
        energy = analog_read_energy_j(small_dataset)
        assert stats.min_j <= energy <= stats.max_j

    def test_lower_percentile_cheaper(self, small_dataset):
        assert (analog_read_energy_j(small_dataset, percentile=5)
                <= analog_read_energy_j(small_dataset, percentile=60))

    def test_percentile_validated(self, small_dataset):
        with pytest.raises(ValueError):
            analog_read_energy_j(small_dataset, percentile=150)
