"""Retention drift of programmed pCAM cells and the refresh scrub."""

import numpy as np
import pytest

from repro.core.device_cell import DevicePCAMCell
from repro.core.pcam_cell import prog_pcam
from repro.device.variability import VariabilityModel

PARAMS = prog_pcam(m1=1.5, m2=2.4, m3=2.6, m4=3.5)


def drifting_cell(rate=0.001, seed=3):
    return DevicePCAMCell(
        PARAMS,
        variability=VariabilityModel(read_sigma=0.0, device_sigma=0.0,
                                     drift_rate_per_s=rate,
                                     drift_target=0.0),
        rng=np.random.default_rng(seed))


def test_fresh_cell_in_spec():
    cell = drifting_cell()
    assert cell.response(2.5) == pytest.approx(1.0, abs=0.02)
    assert cell.response(1.0) == pytest.approx(0.0, abs=0.02)


def test_drift_degrades_the_match_window():
    cell = drifting_cell(rate=0.002)
    before = cell.response(2.5)
    cell.relax(600.0)  # ten minutes unpowered
    after = cell.response(2.5)
    # Thresholds crept toward the HRS attractor: the stored-policy
    # voltage no longer matches deterministically.
    assert before == pytest.approx(1.0, abs=0.02)
    assert after < before


def test_refresh_restores_the_window():
    cell = drifting_cell(rate=0.002)
    cell.relax(600.0)
    degraded = cell.response(2.5)
    energy = cell.refresh()
    restored = cell.response(2.5)
    assert energy > 0.0
    assert restored == pytest.approx(1.0, abs=0.02)
    assert restored > degraded


def test_short_idle_periods_harmless():
    cell = drifting_cell(rate=0.001)
    cell.relax(1.0)
    assert cell.response(2.5) == pytest.approx(1.0, abs=0.05)


def test_non_volatile_device_never_drifts():
    cell = DevicePCAMCell(
        PARAMS, variability=VariabilityModel.ideal(),
        rng=np.random.default_rng(1))
    baseline = cell.response(2.5)
    cell.relax(1e6)
    assert cell.response(2.5) == pytest.approx(baseline, abs=1e-9)
