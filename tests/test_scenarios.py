"""Behavioural regression tests for the traffic scenario harness.

Tier-1 versions of the matrix gates: each named scenario runs once
(small packet counts, cached per module) through a freshly built
switch, and the assertions pin *behaviour* — AQM drop probability
rising under flood while queue delay stays bounded, flow-cache hit
rate collapsing under churn and recovering after, the degradation
supervisor staying quiet on benign traffic.  The full-size matrix
with published artifacts lives in ``benchmarks/test_scenario_matrix.py``.
"""

import functools

import numpy as np
import pytest

from repro.simnet.scenarios import (
    ScenarioReport,
    default_switch_spec,
    iter_scenarios,
    run_scenario,
    scenario,
    scenario_names,
    traffic_classes_expected,
    traffic_classes_spec,
)
from repro.simnet.workloads import ChunkColumns

#: Small-n sizes calibrated so every behavioural signature already
#: shows (floods need a longer window to build byte backlog).
TIER1_PACKETS = {
    "elephants_mice": 30_000,
    "diurnal": 60_000,
    "flash_crowd": 60_000,
    "syn_flood": 60_000,
    "amplification_flood": 60_000,
    "scan_sweep": 30_000,
    "cache_churn": 30_000,
    "traffic_classes": 20_000,
}


@functools.lru_cache(maxsize=None)
def report(name: str) -> ScenarioReport:
    return run_scenario(name, seed=0, n_packets=TIER1_PACKETS[name])


def drop_series(r: ScenarioReport) -> list[float]:
    return r.window_series("aqm_drop_rate")


class TestRegistry:
    def test_catalogue_covers_required_scenarios(self):
        names = scenario_names()
        assert len(names) >= 6
        for required in ("elephants_mice", "diurnal", "flash_crowd",
                         "syn_flood", "amplification_flood",
                         "scan_sweep", "cache_churn"):
            assert required in names

    def test_every_scenario_documents_invariants(self):
        for entry in iter_scenarios():
            assert entry.description
            assert len(entry.invariants) >= 1
            assert entry.default_packets >= 100_000

    def test_unknown_scenario_names_known_ones(self):
        with pytest.raises(KeyError, match="elephants_mice"):
            scenario("no_such_scenario")

    def test_stream_respects_packet_budget(self):
        entry = scenario("diurnal")
        chunks = list(entry.stream(seed=1, n_packets=10_000,
                                   chunk_size=4096))
        assert [len(c) for c in chunks] == [4096, 4096, 1808]

    def test_stream_memory_is_bounded_by_chunk_size(self):
        entry = scenario("elephants_mice")
        for chunk in entry.stream(seed=1, n_packets=50_000,
                                  chunk_size=2048):
            assert len(chunk) <= 2048
            assert chunk.nbytes < 2048 * 80

    def test_bad_arguments_rejected(self):
        entry = scenario("diurnal")
        with pytest.raises(ValueError):
            list(entry.stream(chunk_size=0))
        with pytest.raises(ValueError):
            entry.columns(0, -1, 10, 100)
        with pytest.raises(ValueError):
            run_scenario("diurnal", n_packets=0)
        with pytest.raises(ValueError):
            run_scenario("diurnal", n_packets=100, n_windows=0)


class TestElephantsMice:
    def test_heavy_tail_carries_most_bytes(self):
        entry = scenario("elephants_mice")
        cols = ChunkColumns.concat(entry.stream(seed=0,
                                                n_packets=30_000))
        flows = np.asarray(cols.flow_ids)
        sizes = np.asarray(cols.sizes_bytes)
        per_flow = np.bincount(flows, weights=sizes)
        ranked = np.sort(per_flow)[::-1]
        top = max(1, int(0.02 * np.count_nonzero(per_flow)))
        share = ranked[:top].sum() / ranked.sum()
        assert share > 0.3

    def test_benign_baseline_rides_through_cleanly(self):
        r = report("elephants_mice")
        assert r.verdict_counts["dropped_aqm"] == 0
        assert r.verdict_counts["dropped_overflow"] == 0
        assert r.degraded_tables == ()
        assert r.fallback_events == 0

    def test_cache_warms_on_the_heavy_tail(self):
        r = report("elephants_mice")
        late = [w.cache_hit_rate for w in r.windows[-5:]]
        assert min(late) > 0.85


class TestDiurnal:
    def test_queue_pressure_follows_the_load_curve(self):
        r = report("diurnal")
        meta = scenario("diurnal").meta
        peak = [w.max_backlog_pkts
                for w in r.windows_in(meta["peak_window"])]
        trough = [w.max_backlog_pkts
                  for w in r.windows_in(meta["trough_window"])]
        assert np.mean(peak) > 1.5 * np.mean(trough)

    def test_no_degradation_and_delay_in_envelope(self):
        r = report("diurnal")
        assert r.degraded_tables == ()
        assert r.fallback_events == 0
        assert r.max_delay_ewma_s < 0.030


class TestFlashCrowd:
    def test_aqm_drop_probability_rises_during_surge(self):
        r = report("flash_crowd")
        window = scenario("flash_crowd").meta["flood_window"]
        surge = [w.aqm_drop_rate for w in r.windows_in(window)]
        before = drop_series(r)[:int(window[0] * len(r.windows))]
        assert max(surge) > 0.2
        assert float(np.mean(surge)) > 0.1
        assert max(before) < 0.01

    def test_queue_delay_stays_bounded_through_surge(self):
        r = report("flash_crowd")
        assert r.max_delay_ewma_s < 0.30
        assert r.verdict_counts["dropped_overflow"] == 0

    def test_recovers_after_surge(self):
        r = report("flash_crowd")
        assert max(drop_series(r)[-3:]) < 0.01
        assert min(w.cache_hit_rate for w in r.windows[-3:]) > 0.85

    def test_benign_surge_never_trips_degradation(self):
        r = report("flash_crowd")
        assert r.degraded_tables == ()
        assert r.fallback_events == 0


class TestSynFlood:
    def test_drop_response_engages_during_flood(self):
        r = report("syn_flood")
        drops = (r.verdict_counts["dropped_aqm"]
                 + r.verdict_counts["dropped_overflow"])
        assert drops > 0.01 * r.n_packets
        assert r.max_pdp > 0.3

    def test_queue_delay_stays_bounded(self):
        r = report("syn_flood")
        assert r.max_delay_ewma_s < 0.10

    def test_spoofed_sources_churn_the_cache(self):
        r = report("syn_flood")
        window = scenario("syn_flood").meta["flood_window"]
        flood = [w.cache_hit_rate for w in r.windows_in(window)]
        # skip the leading transition window: it mixes pre-flood flows
        assert float(np.mean(flood[1:])) < 0.10
        assert min(w.cache_hit_rate for w in r.windows[-3:]) > 0.85


class TestAmplificationFlood:
    def test_aqm_saturates_under_byte_overload(self):
        r = report("amplification_flood")
        window = scenario("amplification_flood").meta["flood_window"]
        flood = [w.aqm_drop_rate for w in r.windows_in(window)]
        assert float(np.mean(flood)) > 0.3
        assert r.max_pdp > 0.9

    def test_queue_delay_stays_bounded(self):
        r = report("amplification_flood")
        assert r.max_delay_ewma_s < 0.50
        assert max(drop_series(r)[-2:]) < 0.05


class TestScanSweep:
    def test_probes_die_as_no_route_drops(self):
        r = report("scan_sweep")
        share = r.verdict_counts["dropped_no_route"] / r.n_packets
        assert share > scenario("scan_sweep").meta["min_no_route_share"]

    def test_unique_probes_defeat_the_flow_cache(self):
        r = report("scan_sweep")
        assert r.cache_hit_rate < 0.2

    def test_scan_is_benign_to_aqm_and_supervisor(self):
        r = report("scan_sweep")
        assert r.verdict_counts["dropped_aqm"] == 0
        assert r.degraded_tables == ()
        assert r.fallback_events == 0


class TestCacheChurn:
    def test_hit_rate_collapses_under_churn_and_recovers(self):
        r = report("cache_churn")
        window = scenario("cache_churn").meta["churn_window"]
        churn = [w.cache_hit_rate for w in r.windows_in(window)]
        warm = [w.cache_hit_rate for w in r.windows[1:5]]
        after = [w.cache_hit_rate for w in r.windows[-4:]]
        assert max(churn) < 0.05
        assert min(warm) > 0.9
        assert min(after) > 0.9

    def test_churn_never_causes_drops(self):
        r = report("cache_churn")
        assert r.verdict_counts == {
            "queued": r.n_packets, "dropped_parse": 0,
            "dropped_acl": 0, "dropped_no_route": 0,
            "dropped_aqm": 0, "dropped_overflow": 0}


@functools.lru_cache(maxsize=None)
def classified_report() -> ScenarioReport:
    return run_scenario("traffic_classes", seed=0,
                        n_packets=TIER1_PACKETS["traffic_classes"],
                        spec=traffic_classes_spec(),
                        collect_results=True)


class TestTrafficClasses:
    def test_classifier_steers_every_class_to_its_port(self):
        r = classified_report()
        expected = traffic_classes_expected(np.arange(r.n_packets))
        queued = 0
        for index, (verdict, port) in enumerate(zip(r.verdicts,
                                                    r.ports)):
            if verdict == "queued":
                assert port == expected[index]
                queued += 1
        assert queued == r.n_packets

    def test_all_three_ports_carry_traffic(self):
        r = classified_report()
        counts = np.bincount([p for p in r.ports if p is not None],
                             minlength=3)
        # interleaved classes: an even three-way split
        assert counts.min() > 0.3 * r.n_packets

    def test_steering_never_trips_degradation(self):
        r = classified_report()
        assert r.degraded_tables == ()
        assert r.fallback_events == 0
        assert r.verdict_counts["dropped_aqm"] == 0
        assert r.verdict_counts["dropped_overflow"] == 0

    def test_classifier_energy_lands_in_the_breakdown(self):
        r = classified_report()
        assert r.energy_breakdown.get("acam.search", 0.0) > 0.0

    def test_without_classifier_ports_follow_routing_not_class(self):
        r = run_scenario("traffic_classes", seed=0, n_packets=3000,
                         spec=default_switch_spec(),
                         collect_results=True)
        expected = traffic_classes_expected(np.arange(r.n_packets))
        steered = sum(1 for i, p in enumerate(r.ports)
                      if p == expected[i])
        # destination-hash routing only agrees by chance (~1/3)
        assert steered < 0.6 * r.n_packets


class TestRunner:
    def test_observability_snapshot_lands_in_report(self):
        r = run_scenario("elephants_mice", seed=3, n_packets=4000,
                         observe=True)
        assert r.metrics is not None
        assert isinstance(r.metrics, dict)

    def test_collect_results_keeps_per_packet_sequences(self):
        r = run_scenario("scan_sweep", seed=3, n_packets=4000,
                         collect_results=True)
        assert len(r.verdicts) == 4000
        assert len(r.ports) == 4000
        assert "dropped_no_route" in r.verdicts

    def test_report_serialises_to_json(self):
        import json
        r = report("cache_churn")
        payload = json.loads(json.dumps(r.to_json()))
        assert payload["scenario"] == "cache_churn"
        assert len(payload["windows"]) == len(r.windows)
        assert payload["energy_total_j"] > 0

    def test_windows_partition_the_stream(self):
        r = report("diurnal")
        assert sum(w.offered for w in r.windows) == r.n_packets
        assert [w.index for w in r.windows] == list(range(len(r.windows)))

    def test_custom_spec_is_honoured(self):
        spec = default_switch_spec(flow_cache_size=8,
                                   supervised=False,
                                   graceful_degradation=False)
        r = run_scenario("cache_churn", seed=0, n_packets=4000,
                         spec=spec)
        assert r.degraded_tables == ()
        # an 8-entry cache cannot hold the 64 warm flows
        assert r.cache_hit_rate < 0.5
