"""Unit-conversion helpers."""

import pytest

from repro.energy import units


def test_femtojoule_round_trip():
    assert units.joules_to_femtojoules(units.femtojoules(0.58)) == \
        pytest.approx(0.58)


def test_nanojoule_round_trip():
    assert units.joules_to_nanojoules(units.nanojoules(0.16)) == \
        pytest.approx(0.16)


def test_nanosecond_round_trip():
    assert units.seconds_to_nanoseconds(units.nanoseconds(2.3)) == \
        pytest.approx(2.3)


def test_millisecond_round_trip():
    assert units.seconds_to_milliseconds(units.milliseconds(20.0)) == \
        pytest.approx(20.0)


def test_paper_anchor_energies_in_si():
    # The two headline figures of Sec. 6.
    assert units.femtojoules(0.01) == pytest.approx(1e-17)
    assert units.nanojoules(0.16) == pytest.approx(1.6e-10)


def test_format_energy_picks_prefixes():
    assert units.format_energy(1e-17) == "0.010 fJ"
    assert units.format_energy(1.6e-10) == "0.160 nJ"
    assert units.format_energy(0.0) == "0 J"
    assert units.format_energy(2.5) == "2.500 J"


def test_format_energy_negative_values():
    assert units.format_energy(-1.6e-10) == "-0.160 nJ"


def test_format_energy_below_atto():
    text = units.format_energy(1e-21)
    assert "aJ" in text
