"""The Figure 8 shape must not hinge on one lucky seed."""

import numpy as np
import pytest

from repro.netfunc.aqm.base import TailDropAQM
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.simnet.topology import DumbbellExperiment, overload_profile


@pytest.mark.slow
@pytest.mark.parametrize("seed", [3, 17, 99])
def test_figure8_shape_holds_across_seeds(seed):
    experiment = DumbbellExperiment(
        n_flows=6, load=0.9, service_rate_bps=40e6,
        capacity_packets=1500, duration_s=5.0,
        rate_fn=overload_profile(1.0, 4.0, 1.6), seed=seed)
    managed = experiment.run(
        PCAMAQM(rng=np.random.default_rng(seed + 1))
    ).recorder.summary()
    unmanaged = experiment.run(TailDropAQM()).recorder.summary()
    # The qualitative Figure 8 result on every seed: unmanaged delay
    # explodes, managed stays near the programmed band.
    assert unmanaged.mean_delay_s > 0.08, seed
    assert managed.mean_delay_s < 0.03, seed
    assert managed.p95_delay_s < 0.04, seed


@pytest.mark.slow
def test_energy_headline_holds_across_dataset_seeds():
    from repro.device.dataset import generate_dataset
    from repro.device.energy import energy_statistics

    for seed in (1, 7, 42):
        dataset = generate_dataset(n_states=24, n_voltages=49,
                                   include_sweeps=False,
                                   include_pulse_trains=False,
                                   seed=seed)
        stats = energy_statistics(dataset)
        assert stats.improvement_over_digital() >= 50.0, seed
        assert stats.min_fj == pytest.approx(0.01, rel=0.2), seed
