"""Longest-prefix-match IP lookup."""

import pytest

from repro.netfunc.lookup import IPLookup, Route
from repro.tcam.mtcam import MemristorTCAM


def make_table() -> IPLookup:
    table = IPLookup()
    table.add_route("0.0.0.0/0", "default_gw")
    table.add_route("10.0.0.0/8", "core")
    table.add_route("10.1.0.0/16", "edge")
    table.add_route("10.1.2.0/24", "rack")
    return table


def test_longest_prefix_wins():
    table = make_table()
    assert table.lookup("10.1.2.3") == "rack"
    assert table.lookup("10.1.9.9") == "edge"
    assert table.lookup("10.200.0.1") == "core"
    assert table.lookup("8.8.8.8") == "default_gw"


def test_insertion_order_irrelevant():
    table = IPLookup()
    table.add_route("10.1.2.0/24", "rack")
    table.add_route("10.0.0.0/8", "core")
    assert table.lookup("10.1.2.3") == "rack"


def test_miss_without_default_route():
    table = IPLookup()
    table.add_route("10.0.0.0/8", "core")
    assert table.lookup("192.168.1.1") is None


def test_host_route():
    table = make_table()
    table.add_route("10.1.2.3/32", "host")
    assert table.lookup("10.1.2.3") == "host"
    assert table.lookup("10.1.2.4") == "rack"


def test_route_count_and_records():
    table = make_table()
    assert len(table) == 4
    assert Route("10.0.0.0/8", "core") in table.routes


def test_ipv6_rejected():
    with pytest.raises(ValueError):
        IPLookup().add_route("2001:db8::/32", "v6")


def test_bad_prefix_rejected():
    with pytest.raises(ValueError):
        IPLookup().add_route("not-a-prefix", "x")


def test_lookup_charges_energy():
    table = make_table()
    table.lookup("10.1.2.3")
    assert table.ledger.total > 0.0


def test_memristor_backed_lookup_agrees():
    transistor = make_table()
    memristor = IPLookup(tcam=MemristorTCAM(IPLookup.WIDTH))
    for route in transistor.routes:
        memristor.add_route(route.prefix, route.next_hop)
    for address in ("10.1.2.3", "10.1.9.9", "10.200.0.1", "8.8.8.8"):
        assert memristor.lookup(address) == transistor.lookup(address)
