"""Toeplitz RSS front end: correctness, symmetry, determinism."""

import ipaddress

import numpy as np
import pytest

from repro.fabric import SYMMETRIC_RSS_KEY, ToeplitzRSS

#: The Microsoft/NDIS verification key (not symmetric).
MS_KEY = bytes.fromhex(
    "6d5a56da255b0ec24167253d43a38fb0"
    "d0ca2bcbae7b30b477cb2da38030f20c"
    "6a42b73bbeac01fa")

#: Published IPv4+TCP verification vectors for MS_KEY
#: (src, sport, dst, dport, hash).
MS_VECTORS = [
    ("66.9.149.187", 2794, "161.142.100.80", 1766, 0x51CCC178),
    ("199.92.111.2", 14230, "65.69.140.83", 4739, 0xC626B0EA),
]


def ip(dotted: str) -> int:
    return int(ipaddress.ip_address(dotted))


def reference_hash(key: bytes, src: int, dst: int,
                   sport: int, dport: int) -> int:
    """The per-bit sliding-window Toeplitz definition, bit by bit."""
    data = (src.to_bytes(4, "big") + dst.to_bytes(4, "big")
            + sport.to_bytes(2, "big") + dport.to_bytes(2, "big"))
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    result = 0
    for bit_index in range(len(data) * 8):
        byte = data[bit_index // 8]
        if (byte >> (7 - bit_index % 8)) & 1:
            result ^= (key_int >> (key_bits - 32 - bit_index)) \
                & 0xFFFFFFFF
    return result


def test_matches_published_verification_vectors():
    rss = ToeplitzRSS(1, key=MS_KEY)
    for src, sport, dst, dport, expected in MS_VECTORS:
        assert rss.hash_tuple(ip(src), ip(dst), sport, dport) == expected


def test_table_lookup_equals_per_bit_definition():
    rss = ToeplitzRSS(4)
    rng = np.random.default_rng(9)
    for _ in range(50):
        src, dst = (int(v) for v in rng.integers(0, 2 ** 32, 2))
        sport, dport = (int(v) for v in rng.integers(0, 2 ** 16, 2))
        assert rss.hash_tuple(src, dst, sport, dport) == reference_hash(
            SYMMETRIC_RSS_KEY, src, dst, sport, dport)


def test_symmetric_key_is_direction_invariant():
    rss = ToeplitzRSS(8)
    rng = np.random.default_rng(4)
    for _ in range(50):
        src, dst = (int(v) for v in rng.integers(0, 2 ** 32, 2))
        sport, dport = (int(v) for v in rng.integers(0, 2 ** 16, 2))
        forward = rss.shard_of_tuple(src, dst, sport, dport)
        reverse = rss.shard_of_tuple(dst, src, dport, sport)
        assert forward == reverse


def test_ms_key_is_not_direction_invariant():
    # Sanity check that symmetry is a property of the key, not a bug
    # that collapses the hash: the NDIS key must distinguish
    # directions for at least some tuples.
    rss = ToeplitzRSS(1, key=MS_KEY)
    rng = np.random.default_rng(2)
    diffs = 0
    for _ in range(50):
        src, dst = (int(v) for v in rng.integers(0, 2 ** 32, 2))
        sport, dport = (int(v) for v in rng.integers(0, 2 ** 16, 2))
        if rss.hash_tuple(src, dst, sport, dport) \
                != rss.hash_tuple(dst, src, dport, sport):
            diffs += 1
    assert diffs > 0


def test_columns_equal_scalar_path():
    rss = ToeplitzRSS(4)
    rng = np.random.default_rng(11)
    src = rng.integers(0, 2 ** 32, 200, dtype=np.uint64)
    dst = rng.integers(0, 2 ** 32, 200, dtype=np.uint64)
    sport = rng.integers(0, 2 ** 16, 200, dtype=np.uint64)
    dport = rng.integers(0, 2 ** 16, 200, dtype=np.uint64)
    hashes = rss.hash_columns(src, dst, sport, dport)
    shards = rss.shard_of_columns(src, dst, sport, dport)
    for i in range(200):
        assert int(hashes[i]) == rss.hash_tuple(
            int(src[i]), int(dst[i]), int(sport[i]), int(dport[i]))
        assert int(shards[i]) == rss.shard_of_tuple(
            int(src[i]), int(dst[i]), int(sport[i]), int(dport[i]))


def test_shards_cover_range_and_balance_roughly():
    rss = ToeplitzRSS(4)
    rng = np.random.default_rng(3)
    shards = rss.shard_of_columns(
        rng.integers(0, 2 ** 32, 4000, dtype=np.uint64),
        rng.integers(0, 2 ** 32, 4000, dtype=np.uint64),
        rng.integers(0, 2 ** 16, 4000, dtype=np.uint64),
        rng.integers(0, 2 ** 16, 4000, dtype=np.uint64))
    counts = np.bincount(shards, minlength=4)
    assert set(np.unique(shards)) == {0, 1, 2, 3}
    # Random tuples across a 128-entry round-robin indirection table
    # should land within a loose 2x band of perfect balance.
    assert counts.min() > 4000 / 4 / 2
    assert counts.max() < 4000 / 4 * 2


def test_same_flow_always_lands_on_same_shard():
    rss = ToeplitzRSS(4)
    first = rss.shard_of_tuple(ip("10.0.0.1"), ip("192.168.1.1"),
                               1234, 80)
    for _ in range(5):
        assert rss.shard_of_tuple(ip("10.0.0.1"), ip("192.168.1.1"),
                                  1234, 80) == first


def test_rejects_bad_construction():
    with pytest.raises(ValueError):
        ToeplitzRSS(0)
    with pytest.raises(ValueError):
        ToeplitzRSS(2, key=b"short")
    with pytest.raises(ValueError):
        ToeplitzRSS(4, indirection_size=2)


def test_indirection_table_round_robins_all_shards():
    rss = ToeplitzRSS(5, indirection_size=128)
    assert set(rss.indirection.tolist()) == {0, 1, 2, 3, 4}
