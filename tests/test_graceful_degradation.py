"""Graceful degradation: shadow checks, fallback flip, retry backoff.

Covers the satellite requirement directly: a stuck-at fault above
threshold must flip the table to the digital (CoDel) path and the
fallback event must land in telemetry — plus the retry/backoff and
recovery choreography around it, both self-driven and driven by the
cognitive controller's tick.
"""

import numpy as np
import pytest

from repro.control import CognitiveNetworkController
from repro.dataplane.telemetry import TelemetryCollector
from repro.dataplane.traffic_manager import CognitiveTrafficManager
from repro.netfunc.aqm.codel import CoDelAqm
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.packet import Packet
from repro.robustness.degradation import DegradingAQM, ShadowOracle
from repro.robustness.injector import FaultInjector
from repro.robustness.models import ConductanceDrift, StuckAtFault


def make_degrader(**kwargs):
    aqm = PCAMAQM(adaptation=False, rng=np.random.default_rng(0))
    telemetry = TelemetryCollector()
    kwargs.setdefault("pdp_envelope", 0.05)
    kwargs.setdefault("check_interval", 1)
    kwargs.setdefault("trip_after", 1)
    kwargs.setdefault("backoff_initial_s", 1.0)
    kwargs.setdefault("backoff_max_s", 8.0)
    degrader = DegradingAQM(aqm, telemetry=telemetry, **kwargs)
    return aqm, degrader, telemetry


def inject(aqm, model, seed=1):
    FaultInjector(model, rng=np.random.default_rng(seed)).inject_aqm(aqm)


def evaluate(aqm, n=2):
    """One pipeline pass (fires the shadow monitor) at mid-band delay."""
    features = {}
    for name in aqm.pipeline.stage_names:
        # Zeroth-order stages mid-ramp, derivative stages at rest.
        value = (aqm.target_delay_s
                 if name in ("sojourn_time", "buffer_size") else 0.0)
        features[name] = np.full(n, value)
    return aqm.drop_probabilities(features)


# ----------------------------------------------------------------------
# Shadow oracle
# ----------------------------------------------------------------------
class TestShadowOracle:
    def test_matches_clean_pipeline_exactly(self):
        aqm = PCAMAQM(adaptation=False)
        shadow = ShadowOracle(aqm.pipeline)
        batch = {name: np.linspace(-1.5, 3.5, 16)
                 for name in aqm.pipeline.stage_names}
        np.testing.assert_array_equal(
            shadow.evaluate(batch), aqm.pipeline.evaluate_batch(batch))
        assert shadow.deviation(batch,
                                aqm.pipeline.evaluate_batch(batch)) == 0.0
        assert shadow.checks == 2

    def test_sees_through_injected_faults(self):
        aqm = PCAMAQM(adaptation=False)
        shadow = ShadowOracle(aqm.pipeline)
        batch = {name: np.full(4, 0.5)
                 for name in aqm.pipeline.stage_names}
        clean = shadow.evaluate(batch)
        inject(aqm, StuckAtFault(state="lrs"))
        np.testing.assert_array_equal(shadow.evaluate(batch), clean)

    def test_tracks_reprogrammed_intent(self):
        aqm = PCAMAQM(adaptation=False)
        shadow = ShadowOracle(aqm.pipeline)
        batch = {name: np.full(4, -1.2)  # on the delay-stage ramp
                 for name in aqm.pipeline.stage_names}
        before = shadow.evaluate(batch)
        # A genuine intent change, not a fault (band shape changes).
        aqm.retarget(0.040, max_deviation_s=0.005)
        after = shadow.evaluate(batch)
        assert not np.array_equal(before, after)
        np.testing.assert_array_equal(after,
                                      aqm.pipeline.evaluate_batch(batch))


# ----------------------------------------------------------------------
# Fallback flip
# ----------------------------------------------------------------------
class TestFallbackFlip:
    def test_stuck_fault_flips_to_codel_and_telemetry_records_it(self):
        aqm, degrader, telemetry = make_degrader()
        inject(aqm, StuckAtFault(state="lrs"))
        assert degrader.mode == "analog"
        evaluate(aqm)
        assert degrader.degraded
        assert degrader.mode == "fallback"
        assert isinstance(degrader.fallback, CoDelAqm)
        assert degrader.fallback_events == 1
        assert telemetry.event_count("pcam_aqm.fallback_engaged") == 1
        assert telemetry.gauge("pcam_aqm.degraded") == 1.0
        assert telemetry.gauge("pcam_aqm.shadow_deviation") \
            == degrader.last_deviation > 0.05

    def test_degraded_table_serves_from_digital_path(self):
        aqm, degrader, _ = make_degrader()
        inject(aqm, StuckAtFault(state="lrs"))
        evaluate(aqm)
        manager = CognitiveTrafficManager(
            1, aqm_factory=lambda: degrader, port_rate_bps=1e7)
        assert manager.degraded_ports == (0,)
        searches_before = aqm.evaluations
        packets = [Packet(created_at=0.0) for _ in range(32)]
        manager.enqueue_batch(0, packets, now=0.0)
        # The analog pipeline was never consulted while degraded.
        assert aqm.evaluations == searches_before

    def test_healthy_table_never_trips(self):
        aqm, degrader, telemetry = make_degrader()
        for _ in range(10):
            evaluate(aqm)
        assert not degrader.degraded
        assert degrader.fallback_events == 0
        assert telemetry.event_count("pcam_aqm.fallback_engaged") == 0
        assert telemetry.gauge("pcam_aqm.degraded") == 0.0

    def test_trip_requires_consecutive_violations(self):
        aqm, degrader, _ = make_degrader(trip_after=3)
        inject(aqm, StuckAtFault(state="lrs"))
        evaluate(aqm)
        evaluate(aqm)
        assert not degrader.degraded
        evaluate(aqm)
        assert degrader.degraded

    def test_constructor_validation(self):
        aqm = PCAMAQM(adaptation=False)
        with pytest.raises(ValueError):
            DegradingAQM(aqm, pdp_envelope=0.0)
        with pytest.raises(ValueError):
            DegradingAQM(aqm, check_interval=0)
        with pytest.raises(ValueError):
            DegradingAQM(aqm, trip_after=0)
        with pytest.raises(ValueError):
            DegradingAQM(aqm, backoff_initial_s=2.0, backoff_max_s=1.0)


# ----------------------------------------------------------------------
# Retry / reprogram backoff and recovery
# ----------------------------------------------------------------------
class TestRetryAndRecovery:
    def test_retry_honours_backoff_window(self):
        aqm, degrader, telemetry = make_degrader()
        inject(aqm, StuckAtFault(state="lrs"))
        degrader.on_enqueue_batch([Packet()], _IdleView(), now=10.0)
        evaluate(aqm)  # trips at _now = 10.0
        assert degrader.next_retry_s == pytest.approx(11.0)
        assert not degrader.maybe_retry(now=10.5)
        assert degrader.maybe_retry(now=11.0)
        assert degrader.retries == 1
        assert telemetry.event_count("pcam_aqm.retry") == 1

    def test_persistent_fault_doubles_backoff(self):
        aqm, degrader, _ = make_degrader()
        inject(aqm, StuckAtFault(state="lrs"))
        degrader.on_enqueue_batch([Packet()], _IdleView(), now=0.0)
        evaluate(aqm)
        degrader.maybe_retry(now=1.0)
        assert not degrader.degraded
        evaluate(aqm)  # stuck cell trips again immediately
        assert degrader.degraded
        # Second trip schedules with the doubled backoff.
        assert degrader.next_retry_s == pytest.approx(0.0 + 2.0)
        assert aqm.ledger.account("pcam_aqm.reprogram") > 0.0

    def test_transient_fault_recovers_after_scrub(self):
        aqm, degrader, telemetry = make_degrader(recover_after=1)
        inject(aqm, ConductanceDrift(bias=5.0, scale=0.0))
        degrader.on_enqueue_batch([Packet()], _IdleView(), now=0.0)
        evaluate(aqm)
        assert degrader.degraded
        assert degrader.maybe_retry(now=2.0)  # reprogram scrubs drift
        evaluate(aqm)  # clean check while on probation
        assert not degrader.degraded
        assert degrader.recoveries == 1
        assert telemetry.event_count("pcam_aqm.recovered") == 1
        # Recovery reset the backoff for any future episode.
        assert degrader.next_retry_s is None

    def test_reset_restores_analog_service(self):
        aqm, degrader, _ = make_degrader()
        inject(aqm, StuckAtFault(state="lrs"))
        evaluate(aqm)
        assert degrader.degraded
        degrader.reset()
        assert degrader.mode == "analog"
        assert degrader.fallback_events == 0


# ----------------------------------------------------------------------
# Controller-driven supervision
# ----------------------------------------------------------------------
class TestControllerSupervision:
    def test_tick_drives_retry_and_counts_reprograms(self):
        aqm, degrader, _ = make_degrader()
        controller = CognitiveNetworkController()
        controller.supervise("port0.aqm", degrader)
        assert controller.supervised == ("port0.aqm",)
        inject(aqm, StuckAtFault(state="lrs"))
        degrader.on_enqueue_batch([Packet()], _IdleView(), now=0.0)
        evaluate(aqm)
        assert controller.degraded_tables() == ("port0.aqm",)
        assert controller.tick(now=0.5) == ()  # backoff not elapsed
        assert controller.tick(now=1.5) == ("port0.aqm",)
        assert controller.reprogram_events == 1
        assert controller.degraded_tables() == ()

    def test_duplicate_supervision_rejected(self):
        _, degrader, _ = make_degrader()
        controller = CognitiveNetworkController()
        controller.supervise("t", degrader)
        with pytest.raises(ValueError):
            controller.supervise("t", degrader)


# ----------------------------------------------------------------------
# End-to-end through the traffic manager
# ----------------------------------------------------------------------
class TestTrafficManagerIntegration:
    def test_congestion_with_stuck_cells_triggers_fallback(self):
        """The acceptance-criterion path: an injected stuck-cell fault
        demonstrably flips a congested port to the digital path."""
        aqm, degrader, telemetry = make_degrader(check_interval=2,
                                                 trip_after=2)
        inject(aqm, StuckAtFault(state="lrs"))
        manager = CognitiveTrafficManager(
            1, aqm_factory=lambda: degrader, queue_capacity=512,
            port_rate_bps=1e7, telemetry=telemetry)
        rng = np.random.default_rng(4)
        now = 0.0
        for _ in range(32):
            packets = [Packet(priority=int(rng.integers(2)),
                              created_at=now) for _ in range(16)]
            manager.enqueue_batch(0, packets, now)
            for _ in range(8):
                manager.dequeue(0, now)
            now += 0.005
        assert degrader.degraded or degrader.fallback_events > 0
        assert telemetry.event_count("pcam_aqm.fallback_engaged") >= 1
        assert telemetry.event_count("port0.queued") > 0
        assert manager.stats[0].enqueued > 0

    def test_shared_telemetry_wired_into_capable_aqms(self):
        _, degrader, _ = make_degrader()
        degrader.telemetry = None
        shared = TelemetryCollector()
        manager = CognitiveTrafficManager(
            1, aqm_factory=lambda: degrader, telemetry=shared)
        assert manager.aqm(0).telemetry is shared


class _IdleView:
    """Minimal QueueView: an empty, fast port (no AQM pressure)."""

    backlog_packets = 0
    backlog_bytes = 0
    capacity_packets = 1024
    service_rate_bps = 10e9
    last_sojourn_s = 0.0
