"""Integration tests across the extension subsystems."""

import numpy as np
import pytest

from repro.core.dsl import parse_table
from repro.dataplane.buffer_sharing import ABMPolicy, BufferPool
from repro.dataplane.pipeline import AnalogPacketProcessor, Verdict
from repro.netfunc.decision_tree import AnalogDecisionTree, CARTTree
from repro.netfunc.load_balancer import Backend, PCAMLoadBalancer
from repro.packet import Packet


class TestClassifierDrivenLoadBalancing:
    """An analog decision tree steers flows to per-class backends."""

    def test_tree_class_selects_backend_pool(self, rng):
        interactive = rng.normal([0.3, 0.3], 0.05, size=(100, 2))
        bulk = rng.normal([1.2, 1.6], 0.1, size=(100, 2))
        features = np.vstack([interactive, bulk])
        labels = np.array([0] * 100 + [1] * 100)
        tree = CARTTree(max_depth=3).fit(features, labels)
        classifier = AnalogDecisionTree(
            tree, feature_names=("size", "rate"),
            feature_ranges=[(0.0, 2.0), (0.0, 2.5)])

        balancers = {
            0: PCAMLoadBalancer([Backend("fast-a"), Backend("fast-b")],
                                rng=np.random.default_rng(1)),
            1: PCAMLoadBalancer([Backend("bulk-a"), Backend("bulk-b")],
                                rng=np.random.default_rng(2)),
        }
        assignments = {0: 0, 1: 0}
        for row in features[::4]:
            klass, _ = classifier.classify(
                {"size": float(row[0]), "rate": float(row[1])})
            balancers[klass].pick()
            assignments[klass] += 1
        assert assignments[0] > 0 and assignments[1] > 0
        # Both pools served traffic for their class only.
        assert sum(b.served for b in balancers[0].backends) == \
            assignments[0]
        assert sum(b.served for b in balancers[1].backends) == \
            assignments[1]


class TestDslDrivenPipelineAQM:
    """A text-programmed AQM installed into the Figure 5 switch."""

    def test_parsed_pipeline_runs_in_processor(self):
        text = """table analogAQM { output { pipeline {
            pCAM(sojourn_time: 0.00001, 0.0001, 0.16, 0.19) } } }"""
        table = parse_table(text)

        from repro.netfunc.aqm.base import AQMAlgorithm

        class TableAQM(AQMAlgorithm):
            name = "dsl-aqm"

            def __init__(self) -> None:
                self._rng = np.random.default_rng(0)

            def on_enqueue(self, packet, queue, now):
                if queue.backlog_packets <= 2:
                    return False
                delay = (8.0 * queue.backlog_bytes
                         / queue.service_rate_bps)
                output = table.process(
                    {"sojourn_time": min(delay, 0.16)}).output
                return bool(self._rng.random() < output)

        processor = AnalogPacketProcessor(
            n_ports=1, aqm_factory=TableAQM, port_rate_bps=1e5)
        processor.add_route("10.0.0.0/8", port=0)
        drops = 0
        for index in range(300):
            packet = Packet(fields={"src_ip": "10.0.0.1",
                                    "dst_ip": "10.0.0.2",
                                    "protocol": 17})
            result = processor.process(packet, now=index * 1e-4)
            drops += result.verdict is Verdict.DROPPED_AQM
        assert drops > 0
        # Telemetry saw the drops too.
        assert processor.telemetry.event_count("aqm_drop") == drops


class TestSharedBufferWithQueues:
    """ABM admission guarding the switch's synchronous queues."""

    def test_low_priority_hog_cannot_starve_high(self):
        pool = BufferPool(capacity_bytes=20_000)
        pool.register("hi", priority=0)
        pool.register("lo", priority=2)
        policy = ABMPolicy(pool)

        # A low-priority burst fills what it may...
        admitted_lo = 0
        while policy.admits("lo", Packet(size_bytes=500)):
            admitted_lo += 1
        # ...and a high-priority burst still finds room.
        admitted_hi = 0
        while policy.admits("hi", Packet(size_bytes=500)):
            admitted_hi += 1
        assert admitted_hi > 0
        assert admitted_hi * 500 > pool.occupancy("lo") * 0.5

    def test_draining_restores_admission(self):
        pool = BufferPool(capacity_bytes=5_000)
        pool.register("q", priority=0)
        policy = ABMPolicy(pool)
        sizes = []
        while policy.admits("q", Packet(size_bytes=500)):
            sizes.append(500)
        assert not policy.admits("q", Packet(size_bytes=500))
        pool.release("q", sum(sizes))
        assert policy.admits("q", Packet(size_bytes=500))
