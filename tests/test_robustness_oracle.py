"""The differential oracle: identity sanity, envelopes, leg separation.

The central property (hypothesis-checked): with **no fault injected**
the oracle must report exactly zero deviation for any valid pipeline
programming and any probe seed — the three legs are then the same
computation, so this pins the oracle's plumbing itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pcam_cell import PCAMParams
from repro.core.pcam_pipeline import COMPOSITIONS, PCAMPipeline
from repro.robustness.injector import FaultInjector
from repro.robustness.models import StuckAtFault, TransientReadNoise
from repro.robustness.oracle import (
    DegradationEnvelope,
    DeviationReport,
    DifferentialOracle,
    EnvelopeViolation,
)


@st.composite
def canonical_params(draw):
    m1 = draw(st.floats(-5.0, 5.0, allow_nan=False))
    gaps = [draw(st.floats(0.01, 3.0)) for _ in range(3)]
    return PCAMParams.canonical(m1, m1 + gaps[0], m1 + gaps[0] + gaps[1],
                                m1 + sum(gaps))


def make_pipeline(composition="product"):
    return PCAMPipeline.from_params(
        {"a": PCAMParams.canonical(0.0, 1.0, 2.0, 3.0),
         "b": PCAMParams.canonical(-1.0, 0.0, 1.0, 2.0)},
        composition=composition)


# ----------------------------------------------------------------------
# Identity sanity (hypothesis): fault-free => exactly zero deviation
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(data=st.data(), seed=st.integers(0, 2**32 - 1),
       composition=st.sampled_from(sorted(COMPOSITIONS)))
def test_fault_free_pipeline_reports_zero_deviation(data, seed,
                                                    composition):
    params = {name: data.draw(canonical_params()) for name in ("a", "b")}
    pipeline = PCAMPipeline.from_params(params, composition=composition)
    oracle = DifferentialOracle.from_intended(pipeline)
    probes = oracle.probe_grid(32, np.random.default_rng(seed))
    report = oracle.compare(pipeline, probes)
    assert report.n_probes == 32
    assert report.mean_abs_error == 0.0
    assert report.bias == 0.0
    assert report.max_abs_error == 0.0
    assert report.rmse == 0.0
    assert report.scalar_batch_max_diff <= 1e-9
    assert report.within(DegradationEnvelope())
    assert report.violations(DegradationEnvelope()) == []


# ----------------------------------------------------------------------
# Envelope mechanics
# ----------------------------------------------------------------------
def test_stuck_fault_breaks_envelope_and_check_raises():
    pipeline = make_pipeline()
    oracle = DifferentialOracle.from_intended(
        pipeline, DegradationEnvelope(max_mean_abs_error=0.01,
                                      max_abs_bias=0.01))
    probes = oracle.probe_grid(64, np.random.default_rng(0))
    FaultInjector(StuckAtFault(state="lrs"),
                  rng=np.random.default_rng(1)).inject_pipeline(pipeline)
    report = oracle.compare(pipeline, probes)
    assert report.mean_abs_error > 0.01
    assert not report.within(oracle.envelope)
    with pytest.raises(EnvelopeViolation) as excinfo:
        oracle.check(pipeline, probes)
    assert excinfo.value.report == report
    assert excinfo.value.violations
    assert "mean abs error" in str(excinfo.value)


def test_violation_is_an_assertion_error():
    # So plain pytest machinery treats envelope breaks as failures.
    assert issubclass(EnvelopeViolation, AssertionError)


def test_envelope_bounds_validated():
    with pytest.raises(ValueError):
        DegradationEnvelope(max_abs_bias=-0.1)


def test_report_violation_strings_name_each_bound():
    report = DeviationReport(n_probes=4, mean_abs_error=0.5, bias=-0.4,
                             max_abs_error=0.9, rmse=0.6,
                             scalar_batch_max_diff=0.0)
    envelope = DegradationEnvelope(max_mean_abs_error=0.1,
                                   max_abs_bias=0.1, max_abs_error=0.5)
    violations = report.violations(envelope)
    assert len(violations) == 3


# ----------------------------------------------------------------------
# Reference construction and probe grids
# ----------------------------------------------------------------------
def test_from_intended_ignores_injected_faults():
    pipeline = make_pipeline()
    clean = DifferentialOracle.from_intended(pipeline)
    FaultInjector(StuckAtFault(state="lrs"),
                  rng=np.random.default_rng(2)).inject_pipeline(pipeline)
    after = DifferentialOracle.from_intended(pipeline)
    probes = clean.probe_grid(32, np.random.default_rng(3))
    np.testing.assert_array_equal(
        clean.reference.evaluate_batch(probes),
        after.reference.evaluate_batch(probes))


def test_probe_grid_is_seeded_and_covers_active_region():
    oracle = DifferentialOracle.from_intended(make_pipeline())
    a = oracle.probe_grid(128, np.random.default_rng(5))
    b = oracle.probe_grid(128, np.random.default_rng(5))
    for name in a:
        np.testing.assert_array_equal(a[name], b[name])
    # margin=0.25 around [m1, m4] = [0, 3] for stage "a"
    assert a["a"].min() >= 0.0 - 0.25 * 3.0
    assert a["a"].max() <= 3.0 + 0.25 * 3.0
    with pytest.raises(ValueError):
        oracle.probe_grid(0, np.random.default_rng(0))


def test_noise_deviation_reported_but_legs_stay_separated():
    """Read noise shows up as degradation, never as a batch-scalar
    disagreement — the oracle keeps the two failure classes apart."""
    pipeline = make_pipeline()
    oracle = DifferentialOracle.from_intended(pipeline)
    probes = oracle.probe_grid(64, np.random.default_rng(6))
    FaultInjector(TransientReadNoise(sigma=0.05),
                  rng=np.random.default_rng(7)).inject_pipeline(pipeline)
    report = oracle.compare(pipeline, probes)
    assert report.mean_abs_error > 0.0
    assert report.scalar_batch_max_diff <= 1e-9
