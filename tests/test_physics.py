"""Schottky-junction physics building blocks."""

import math

import pytest

from repro.device.physics import (
    ROOM_TEMPERATURE,
    SchottkyJunction,
    barrier_for_state,
    image_force_lowering,
    thermal_voltage,
)


def test_thermal_voltage_at_room_temperature():
    # kT/q at ~293 K is ~25 mV.
    assert thermal_voltage() == pytest.approx(0.02526, rel=1e-3)


def test_thermal_voltage_rejects_nonpositive_temperature():
    with pytest.raises(ValueError):
        thermal_voltage(0.0)


class TestSchottkyJunction:
    def make(self, **overrides):
        defaults = dict(barrier_ev=0.7, ideality=1.5)
        defaults.update(overrides)
        return SchottkyJunction(**defaults)

    def test_zero_bias_zero_current(self):
        assert self.make().current(0.0) == 0.0

    def test_forward_current_grows_with_bias(self):
        junction = self.make()
        assert junction.current(0.5) > junction.current(0.2) > 0.0

    def test_rectification_reverse_much_smaller(self):
        junction = self.make()
        forward = junction.current(0.5)
        reverse = abs(junction.current(-0.5))
        assert reverse < forward / 100.0

    def test_higher_barrier_lower_current(self):
        low = self.make(barrier_ev=0.5)
        high = self.make(barrier_ev=0.9)
        assert high.current(0.4) < low.current(0.4)

    def test_saturation_current_positive_and_barrier_sensitive(self):
        low = self.make(barrier_ev=0.5)
        high = self.make(barrier_ev=0.9)
        assert 0.0 < high.saturation_current < low.saturation_current

    def test_series_resistance_caps_forward_current(self):
        # At strong forward bias, I approaches V/Rs.
        junction = self.make(barrier_ev=0.3,
                             series_resistance_ohm=1000.0)
        current = junction.current(2.0)
        assert current < 2.0 / 1000.0 * 1.05

    def test_differential_resistance_decreases_forward(self):
        junction = self.make()
        assert (junction.differential_resistance(0.6)
                < junction.differential_resistance(0.3))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SchottkyJunction(barrier_ev=-0.1)
        with pytest.raises(ValueError):
            SchottkyJunction(barrier_ev=0.7, ideality=0.5)
        with pytest.raises(ValueError):
            SchottkyJunction(barrier_ev=0.7, area_m2=0.0)


def test_image_force_lowering_monotone_in_field():
    assert image_force_lowering(0.0) == 0.0
    assert (image_force_lowering(1e8)
            > image_force_lowering(1e6) > 0.0)


def test_image_force_lowering_rejects_negative_field():
    with pytest.raises(ValueError):
        image_force_lowering(-1.0)


def test_barrier_for_state_interpolates_linearly():
    assert barrier_for_state(0.0, 0.4, 0.9) == pytest.approx(0.9)
    assert barrier_for_state(1.0, 0.4, 0.9) == pytest.approx(0.4)
    assert barrier_for_state(0.5, 0.4, 0.9) == pytest.approx(0.65)


def test_barrier_for_state_rejects_out_of_range():
    with pytest.raises(ValueError):
        barrier_for_state(1.5, 0.4, 0.9)
