"""The textual programming front-end (paper Sec. 5 syntax)."""

import pytest

from repro.core.dsl import DSLError, parse_program, parse_table

ANALOG_AQM = """
// The paper's analogAQM table, lightly regularised.
table analogAQM {
    read { sojourn_time; d_sojourn; }
    output {
        pipeline {
            pCAM(sojourn_time: 0.01, 0.03, 0.16, 0.19),   // Stage-1
            pCAM(d_sojourn: -1.0, -0.05, 8.0, 9.5),       // Stage-2
        }
    }
    action { update_pCAM(); }
}
"""


def noop_action(table, output, features):
    return "updated"


class TestParsing:
    def test_full_table(self):
        table = parse_table(ANALOG_AQM,
                            actions={"update_pCAM": noop_action})
        assert table.name == "analogAQM"
        assert table.reads == ("sojourn_time", "d_sojourn")
        result = table.process({"sojourn_time": 0.05, "d_sojourn": 0.0})
        assert result.output == pytest.approx(1.0)
        assert result.action_taken == "updated"

    def test_read_section_optional(self):
        text = """table t { output { pipeline {
            pCAM(x: 0, 1, 2, 3) } } }"""
        table = parse_table(text)
        assert table.reads == ("x",)

    def test_stage_parameters_applied(self):
        table = parse_table(ANALOG_AQM,
                            actions={"update_pCAM": noop_action})
        params = table.pipeline.stage("sojourn_time").params
        assert params.m1 == pytest.approx(0.01)
        assert params.m4 == pytest.approx(0.19)
        assert params.is_continuous  # canonical slopes by default

    def test_explicit_slopes_and_rails(self):
        text = """table t { output { pipeline {
            pCAM(x: 0, 1, 2, 3, 0.5, -0.5, 0.9, 0.1) } } }"""
        params = parse_table(text).pipeline.stage("x").params
        assert params.sa == 0.5
        assert params.pmax == 0.9
        assert params.pmin == 0.1

    def test_multiple_tables(self):
        text = """
        table a { output { pipeline { pCAM(x: 0, 1, 2, 3) } } }
        table b { output { pipeline { pCAM(y: 0, 1, 2, 3) } } }
        """
        tables = parse_program(text)
        assert [t.name for t in tables] == ["a", "b"]

    def test_comments_ignored(self):
        text = """// leading comment
        table t { // inline
            output { pipeline { pCAM(x: 0, 1, 2, 3) } }
        }"""
        assert parse_table(text).name == "t"

    def test_scientific_notation_numbers(self):
        text = """table t { output { pipeline {
            pCAM(x: 1e-2, 3e-2, 1.6e-1, 1.9e-1) } } }"""
        params = parse_table(text).pipeline.stage("x").params
        assert params.m1 == pytest.approx(0.01)


class TestErrors:
    def test_missing_output_section(self):
        with pytest.raises(DSLError, match="no output section"):
            parse_table("table t { read { x; } }")

    def test_read_pipeline_mismatch(self):
        text = """table t { read { y; }
            output { pipeline { pCAM(x: 0, 1, 2, 3) } } }"""
        with pytest.raises(DSLError, match="do not match"):
            parse_table(text)

    def test_wrong_parameter_count(self):
        with pytest.raises(DSLError, match="parameters"):
            parse_table("""table t { output { pipeline {
                pCAM(x: 0, 1, 2) } } }""")

    def test_invalid_thresholds_reported(self):
        with pytest.raises(DSLError, match="M1 <= M2"):
            parse_table("""table t { output { pipeline {
                pCAM(x: 3, 2, 1, 0) } } }""")

    def test_unknown_action(self):
        with pytest.raises(DSLError, match="unknown action"):
            parse_table("""table t {
                output { pipeline { pCAM(x: 0, 1, 2, 3) } }
                action { mystery() }
            }""")

    def test_duplicate_stage(self):
        with pytest.raises(DSLError, match="duplicate"):
            parse_table("""table t { output { pipeline {
                pCAM(x: 0, 1, 2, 3), pCAM(x: 0, 1, 2, 3) } } }""")

    def test_unclosed_table(self):
        with pytest.raises(DSLError):
            parse_table("table t { output { pipeline { "
                        "pCAM(x: 0, 1, 2, 3) } }")

    def test_garbage_character(self):
        with pytest.raises(DSLError, match="unexpected character"):
            parse_table("table t @ {}")

    def test_empty_program(self):
        with pytest.raises(DSLError):
            parse_program("   // nothing here\n")

    def test_unknown_section(self):
        with pytest.raises(DSLError, match="unknown section"):
            parse_table("""table t { bogus { } }""")

    def test_parse_table_rejects_multiple(self):
        text = """
        table a { output { pipeline { pCAM(x: 0, 1, 2, 3) } } }
        table b { output { pipeline { pCAM(y: 0, 1, 2, 3) } } }
        """
        with pytest.raises(DSLError, match="exactly one"):
            parse_table(text)


class TestDeviceBackedBuild:
    def test_builds_on_simulated_devices(self, rng):
        from repro.device.variability import VariabilityModel
        text = """table t { output { pipeline {
            pCAM(x: 0.5, 1.0, 2.0, 2.5) } } }"""
        table = parse_table(text, device_backed=True,
                            variability=VariabilityModel.ideal(),
                            rng=rng)
        result = table.process({"x": 1.5})
        assert result.output == pytest.approx(1.0, abs=0.05)
        assert result.energy_j > 0.0
