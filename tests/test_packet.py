"""The shared Packet type."""

import pytest

from repro.packet import FIVE_TUPLE_FIELDS, Packet


def test_unique_ids():
    a, b = Packet(), Packet()
    assert a.packet_id != b.packet_id


def test_sojourn_requires_both_timestamps():
    packet = Packet()
    assert packet.sojourn_time is None
    packet.enqueued_at = 1.0
    assert packet.sojourn_time is None
    packet.dequeued_at = 1.5
    assert packet.sojourn_time == pytest.approx(0.5)


def test_fields_copied_not_aliased():
    fields = {"src_ip": "10.0.0.1"}
    packet = Packet(fields=fields)
    fields["src_ip"] = "changed"
    assert packet.field("src_ip") == "10.0.0.1"


def test_field_default():
    assert Packet().field("missing", 42) == 42


def test_validation():
    with pytest.raises(ValueError):
        Packet(size_bytes=0)
    with pytest.raises(ValueError):
        Packet(priority=-1)


def test_five_tuple_names():
    assert FIVE_TUPLE_FIELDS == ("src_ip", "dst_ip", "src_port",
                                 "dst_port", "protocol")


def test_repr_contains_key_facts():
    text = repr(Packet(size_bytes=500, flow_id=3, priority=1))
    assert "500B" in text and "flow=3" in text


def test_compat_import_path_warns_deprecation():
    # Force the module body to re-execute: the warning fires at
    # import time, once per interpreter, and another test may have
    # imported the shim already.
    import sys

    import pytest

    sys.modules.pop("repro.dataplane.packet", None)
    with pytest.warns(DeprecationWarning,
                      match="repro.dataplane.packet is deprecated"):
        import repro.dataplane.packet as compat
    assert compat.Packet is Packet
    assert compat.FIVE_TUPLE_FIELDS is FIVE_TUPLE_FIELDS
