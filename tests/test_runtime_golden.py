"""Golden equivalence: the staged runtime vs the pre-refactor paths.

``tests/golden/runtime_reference.json`` was captured from the
pre-refactor pipeline (the fused scalar/batched implementation,
verified byte-identical across processes before being committed).
These tests replay the exact same traffic through the unified
runtime and require verdicts, ports, verdict counters, telemetry
tables/events/gauges and energy-ledger accounts to match the
reference — across chunk sizes, with the flow cache on and off, and
under seeded fault injection.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.dataplane.pipeline import AnalogPacketProcessor
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.netfunc.firewall import Action, FirewallRule
from repro.packet import Packet
from repro.robustness import FaultInjector, StuckAtFault

GOLDEN_PATH = Path(__file__).parent / "golden" / \
    "runtime_reference.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: Same pools as the capture script that produced the reference.
DST_POOL = [
    "10.1.2.3", "10.1.2.4", "10.200.0.1",
    "192.168.7.7", "192.168.9.1",
    "172.16.0.5", "172.16.3.3",
    "203.0.113.9", "203.0.113.10",
    "198.51.100.1", "198.51.100.2",
    None, None,
]
SRC_POOL = ["1.2.3.4", "5.6.7.8", "9.10.11.12"]

CONFIGS = {
    "scalar_cached": ("scalar", 1, 4096, None),
    "batch_c1": ("batch", 1, 4096, None),
    "batch_c7": ("batch", 7, 4096, None),
    "batch_c64": ("batch", 64, 4096, None),
    "batch_c64_nocache": ("batch", 64, 0, None),
    "batch_c64_faulted": ("batch", 64, 4096, 99),
    "scalar_faulted": ("scalar", 1, 4096, 99),
}


def build_processor(flow_cache_size, fault_seed):
    processor = AnalogPacketProcessor(
        n_ports=3,
        aqm_factory=lambda: PCAMAQM(rng=np.random.default_rng(5)),
        flow_cache_size=flow_cache_size)
    processor.add_firewall_rule(FirewallRule(
        action=Action.DENY, dst_prefix="203.0.113.0/24"))
    processor.add_route("10.0.0.0/8", 0)
    processor.add_route("192.168.0.0/16", 1)
    processor.add_route("172.16.0.0/12", 2)
    if fault_seed is not None:
        injector = FaultInjector(StuckAtFault(state="hrs"),
                                 cell_fraction=1.0,
                                 rng=np.random.default_rng(fault_seed))
        for port in range(processor.traffic_manager.n_ports):
            injector.inject_aqm(processor.traffic_manager.aqm(port))
    return processor


def make_traffic(n=240, seed=17):
    rng = np.random.default_rng(seed)
    packets = []
    for _ in range(n):
        fields = {"src_ip": SRC_POOL[int(rng.integers(len(SRC_POOL)))],
                  "src_port": int(rng.integers(1024, 1028)),
                  "dst_port": int(rng.integers(80, 83)),
                  "protocol": int(rng.choice([6, 17]))}
        dst = DST_POOL[int(rng.integers(len(DST_POOL)))]
        if dst is not None:
            fields["dst_ip"] = dst
        packets.append(Packet(size_bytes=int(rng.integers(64, 1500)),
                              priority=int(rng.random() < 0.3),
                              fields=fields))
    return packets


def observe(mode, chunk_size, flow_cache_size, fault_seed,
            compiled=False):
    processor = build_processor(flow_cache_size, fault_seed)
    if compiled:
        plan = processor.request_compile()
        assert plan.fused, plan.reasons
    packets = make_traffic()
    if mode == "scalar":
        results = [processor.process(p, now=0.5) for p in packets]
    else:
        results = processor.process_batch(packets, now=0.5,
                                          chunk_size=chunk_size)
    snapshot = processor.telemetry.snapshot()
    return {
        "verdicts": [r.verdict.value for r in results],
        "ports": [r.port for r in results],
        "verdict_counts": {v.value: c
                           for v, c in processor.verdict_counts.items()},
        "tables": snapshot["tables"],
        "events": snapshot["events"],
        "gauges": snapshot["gauges"],
        "energy_breakdown": {k: round(v, 28) for k, v in
                             processor.energy_breakdown().items()},
        "energy_total_j": round(processor.energy_total_j(), 28),
    }


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_matches_pre_refactor_reference(name):
    mode, chunk, cache, faults = CONFIGS[name]
    reference = GOLDEN[name]
    # JSON round-trip normalisation so floats/keys compare like for
    # like with the committed reference.
    actual = json.loads(json.dumps(observe(mode, chunk, cache, faults),
                                   sort_keys=True))
    for field in reference:
        assert actual[field] == reference[field], \
            f"{name}: field {field!r} diverged from the " \
            f"pre-refactor reference"


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_compiled_mode_matches_the_same_reference(name):
    # The fused kernel must be indistinguishable from the staged walk
    # against the *same* committed payloads — across chunk sizes,
    # cache on/off, and seeded faults.  The faulted configs double as
    # the fold-invalid fallback check: the injected AQM faults make
    # the analog constant-fold refuse, so the compiled dataplane runs
    # over the unfolded (batch) AQM path and must still match.
    mode, chunk, cache, faults = CONFIGS[name]
    reference = GOLDEN[name]
    actual = json.loads(json.dumps(
        observe(mode, chunk, cache, faults, compiled=True),
        sort_keys=True))
    for field in reference:
        assert actual[field] == reference[field], \
            f"compiled {name}: field {field!r} diverged from the " \
            f"pre-refactor reference"


def test_reference_covers_every_contract_dimension():
    # Guard the golden file itself: all configs present, each pinning
    # every observable the acceptance criteria name.
    assert set(GOLDEN) == set(CONFIGS)
    for name, payload in GOLDEN.items():
        assert {"verdicts", "ports", "verdict_counts", "tables",
                "events", "gauges", "energy_breakdown",
                "energy_total_j"} <= set(payload), name
        assert len(payload["verdicts"]) == 240, name
