"""End-to-end observability: one hub wired through the whole pipeline."""

import numpy as np
import pytest

from repro.crossbar.array import Crossbar
from repro.dataplane.parser import build_ethernet_frame, build_ipv4_packet
from repro.dataplane.pipeline import AnalogPacketProcessor
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.observability import Observability
from repro.observability.export import lint_prometheus
from repro.observability.registry import MetricsRegistry
from repro.packet import Packet
from repro.robustness.degradation import DegradingAQM


def make_processor(observability, **kwargs):
    processor = AnalogPacketProcessor(
        n_ports=2, observability=observability, **kwargs)
    processor.add_route("10.0.0.0/8", port=0)
    processor.add_route("192.168.0.0/16", port=1)
    return processor


def make_packet(dst="10.2.2.2"):
    return Packet(fields={"src_ip": "10.1.1.1", "dst_ip": dst,
                          "protocol": 17, "src_port": 1000,
                          "dst_port": 80})


def run_traffic(processor):
    frame = build_ethernet_frame(build_ipv4_packet(
        "10.1.1.1", "10.9.9.9"))
    processor.process_frame(frame, now=0.0)
    # Build a backlog first: the pCAM AQM only searches under load.
    for index in range(4):
        processor.process(make_packet(), now=(index + 1) * 1e-4)
    processor.process_batch([make_packet() for _ in range(8)],
                            now=6e-4)
    processor.drain(0, now=7e-4)


class TestTracedPipeline:
    def test_every_stage_produces_spans(self):
        obs = Observability()
        run_traffic(make_processor(obs))
        names = {span.name for span in obs.tracer.finished}
        for expected in ("dataplane.parse", "dataplane.process",
                         "dataplane.firewall", "dataplane.ip_lookup",
                         "dataplane.process_batch",
                         "dataplane.digital_mats",
                         "tm.enqueue", "tm.aqm", "tm.queue",
                         "tm.dequeue", "pcam.evaluate_batch"):
            assert expected in names, f"missing span {expected!r}"
        assert any(name.startswith("pcam.stage.") for name in names)

    def test_pcam_stage_spans_nest_under_evaluate_batch(self):
        obs = Observability()
        run_traffic(make_processor(obs))
        parents = {span.span_id: span for span in obs.tracer.finished}
        stage_spans = [span for span in obs.tracer.finished
                       if span.name.startswith("pcam.stage.")]
        assert stage_spans
        for span in stage_spans:
            chain = []
            cursor = span
            while cursor.parent_id is not None:
                cursor = parents[cursor.parent_id]
                chain.append(cursor.name)
            assert "pcam.evaluate_batch" in chain or "tm.aqm" in chain

    def test_span_timestamps_follow_sim_clock(self):
        obs = Observability()
        processor = make_processor(obs)
        processor.process(make_packet(), now=42.0)
        spans = obs.tracer.spans("dataplane.process")
        assert spans and spans[0].start_s == 42.0

    def test_without_hub_no_spans_and_paths_still_work(self):
        processor = make_processor(None)
        assert processor.observability is None
        run_traffic(processor)  # inert hooks must not break anything
        assert processor.processed > 0


class TestUnifiedSnapshot:
    def test_one_snapshot_carries_all_sources(self):
        obs = Observability()
        processor = make_processor(
            obs, aqm_factory=lambda: DegradingAQM(PCAMAQM()))
        run_traffic(processor)
        snapshot = obs.snapshot()
        names = {entry["name"] for entry in snapshot["metrics"]}
        # Table hit/miss statistics.
        assert {"dataplane_table_lookups_total",
                "dataplane_table_hits_total",
                "dataplane_table_misses_total"} <= names
        # Energy-account totals.
        assert {"energy_account_joules_total",
                "energy_joules_total"} <= names
        # Degradation fallback/retry counters.
        assert {"degradation_fallback_total",
                "degradation_retries_total",
                "degradation_degraded"} <= names
        # Per-stage latency histograms (tracing + profiling).
        assert {"span_wall_seconds", "span_sim_seconds",
                "profiled_wall_seconds"} <= names

    def test_profiled_sites_cover_batch_kernels(self):
        obs = Observability()
        run_traffic(make_processor(obs))
        snapshot = obs.snapshot()
        (entry,) = [e for e in snapshot["metrics"]
                    if e["name"] == "profiled_wall_seconds"]
        sites = {sample["labels"]["site"] for sample in entry["samples"]}
        assert "pcam.evaluate_batch" in sites

    def test_table_counts_match_telemetry(self):
        obs = Observability()
        processor = make_processor(obs)
        run_traffic(processor)
        snapshot = obs.snapshot()
        (entry,) = [e for e in snapshot["metrics"]
                    if e["name"] == "dataplane_table_lookups_total"]
        by_table = {sample["labels"]["table"]: sample["value"]
                    for sample in entry["samples"]}
        assert by_table["firewall"] == \
            processor.telemetry.table("firewall").lookups
        assert by_table["ip_lookup"] == \
            processor.telemetry.table("ip_lookup").lookups

    def test_prometheus_export_lints_clean(self):
        obs = Observability()
        run_traffic(make_processor(
            obs, aqm_factory=lambda: DegradingAQM(PCAMAQM())))
        assert lint_prometheus(obs.to_prometheus()) == []


class TestControllerPoll:
    def test_poll_metrics_returns_the_hub_snapshot(self):
        obs = Observability()
        processor = make_processor(obs)
        run_traffic(processor)
        polled = processor.controller.poll_metrics()
        names = {entry["name"] for entry in polled["metrics"]}
        assert "dataplane_table_hits_total" in names

    def test_poll_without_hub_raises(self):
        processor = make_processor(None)
        with pytest.raises(RuntimeError):
            processor.controller.poll_metrics()


class TestCrossbarTracing:
    def test_matvec_batch_traced_and_profiled(self):
        obs = Observability()
        bar = Crossbar(4, 4)
        bar.tracer = obs.tracer
        bar.profiler = obs.profiler
        result = bar.matvec_batch(np.full((3, 4), 0.2))
        assert result.currents_a.shape == (3, 4)
        spans = obs.tracer.spans("crossbar.matvec_batch")
        assert len(spans) == 1
        assert spans[0].attributes == {"batch": 3, "rows": 4, "cols": 4}
        assert obs.profiler.site_histogram(
            "crossbar.matvec_batch").count == 1

    def test_untraced_matvec_batch_matches_traced(self):
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        plain = Crossbar(4, 4, rng=rng_a)
        traced = Crossbar(4, 4, rng=rng_b)
        traced.tracer = Observability().tracer
        voltages = np.full((2, 4), 0.3)
        np.testing.assert_allclose(
            plain.matvec_batch(voltages).currents_a,
            traced.matvec_batch(voltages).currents_a)


class TestSharedRegistry:
    def test_external_registry_is_used(self):
        registry = MetricsRegistry()
        obs = Observability(registry=registry)
        run_traffic(make_processor(obs))
        assert len(registry) > 0
        assert obs.registry is registry
