"""Property-based tests across the substrates (hypothesis)."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.core.calibration import FeatureScaler
from repro.device.memristor import NbSTOMemristor
from repro.device.variability import VariabilityModel
from repro.energy.ledger import EnergyLedger
from repro.netfunc.aqm.derivatives import ExponentialSmoother
from repro.simnet.metrics import time_binned_mean
from repro.tcam.tcam import TCAM, TernaryPattern, key_from_int

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e6, max_value=1e6)


@given(charges=st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.floats(0.0, 1e-9)), max_size=30))
def test_ledger_total_equals_sum_of_accounts(charges):
    ledger = EnergyLedger()
    for account, energy in charges:
        ledger.charge(account, energy)
    assert abs(ledger.total - sum(e for _, e in charges)) < 1e-18
    assert abs(ledger.total
               - sum(v for _, v in ledger.breakdown().items())) < 1e-18


@given(state=st.floats(0.0, 1.0),
       voltage=st.floats(0.05, 4.0))
def test_memristor_read_energy_nonnegative_and_monotone_window(
        state, voltage):
    device = NbSTOMemristor(state=state,
                            variability=VariabilityModel.ideal())
    read = device.read(voltage, 1e-9, noisy=False)
    assert read.energy_j >= 0.0
    # More conductive state never reads cheaper at same voltage.
    higher = NbSTOMemristor(state=min(1.0, state + 0.1),
                            variability=VariabilityModel.ideal())
    assert higher.read(voltage, 1e-9, noisy=False).energy_j >= \
        read.energy_j * (1 - 1e-9)


@given(state=st.floats(0.0, 1.0))
def test_memristor_resistance_within_window(state):
    device = NbSTOMemristor(state=state,
                            variability=VariabilityModel.ideal())
    params = device.params
    resistance = device.resistance()
    assert params.r_on * (1 - 1e-9) <= resistance \
        <= params.r_off * (1 + 1e-9)


@given(bits=st.lists(st.sampled_from("01x"), min_size=1, max_size=24))
def test_pattern_parse_str_round_trip(bits):
    text = "".join(bits)
    assert str(TernaryPattern.parse(text)) == text


@given(width=st.integers(1, 16), value=st.integers(0),
       key=st.integers(0))
@settings(max_examples=80)
def test_fully_specified_pattern_matches_only_itself(width, value, key):
    value %= 1 << width
    key %= 1 << width
    pattern = TernaryPattern.from_value(value, width)
    assert pattern.matches(key_from_int(key, width)) == (value == key)


@given(width=st.integers(1, 12), value=st.integers(0),
       keys=st.lists(st.integers(0), min_size=1, max_size=8))
@settings(max_examples=60)
def test_all_wildcard_entry_matches_everything(width, value, keys):
    tcam = TCAM(width)
    tcam.add("x" * width)
    for key in keys:
        assert tcam.search(key % (1 << width)).hit


@given(lo=finite, span=st.floats(1e-3, 1e3), feature=finite)
def test_feature_scaler_output_within_rails(lo, span, feature):
    scaler = FeatureScaler(lo, lo + span, -1.8, 3.8)
    voltage = scaler.to_voltage(feature)
    assert -1.8 - 1e-9 <= voltage <= 3.8 + 1e-9


@given(lo=finite, span=st.floats(1e-3, 1e3),
       fraction=st.floats(0.0, 1.0))
def test_feature_scaler_round_trip_inside_range(lo, span, fraction):
    scaler = FeatureScaler(lo, lo + span, -1.8, 3.8)
    feature = lo + fraction * span
    recovered = scaler.from_voltage(scaler.to_voltage(feature))
    assert abs(recovered - feature) < 1e-6 * max(1.0, abs(feature))


@given(samples=st.lists(
    st.tuples(st.floats(0.0, 100.0), st.floats(-1e3, 1e3)),
    min_size=1, max_size=40))
def test_smoother_output_bounded_by_input_range(samples):
    ordered = sorted(samples, key=lambda pair: pair[0])
    smoother = ExponentialSmoother(tau_s=0.5)
    values = [value for _, value in ordered]
    for time, value in ordered:
        output = smoother.update(time, value)
        assert min(values) - 1e-9 <= output <= max(values) + 1e-9


@given(n=st.integers(1, 60), bin_width=st.floats(0.01, 10.0))
@settings(max_examples=50)
def test_time_binned_mean_preserves_global_mean_of_uniform_values(
        n, bin_width):
    times = np.linspace(0.0, 10.0, n)
    values = np.full(n, 3.5)
    _, means = time_binned_mean(times, values, bin_width)
    filled = means[~np.isnan(means)]
    assert np.allclose(filled, 3.5)
