"""The pipeline compiler (:mod:`repro.runtime.compile`), end to end.

Two halves.  The analysis tests pin when a processor fuses and —
more importantly — when it must refuse: anything the fused kernel
cannot provably reproduce (tracing, subclassed or duplicated
middleware, a reshaped stage walk) records a reason and leaves the
staged walk in place.  The parity tests then run staged/compiled
twin processors over the same traffic and require *every* observable
to match: verdicts, ports, counters, telemetry tables/events/gauges,
chunk and stage-run counts, per-stage energy, cache statistics and
queue backlogs.  "Fast" may never mean "slightly different".
"""

import numpy as np
import pytest

from repro.dataplane import (
    SwitchSpec,
    Verdict,
    build_switch,
    classifier_spec_from_tree,
)
from repro.dataplane.fastpath import TelemetryTally
from repro.dataplane.parser import (
    build_ethernet_frame,
    build_ipv4_packet,
)
from repro.dataplane.pipeline import AnalogPacketProcessor
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.netfunc.decision_tree import CARTTree, TreeNode
from repro.netfunc.firewall import Action, FirewallRule
from repro.observability.hub import Observability
from repro.packet import Packet
from repro.runtime import (
    BaseMiddleware,
    EnergyAttributionMiddleware,
    TelemetryMiddleware,
)
from repro.runtime.compile import compile_processor


def build_spec(**overrides):
    base = dict(
        n_ports=3,
        routes=(("10.0.0.0/8", 0), ("192.168.0.0/16", 1),
                ("172.16.0.0/12", 2)),
        firewall_rules=(FirewallRule(action=Action.DENY,
                                     dst_prefix="203.0.113.0/24"),))
    base.update(overrides)
    return SwitchSpec(**base)


def classifier_spec():
    root = TreeNode(
        feature=2, threshold=11.5,
        left=TreeNode(feature=0, threshold=1100.0,
                      left=TreeNode(prediction=1),
                      right=TreeNode(prediction=2)),
        right=TreeNode(prediction=0))
    tree = CARTTree.from_root(root, n_features=3)
    return classifier_spec_from_tree(
        tree, ("size_bytes", "dst_port", "protocol"),
        class_to_port=((0, 0), (1, 1), (2, 2)))


def make_traffic(n=160, seed=23):
    rng = np.random.default_rng(seed)
    dsts = ["10.1.2.3", "10.9.9.9", "192.168.7.7", "172.16.0.5",
            "203.0.113.9", "8.8.8.8", None]
    packets = []
    for _ in range(n):
        fields = {"src_ip": "1.2.3.4",
                  "src_port": int(rng.integers(1024, 1030)),
                  "dst_port": int(rng.integers(80, 84)),
                  "protocol": int(rng.choice([6, 17]))}
        dst = dsts[int(rng.integers(len(dsts)))]
        if dst is not None:
            fields["dst_ip"] = dst
        packets.append(Packet(size_bytes=int(rng.integers(64, 1500)),
                              priority=int(rng.random() < 0.3),
                              fields=fields))
    return packets


def make_frames(n=60, seed=31):
    rng = np.random.default_rng(seed)
    dsts = ["10.1.2.3", "192.168.7.7", "203.0.113.9", "8.8.8.8"]
    frames = []
    for i in range(n):
        if i % 11 == 10:
            frames.append(b"\x00" * 9)  # truncated: parse-drop
            continue
        frames.append(build_ethernet_frame(build_ipv4_packet(
            "1.2.3.4", dsts[int(rng.integers(len(dsts)))],
            protocol=int(rng.choice([6, 17])),
            src_port=int(rng.integers(1024, 1030)),
            dst_port=int(rng.integers(80, 84)),
            payload=bytes(int(rng.integers(0, 600))))))
    return frames


class NosyMiddleware(BaseMiddleware):
    """Stands in for anything the compiler has never heard of."""


class TestPlanAnalysis:
    def test_stock_switch_fuses(self):
        processor = build_switch(build_spec())
        plan = compile_processor(processor)
        assert plan.fused and plan.reasons == ()
        assert plan.stages == ("parser", "digital_mats", "egress")
        assert plan.lowering in ("numba", "python")
        assert plan.kernel is not None

    def test_classifier_switch_fuses_with_interior_stage(self):
        processor = build_switch(
            build_spec(classifier=classifier_spec()))
        plan = compile_processor(processor)
        assert plan.fused
        assert plan.stages == ("parser", "digital_mats",
                               "acam_classifier", "egress")

    def test_tracing_refuses_with_a_reason(self):
        processor = build_switch(build_spec(),
                                 observability=Observability())
        plan = compile_processor(processor)
        assert not plan.fused and plan.kernel is None
        assert any("TracingMiddleware" in reason
                   for reason in plan.reasons)

    def test_subclassed_middleware_refuses(self):
        # A subclass may override the hooks the kernel folds away, so
        # the exact-type check must reject it even though
        # isinstance() would happily pass.
        class TweakedTelemetry(TelemetryMiddleware):
            pass

        processor = build_switch(build_spec())
        processor.use_middleware([
            TweakedTelemetry(processor.telemetry, TelemetryTally),
            EnergyAttributionMiddleware(processor.ledger)])
        plan = compile_processor(processor)
        assert not plan.fused
        assert any("TweakedTelemetry" in reason
                   for reason in plan.reasons)

    def test_duplicate_middleware_refuses(self):
        processor = build_switch(build_spec())
        processor.use_middleware(
            processor.default_middleware()
            + [EnergyAttributionMiddleware(processor.ledger)])
        plan = compile_processor(processor)
        assert not plan.fused
        assert any("EnergyAttributionMiddleware" in reason
                   for reason in plan.reasons)

    def test_unknown_middleware_refuses(self):
        processor = build_switch(build_spec())
        processor.use_middleware(
            processor.default_middleware() + [NosyMiddleware()])
        plan = compile_processor(processor)
        assert not plan.fused
        assert any("NosyMiddleware" in reason for reason in plan.reasons)

    def test_stage_ahead_of_the_digital_mats_refuses(self):
        class Shaper:
            name = "shaper"

            def process_batch(self, batch, ctx):
                return batch

        processor = build_switch(build_spec())
        processor.insert_stage(Shaper(), before="digital_mats")
        plan = compile_processor(processor)
        assert not plan.fused
        assert any("digital MATs" in reason for reason in plan.reasons)


class TestRequestStickiness:
    def test_refusal_keeps_the_staged_walk_working(self):
        processor = build_switch(build_spec(),
                                 observability=Observability(),
                                 compile=True)
        assert not processor.compiled_plan.fused
        assert processor._fused is None
        result = processor.process(
            Packet(fields={"src_ip": "1.2.3.4", "dst_ip": "10.1.2.3",
                           "src_port": 1, "dst_port": 80,
                           "protocol": 17}), now=0.0)
        assert result.verdict is Verdict.QUEUED

    def test_middleware_swap_recompiles_both_ways(self):
        processor = build_switch(build_spec(), compile=True)
        assert processor.compiled_plan.fused
        processor.use_middleware(
            processor.default_middleware() + [NosyMiddleware()])
        assert not processor.compiled_plan.fused
        assert processor._fused is None
        processor.use_middleware(processor.default_middleware())
        assert processor.compiled_plan.fused
        assert processor._fused is processor.compiled_plan.kernel

    def test_stage_insertion_recompiles(self):
        class Shaper:
            name = "shaper"

            def process_batch(self, batch, ctx):
                return batch

        processor = build_switch(build_spec(), compile=True)
        assert processor.compiled_plan.fused
        processor.insert_stage(Shaper(), before="digital_mats")
        assert not processor.compiled_plan.fused

    def test_without_request_no_compiler_runs(self):
        processor = build_switch(build_spec())
        assert processor.compiled_plan is None
        processor.use_middleware(processor.default_middleware())
        assert processor.compiled_plan is None

    def test_aqm_lanes_follow_the_plan(self):
        processor = build_switch(build_spec(), compile=True)
        manager = processor.traffic_manager
        assert all(manager.aqm(p).compiled_lane
                   for p in range(manager.n_ports))
        processor.use_middleware(
            processor.default_middleware() + [NosyMiddleware()])
        assert not any(manager.aqm(p).compiled_lane
                       for p in range(manager.n_ports))
        processor.use_middleware(processor.default_middleware())
        assert all(manager.aqm(p).compiled_lane
                   for p in range(manager.n_ports))

    def test_degrading_aqm_lacks_the_lane_and_still_fuses(self):
        processor = build_switch(
            build_spec(graceful_degradation=True), compile=True)
        assert processor.compiled_plan.fused
        aqm = processor.traffic_manager.aqm(0)
        assert not hasattr(aqm, "enable_compiled_lane")


def full_state(processor, results):
    snapshot = processor.telemetry.snapshot()
    return {
        "verdicts": [r.verdict for r in results],
        "ports": [r.port for r in results],
        "dropped": [r.packet.dropped for r in results
                    if r.packet is not None],
        "processed": processor.processed,
        "verdict_counts": dict(processor.verdict_counts),
        "tables": snapshot["tables"],
        "events": snapshot["events"],
        "gauges": snapshot["gauges"],
        "chunks": processor.runtime.chunks,
        "stage_runs": dict(processor.runtime.stage_runs),
        "energy_by_stage": processor.energy_by_stage(),
        "energy_breakdown": processor.energy_breakdown(),
        "energy_total_j": processor.energy_total_j(),
        "cache": None if processor.flow_cache is None else
                 (processor.flow_cache.hits,
                  processor.flow_cache.misses,
                  processor.flow_cache.invalidations),
        "backlogs": [processor.traffic_manager.backlog(p)
                     for p in range(processor.traffic_manager.n_ports)],
    }


def twin_processors(**spec_overrides):
    def fresh(compiled):
        return build_switch(
            build_spec(**spec_overrides),
            aqm_factory=lambda: PCAMAQM(rng=np.random.default_rng(5)),
            compile=compiled)

    staged = fresh(False)
    compiled = fresh(True)
    assert compiled.compiled_plan.fused, compiled.compiled_plan.reasons
    return staged, compiled


class TestFusedParity:
    @pytest.mark.parametrize("chunk_size", [1, 5, 64])
    def test_batch_entry(self, chunk_size):
        staged, compiled = twin_processors()
        packets_a = make_traffic()
        packets_b = make_traffic()
        ra = staged.process_batch(packets_a, now=0.5,
                                  chunk_size=chunk_size)
        rb = compiled.process_batch(packets_b, now=0.5,
                                    chunk_size=chunk_size)
        assert full_state(staged, ra) == full_state(compiled, rb)

    def test_scalar_entry(self):
        staged, compiled = twin_processors()
        ra = [staged.process(p, now=0.5) for p in make_traffic(60)]
        rb = [compiled.process(p, now=0.5) for p in make_traffic(60)]
        assert full_state(staged, ra) == full_state(compiled, rb)

    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    def test_frames_entry_with_malformed_frames(self, chunk_size):
        staged, compiled = twin_processors()
        ra = staged.process_frames(make_frames(), now=0.5,
                                   chunk_size=chunk_size)
        rb = compiled.process_frames(make_frames(), now=0.5,
                                     chunk_size=chunk_size)
        assert full_state(staged, ra) == full_state(compiled, rb)

    def test_empty_frame_burst_still_counts_a_chunk(self):
        staged, compiled = twin_processors()
        staged.process_frames([], now=0.5)
        compiled.process_frames([], now=0.5)
        assert staged.runtime.chunks == compiled.runtime.chunks == 1
        assert full_state(staged, []) == full_state(compiled, [])

    @pytest.mark.parametrize("chunk_size", [3, 64])
    def test_classifier_switch(self, chunk_size):
        staged, compiled = twin_processors(classifier=classifier_spec())
        packets_a = make_traffic()
        packets_b = make_traffic()
        ra = staged.process_batch(packets_a, now=0.5,
                                  chunk_size=chunk_size)
        rb = compiled.process_batch(packets_b, now=0.5,
                                    chunk_size=chunk_size)
        assert full_state(staged, ra) == full_state(compiled, rb)

    def test_cacheless_switch(self):
        staged, compiled = twin_processors(flow_cache_size=0)
        ra = staged.process_batch(make_traffic(), now=0.5)
        rb = compiled.process_batch(make_traffic(), now=0.5)
        assert full_state(staged, ra) == full_state(compiled, rb)

    def test_mid_stream_rule_update_invalidates_both(self):
        staged, compiled = twin_processors()
        for processor in (staged, compiled):
            processor.process_batch(make_traffic(40), now=0.0)
            processor.add_firewall_rule(FirewallRule(
                action=Action.DENY, dst_prefix="10.0.0.0/8"))
        ra = staged.process_batch(make_traffic(40), now=1e-3)
        rb = compiled.process_batch(make_traffic(40), now=1e-3)
        assert full_state(staged, ra) == full_state(compiled, rb)
        assert staged.flow_cache.invalidations > 0

    def test_chunk_size_validation_matches_the_staged_message(self):
        _, compiled = twin_processors()
        with pytest.raises(ValueError,
                           match="chunk size must be >= 1: 0"):
            compiled.process_batch(make_traffic(4), now=0.0,
                                   chunk_size=0)
