"""The published designs of Table 1."""

import pytest

from repro.tcam.baselines import (
    Computation,
    PublishedDesign,
    TABLE1_DIGITAL_DESIGNS,
    TABLE1_PCAM_PUBLISHED,
    Technology,
    best_digital_design,
)


def test_eight_digital_designs():
    assert len(TABLE1_DIGITAL_DESIGNS) == 8


def test_all_digital_rows_are_digital():
    assert all(design.computation is Computation.DIGITAL
               for design in TABLE1_DIGITAL_DESIGNS)


def test_published_figures_match_paper():
    by_ref = {design.reference: design
              for design in TABLE1_DIGITAL_DESIGNS}
    assert by_ref["2"].energy_fj_per_bit == 0.58
    assert by_ref["2"].latency_ns == 1.0
    assert by_ref["19"].energy_fj_per_bit == 1.98
    assert by_ref["42"].energy_fj_per_bit_max == 16.0
    assert by_ref["33"].latency_ns == 0.29
    assert by_ref["11"].latency_ns == 0.18
    assert by_ref["4"].energy_fj_per_bit == 2.15
    assert by_ref["62"].energy_fj_per_bit == 3.0
    assert by_ref["59"].latency_ns == 8.0


def test_best_digital_is_arsovski():
    best = best_digital_design()
    assert best.reference == "2"
    assert best.energy_fj_per_bit == 0.58


def test_pcam_published_row():
    assert TABLE1_PCAM_PUBLISHED.computation is Computation.ANALOG
    assert TABLE1_PCAM_PUBLISHED.technology is Technology.MEMRISTOR
    assert TABLE1_PCAM_PUBLISHED.energy_fj_per_bit == 0.01
    assert TABLE1_PCAM_PUBLISHED.latency_ns == 1.0


def test_si_conversions():
    design = TABLE1_DIGITAL_DESIGNS[0]
    assert design.latency_s == pytest.approx(1e-9)
    assert design.energy_j_per_bit == pytest.approx(0.58e-15)


def test_str_rendering():
    text = str(TABLE1_DIGITAL_DESIGNS[2])
    assert "1-16 fJ/bit" in text
    assert "(D/M)" in text
    single = str(TABLE1_DIGITAL_DESIGNS[0])
    assert "0.58 fJ/bit" in single
