"""Crossbar array analog matrix-vector simulator."""

import numpy as np
import pytest

from repro.crossbar.array import Crossbar
from repro.crossbar.losses import LineLossModel
from repro.device.variability import VariabilityModel


def ideal_crossbar(rows=4, cols=3, **kwargs):
    kwargs.setdefault("losses", LineLossModel.ideal())
    kwargs.setdefault("variability", VariabilityModel.ideal())
    return Crossbar(rows, cols, **kwargs)


class TestProgramming:
    def test_starts_all_hrs(self):
        bar = ideal_crossbar()
        g_min, _ = bar.conductance_bounds
        np.testing.assert_allclose(bar.conductances, g_min)

    def test_program_normalised_maps_window(self):
        bar = ideal_crossbar(2, 2)
        bar.program_normalised(np.array([[0.0, 1.0], [0.5, 0.25]]))
        g_min, g_max = bar.conductance_bounds
        conductances = bar.conductances
        assert conductances[0, 0] == pytest.approx(g_min)
        assert conductances[0, 1] == pytest.approx(g_max)

    def test_program_outside_window_rejected(self):
        bar = ideal_crossbar()
        _, g_max = bar.conductance_bounds
        bad = np.full((4, 3), g_max * 2)
        with pytest.raises(ValueError):
            bar.program(bad)

    def test_program_normalised_validates_range(self):
        bar = ideal_crossbar()
        with pytest.raises(ValueError):
            bar.program_normalised(np.full((4, 3), 1.5))

    def test_write_energy_counts_changed_cells(self):
        bar = ideal_crossbar(2, 2)
        weights = np.array([[0.1, 0.2], [0.3, 0.4]])
        first = bar.program_normalised(weights,
                                       write_energy_per_cell_j=1e-12)
        second = bar.program_normalised(weights,
                                        write_energy_per_cell_j=1e-12)
        assert first == pytest.approx(4e-12)
        assert second == 0.0
        assert bar.write_energy_j == pytest.approx(4e-12)

    def test_shape_validated(self):
        bar = ideal_crossbar()
        with pytest.raises(ValueError):
            bar.program(np.zeros((2, 2)))


class TestMatvec:
    def test_ideal_matvec_is_gt_v(self):
        bar = ideal_crossbar(3, 2)
        weights = np.array([[0.1, 0.9], [0.5, 0.2], [0.8, 0.6]])
        bar.program_normalised(weights)
        voltages = np.array([1.0, 2.0, 0.5])
        expected = bar.conductances.T @ voltages
        np.testing.assert_allclose(bar.ideal_matvec(voltages), expected)

    def test_noiseless_lossless_matches_ideal(self):
        bar = ideal_crossbar(3, 2)
        bar.program_normalised(np.random.default_rng(0).random((3, 2)))
        voltages = np.array([1.0, 0.5, 2.0])
        result = bar.matvec(voltages, noisy=False)
        np.testing.assert_allclose(result.currents_a,
                                   bar.ideal_matvec(voltages), rtol=1e-9)

    def test_matvec_dissipates_energy(self):
        bar = ideal_crossbar()
        bar.program_normalised(np.full((4, 3), 0.5))
        result = bar.matvec(np.ones(4))
        assert result.energy_j > 0.0
        assert bar.operations == 1

    def test_wire_losses_reduce_output(self):
        lossy = Crossbar(8, 8, losses=LineLossModel(
            wire_resistance_per_cell_ohm=50.0),
            variability=VariabilityModel.ideal())
        lossy.program_normalised(np.full((8, 8), 1.0))
        voltages = np.ones(8)
        measured = lossy.matvec(voltages, noisy=False).currents_a
        ideal = lossy.ideal_matvec(voltages)
        assert np.all(measured < ideal)

    def test_read_noise_perturbs_output(self):
        bar = Crossbar(4, 4, losses=LineLossModel.ideal(),
                       variability=VariabilityModel(read_sigma=0.1,
                                                    device_sigma=0.0),
                       rng=np.random.default_rng(0))
        bar.program_normalised(np.full((4, 4), 0.5))
        a = bar.matvec(np.ones(4)).currents_a
        b = bar.matvec(np.ones(4)).currents_a
        assert not np.allclose(a, b)

    def test_matvec_validates_inputs(self):
        bar = ideal_crossbar()
        with pytest.raises(ValueError):
            bar.matvec(np.ones(3))
        with pytest.raises(ValueError):
            bar.matvec(np.ones(4), duration_s=0.0)

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            Crossbar(0, 4)


class TestRelativeError:
    def test_zero_for_ideal_array(self):
        bar = ideal_crossbar()
        bar.program_normalised(np.full((4, 3), 0.5))
        assert bar.relative_error(np.ones(4)) == pytest.approx(0.0,
                                                               abs=1e-12)

    def test_grows_with_noise(self):
        quiet = Crossbar(4, 4, losses=LineLossModel.ideal(),
                         variability=VariabilityModel(read_sigma=0.01,
                                                      device_sigma=0.0),
                         rng=np.random.default_rng(1))
        loud = Crossbar(4, 4, losses=LineLossModel.ideal(),
                        variability=VariabilityModel(read_sigma=0.2,
                                                     device_sigma=0.0),
                        rng=np.random.default_rng(1))
        for bar in (quiet, loud):
            bar.program_normalised(np.full((4, 4), 0.5))
        assert (loud.relative_error(np.ones(4), trials=16)
                > quiet.relative_error(np.ones(4), trials=16))

    def test_zero_input_zero_error(self):
        bar = ideal_crossbar()
        assert bar.relative_error(np.zeros(4)) == 0.0
