"""Unit coverage for the learned control policies and their interlock.

The closed-loop behaviour (SPSA pulling a misprogrammed switch back
into the paper's delay envelope under live scenarios) is exercised by
``benchmarks/test_control_loop.py``; these tests pin the mechanics —
episode accounting, the trend-cancelling schedule, blocking, gain
adaptation, bounds projection, gating — against small synthetic
plants that run in milliseconds.
"""

import math

import numpy as np
import pytest

from repro.control.learning import (
    CEMPolicy,
    DelayEnvelope,
    EnvelopeGate,
    ProgramBounds,
    SPSAPolicy,
)
from repro.control.loop import Action, AQMActuator, ControlLoop, SwitchSensor
from repro.netfunc.aqm.pcam_aqm import PCAMAQM


def congested(delay_s: float, drop_rate: float = 0.0) -> dict:
    return {"packets": 1000, "drops": int(1000 * drop_rate),
            "drop_rate": drop_rate, "delay_s": delay_s}


def make_policy(cls=SPSAPolicy, target=0.120, rel=0.5, seed=0, **kw):
    return cls(seed, np.log([target, rel]), **kw)


class TestDelayEnvelope:
    def test_defaults_are_the_paper_objective(self):
        env = DelayEnvelope()
        assert env.target_s == pytest.approx(0.020)
        assert env.halfwidth_s == pytest.approx(0.010)

    def test_rejects_inverted_band(self):
        with pytest.raises(ValueError):
            DelayEnvelope(target_s=0.010, halfwidth_s=0.020)

    def test_within(self):
        env = DelayEnvelope()
        assert env.within(0.020) and env.within(0.0295)
        assert not env.within(0.031) and not env.within(0.009)

    def test_signal_requires_real_congestion(self):
        env = DelayEnvelope()
        assert not env.has_signal({"packets": 0, "delay_s": 1.0})
        # Inside (and hovering just above) the envelope: noise.
        assert not env.has_signal(congested(0.021))
        assert not env.has_signal(congested(0.029))
        # Beyond the upper edge, or drop activity: signal.
        assert env.has_signal(congested(0.031))
        assert env.has_signal(congested(0.005, drop_rate=0.05))

    def test_score_is_scale_free_with_drop_penalty(self):
        env = DelayEnvelope()
        assert env.score(congested(0.020)) == pytest.approx(0.0)
        assert env.score(congested(0.040)) == \
            pytest.approx(env.score(congested(0.010)))
        assert env.score(congested(0.020, drop_rate=0.1)) == \
            pytest.approx(env.drop_weight * 0.1)

    def test_edge_score(self):
        env = DelayEnvelope()
        assert env.edge_score == pytest.approx(math.log(0.030 / 0.020))


class TestProgramBounds:
    def test_clamp_log_projects_into_the_box(self):
        bounds = ProgramBounds()
        wild = np.log([5.0, 3.0])
        target, rel = np.exp(bounds.clamp_log(wild))
        assert target == pytest.approx(bounds.max_target_s)
        assert rel == pytest.approx(bounds.max_rel_deviation)
        low = np.log([1e-6, 1e-3])
        target, rel = np.exp(bounds.clamp_log(low))
        assert target == pytest.approx(bounds.min_target_s)
        assert rel == pytest.approx(bounds.min_rel_deviation)

    def test_rejects_bad_boxes(self):
        with pytest.raises(ValueError):
            ProgramBounds(min_target_s=0.1, max_target_s=0.01)
        with pytest.raises(ValueError):
            ProgramBounds(min_rel_deviation=0.9, max_rel_deviation=0.2)


class TestSPSAPolicy:
    def test_windows_without_signal_advance_nothing(self):
        policy = make_policy()
        before = policy.programming
        assert policy.decide(0.0, congested(0.021)) == ()
        assert policy.episodes == 0
        assert policy.programming == before

    def test_schedule_is_trend_cancelling(self):
        policy = make_policy()
        signs = []
        for tick in range(8):
            actions = policy.decide(float(tick), congested(0.100))
            (action,) = actions
            target, _ = action.args
            centre, _ = policy.programming
            signs.append("plus" if target > centre else "minus")
        # Two full iterations of the +,-,-,+ deployment order.
        assert signs[:4] == ["plus", "minus", "minus", "plus"]
        assert policy.iteration >= 1

    def test_deployments_stay_inside_bounds(self):
        bounds = ProgramBounds()
        policy = make_policy(target=0.199, rel=0.89)
        for tick in range(12):
            for action in policy.decide(float(tick), congested(0.150)):
                target, deviation = action.args
                assert bounds.min_target_s <= target \
                    <= bounds.max_target_s * (1 + 1e-9)
                assert 0.0 < deviation < target

    def test_converges_on_a_synthetic_plant(self):
        """Measured delay == deployed target.

        The loop must pull the plant inside the envelope and then go
        quiet: windows inside the band carry no signal, so a
        converged sweep stops dithering the live programming.
        """
        policy = make_policy(target=0.120)
        deployed = policy.programming[0]
        for tick in range(200):
            actions = policy.decide(float(tick), congested(deployed))
            if actions:
                deployed = actions[-1].args[0]
        envelope = policy.envelope
        assert deployed <= envelope.target_s + envelope.halfwidth_s
        episodes = policy.episodes
        policy.decide(999.0, congested(deployed))
        assert policy.episodes == episodes  # quiescent once in band

    def test_blocking_reverts_a_flung_step(self):
        policy = make_policy(target=0.050)
        # Iteration 1: plus candidates measure worse than minus, so
        # closing it takes a real step away from the start centre.
        delays = [0.080, 0.080, 0.050, 0.050, 0.080,
                  0.450, 0.450, 0.450, 0.450]
        baseline = policy.theta.copy()
        for tick, delay in enumerate(delays[:5]):
            policy.decide(float(tick), congested(delay))
        assert policy._prev is not None
        centre_after_step = policy.theta.copy()
        assert not np.allclose(centre_after_step, baseline)
        # Iteration 2: the stepped-into centre measures far worse
        # than the baseline — the step must be reverted.
        for tick, delay in enumerate(delays[5:], start=5):
            policy.decide(float(tick), congested(delay))
        assert policy.blocked == 1
        assert np.allclose(policy.theta, baseline)
        # Baseline cleared: the next bad iteration steps, not blocks.
        assert policy._prev is None

    def test_gain_shrinks_when_converged_and_expands_when_stale(self):
        policy = make_policy()
        for tick in range(4):
            policy.decide(float(tick), congested(0.100))
        policy.decide(4.0, congested(0.100))
        assert policy.gain == pytest.approx(1.0)  # stale: stays open
        converged = make_policy()
        # Signalful but cheap windows (drop activity, near-target
        # delay) score below the envelope edge: the gain shrinks.
        for tick in range(5):
            converged.decide(float(tick), congested(0.021, 0.05))
        assert converged.gain < 1.0
        assert converged.gain >= converged.gain_floor

    def test_sweep_is_deterministic_in_the_seed(self):
        runs = []
        for _ in range(2):
            policy = make_policy(seed=7)
            trail = []
            for tick in range(40):
                for action in policy.decide(float(tick),
                                            congested(0.080)):
                    trail.append(action.args)
            runs.append(trail)
        assert runs[0] == runs[1]
        other = make_policy(seed=8)
        trail = []
        for tick in range(40):
            for action in other.decide(float(tick), congested(0.080)):
                trail.append(action.args)
        assert trail != runs[0]

    def test_skipped_windows_do_not_shift_the_draw_sequence(self):
        noisy = make_policy(seed=3)
        clean = make_policy(seed=3)
        noisy_trail, clean_trail = [], []
        for tick in range(30):
            for action in clean.decide(float(tick), congested(0.080)):
                clean_trail.append(action.args)
            # The noisy twin sees a benign window between every
            # congested one; its learned trajectory is identical.
            noisy.decide(float(tick) - 0.5, congested(0.0005))
            for action in noisy.decide(float(tick), congested(0.080)):
                noisy_trail.append(action.args)
        assert noisy_trail == clean_trail


class TestCEMPolicy:
    def test_generation_refits_toward_the_elite(self):
        policy = make_policy(CEMPolicy, target=0.120)
        # Plant: measured delay == deployed target.
        deployed = policy.programming[0]
        for tick in range(120):
            actions = policy.decide(float(tick), congested(deployed))
            if actions:
                deployed = actions[-1].args[0]
        assert policy.generation >= 2
        assert policy.best_programming[0] < 0.120

    def test_sigma_never_collapses(self):
        policy = make_policy(CEMPolicy)
        for tick in range(120):
            policy.decide(float(tick), congested(0.020, 0.01))
        assert (policy.sigma >= policy.min_spread - 1e-12).all()

    def test_rejects_bad_elite_fraction(self):
        with pytest.raises(ValueError):
            make_policy(CEMPolicy, population=4, elite=5)


class TestEnvelopeGate:
    def make_gate(self, **kwargs):
        aqm = PCAMAQM(rng=np.random.default_rng(0))
        gate = EnvelopeGate(AQMActuator(aqm), [aqm], **kwargs)
        return aqm, gate

    def test_healthy_retarget_commits(self):
        aqm, gate = self.make_gate()
        assert gate.apply(Action("retarget", (0.010, 0.004)))
        assert aqm.target_delay_s == pytest.approx(0.010)
        assert gate.checks == 1
        assert gate.rejections == 0 and gate.violations == 0

    def test_degraded_table_refuses_candidates(self):
        aqm, _ = self.make_gate()

        class Wrapped:
            degraded = True
            analog = aqm

        gate = EnvelopeGate(AQMActuator(aqm), [Wrapped()])
        assert not gate.apply(Action("retarget", (0.010, 0.004)))
        assert gate.rejections == 1
        assert aqm.target_delay_s == pytest.approx(0.020)

    def test_out_of_envelope_write_rolls_back(self, monkeypatch):
        aqm, gate = self.make_gate()
        deviations = iter([0.0, 0.5])  # pre-check passes, probe fails

        def fake_deviation(analog):
            return next(deviations)

        monkeypatch.setattr(gate, "deviation", fake_deviation)
        assert not gate.apply(Action("retarget", (0.010, 0.004)))
        assert gate.violations == 1
        # Rolled back to the pre-apply programming.
        assert aqm.target_delay_s == pytest.approx(0.020)
        assert aqm.max_deviation_s == pytest.approx(0.010)

    def test_repairs_pass_through_ungated(self):
        aqm, gate = self.make_gate()
        checks = gate.checks
        assert gate.apply(Action("reprogram_intended"))
        assert gate.checks == checks  # no health check consumed


class TestSensingAndActuation:
    def test_actuator_keeps_the_switch_uniform(self):
        aqms = [PCAMAQM(rng=np.random.default_rng(i)) for i in range(3)]
        actuator = AQMActuator(*aqms)
        assert actuator.apply(Action("retarget", (0.008, 0.003)))
        for aqm in aqms:
            assert aqm.target_delay_s == pytest.approx(0.008)
        with pytest.raises(ValueError):
            actuator.apply(Action("format_tables"))

    def test_switch_sensor_counts_every_queue_loss(self):
        class FakeVerdict:
            def __init__(self, value):
                self.value = value

        counts = {FakeVerdict("queued"): 90,
                  FakeVerdict("dropped_aqm"): 6,
                  FakeVerdict("dropped_overflow"): 3,
                  FakeVerdict("dropped_acl"): 1}
        assert SwitchSensor._queue_drops(counts) == 9

    def test_switch_sensor_rejects_unknown_source(self):
        with pytest.raises(ValueError):
            SwitchSensor(object(), delay_source="oracle")

    def test_loop_paces_on_the_sim_clock(self):
        sensed, decided = [], []

        class Sensor:
            def sense(self, now):
                sensed.append(now)
                return congested(0.100)

        class Policy:
            def decide(self, now, observation):
                decided.append(now)
                return ()

        class Sink:
            def apply(self, action):
                return True

        loop = ControlLoop(Sensor(), Policy(), Sink(),
                           min_interval_s=1.0)
        for now in (0.0, 0.2, 0.9, 1.05, 1.5, 2.2):
            loop.step(now)
        assert sensed == [0.0, 1.05, 2.2]
        assert decided == sensed
        assert loop.decisions == 3
