"""Wire-format header parsing."""

import pytest

from repro.dataplane.parser import (
    HeaderParser,
    ParseError,
    PROTO_TCP,
    PROTO_UDP,
    build_ethernet_frame,
    build_ipv4_packet,
)


def make_frame(**kwargs):
    kwargs.setdefault("src_ip", "10.0.0.1")
    kwargs.setdefault("dst_ip", "192.168.1.2")
    return build_ethernet_frame(build_ipv4_packet(**kwargs))


class TestFrameParsing:
    def test_five_tuple_extracted(self):
        parser = HeaderParser()
        packet = parser.parse_frame(make_frame(
            protocol=PROTO_TCP, src_port=5555, dst_port=443))
        assert packet.field("src_ip") == "10.0.0.1"
        assert packet.field("dst_ip") == "192.168.1.2"
        assert packet.field("protocol") == PROTO_TCP
        assert packet.field("src_port") == 5555
        assert packet.field("dst_port") == 443
        assert parser.parsed == 1

    def test_udp_ports_extracted(self):
        packet = HeaderParser().parse_frame(make_frame(
            protocol=PROTO_UDP, src_port=53, dst_port=53))
        assert packet.field("src_port") == 53

    def test_mac_addresses_extracted(self):
        frame = build_ethernet_frame(
            build_ipv4_packet("1.1.1.1", "2.2.2.2"),
            eth_src="aa:bb:cc:dd:ee:ff")
        packet = HeaderParser().parse_frame(frame)
        assert packet.field("eth_src") == "aa:bb:cc:dd:ee:ff"

    def test_ttl_and_dscp(self):
        packet = HeaderParser().parse_frame(make_frame(ttl=7, dscp=46))
        assert packet.field("ttl") == 7
        assert packet.field("dscp") == 46

    def test_high_dscp_maps_to_priority_zero(self):
        cs6 = HeaderParser().parse_frame(make_frame(dscp=48))
        normal = HeaderParser().parse_frame(make_frame(dscp=0))
        assert cs6.priority == 0
        assert normal.priority == 1

    def test_size_includes_frame_overhead(self):
        payload = b"x" * 100
        packet = HeaderParser().parse_frame(make_frame(payload=payload))
        assert packet.size_bytes >= 14 + 20 + 8 + 100

    def test_non_transport_protocol_no_ports(self):
        packet = HeaderParser().parse_frame(make_frame(protocol=1))
        assert packet.field("src_port") is None


class TestErrors:
    def test_short_frame_rejected(self):
        parser = HeaderParser()
        with pytest.raises(ParseError):
            parser.parse_frame(b"\x00" * 5)
        assert parser.errors == 1

    def test_non_ipv4_ethertype_rejected(self):
        frame = build_ethernet_frame(b"payload", ethertype=0x86DD)
        with pytest.raises(ParseError):
            HeaderParser().parse_frame(frame)

    def test_short_ip_packet_rejected(self):
        with pytest.raises(ParseError):
            HeaderParser().parse_ipv4(b"\x45\x00\x00")

    def test_wrong_ip_version_rejected(self):
        packet = bytearray(build_ipv4_packet("1.1.1.1", "2.2.2.2"))
        packet[0] = (6 << 4) | 5
        with pytest.raises(ParseError):
            HeaderParser().parse_ipv4(bytes(packet))

    def test_bad_ihl_rejected(self):
        packet = bytearray(build_ipv4_packet("1.1.1.1", "2.2.2.2"))
        packet[0] = (4 << 4) | 2  # IHL below minimum
        with pytest.raises(ParseError):
            HeaderParser().parse_ipv4(bytes(packet))

    def test_bad_mac_rejected(self):
        with pytest.raises(ValueError):
            build_ethernet_frame(b"", eth_src="not-a-mac")
