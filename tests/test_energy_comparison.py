"""The Table 1 harness."""

import pytest

from repro.energy.comparison import (
    Table1Row,
    build_table1,
    format_table1,
    improvement_factor,
    measured_pcam_row,
)
from repro.tcam.baselines import Computation, Technology


def test_nine_rows(small_dataset):
    rows = build_table1(small_dataset)
    assert len(rows) == 9
    assert sum(1 for row in rows if row.measured) == 1


def test_pcam_row_measured_from_dataset(small_dataset):
    row = measured_pcam_row(small_dataset)
    assert row.computation is Computation.ANALOG
    assert row.technology is Technology.MEMRISTOR
    assert row.latency_ns == 1.0
    assert row.energy_fj_per_bit == pytest.approx(0.01, rel=0.15)


def test_improvement_factor_at_least_50x(small_dataset):
    rows = build_table1(small_dataset)
    assert improvement_factor(rows) >= 50.0


def test_pcam_beats_every_digital_row(small_dataset):
    rows = build_table1(small_dataset)
    pcam = next(row for row in rows if row.measured)
    for row in rows:
        if not row.measured:
            assert pcam.energy_fj_per_bit < row.energy_fj_per_bit / 50.0


def test_improvement_requires_measured_row():
    rows = [Table1Row("x", "1", Computation.DIGITAL,
                      Technology.TRANSISTOR, 1.0, 1.0)]
    with pytest.raises(ValueError):
        improvement_factor(rows)


def test_format_renders_all_rows(small_dataset):
    rows = build_table1(small_dataset)
    lines = format_table1(rows)
    assert len(lines) == 2 + 9 + 1
    assert any("pCAM" in line for line in lines)
    assert "improvement over best digital" in lines[-1]
