"""Memristor-based TCAM: same semantics, device-derived energy."""

import pytest

from repro.energy.ledger import ACCOUNT_COMPUTE, ACCOUNT_MOVEMENT
from repro.tcam.mtcam import MemristorTCAM
from repro.tcam.tcam import TCAM


def make_pair(width=8):
    digital = TCAM(width)
    memristor = MemristorTCAM(width)
    for cam in (digital, memristor):
        cam.add("1" * width)
        cam.add("x" * (width // 2) + "0" * (width - width // 2))
    return digital, memristor


def test_match_semantics_identical_to_digital():
    digital, memristor = make_pair()
    for key in range(0, 256, 7):
        a = digital.search(key)
        b = memristor.search(key)
        assert a.matched_indices == b.matched_indices
        assert a.best_index == b.best_index


def test_no_data_movement_energy():
    _, memristor = make_pair()
    memristor.search(0)
    assert memristor.ledger.account(ACCOUNT_MOVEMENT) == 0.0
    assert memristor.ledger.account(ACCOUNT_COMPUTE) > 0.0


def test_search_energy_positive_and_recorded():
    _, memristor = make_pair()
    result = memristor.search(0b11111111)
    assert result.energy_j > 0.0
    assert memristor.searches == 1


def test_mismatches_cost_more_than_matches():
    memristor = MemristorTCAM(8)
    memristor.add("1" * 8)
    all_match = memristor.search(0b11111111).energy_j
    all_miss = memristor.search(0b00000000).energy_j
    assert all_miss > all_match


def test_energy_per_bit_below_transistor_baseline():
    # The memristor TCAM must beat the 0.58 fJ/bit transistor figure
    # in the mostly-matching regime that searches operate in.
    memristor = MemristorTCAM(16)
    per_bit = memristor.energy_per_bit_for(mismatch_fraction=0.1)
    assert per_bit < 0.58e-15


def test_energy_per_bit_monotone_in_mismatch_rate():
    memristor = MemristorTCAM(16)
    assert (memristor.energy_per_bit_for(0.9)
            > memristor.energy_per_bit_for(0.1))


def test_energy_per_bit_validates():
    with pytest.raises(ValueError):
        MemristorTCAM(8).energy_per_bit_for(1.5)


def test_search_voltage_validated():
    with pytest.raises(ValueError):
        MemristorTCAM(8, search_voltage_v=0.0)


def test_key_width_validated():
    from repro.tcam.tcam import key_from_int
    with pytest.raises(ValueError):
        MemristorTCAM(8).search(key_from_int(1, 4))


def test_batch_search_energy_matches_scalar_loop():
    import numpy as np
    from repro.tcam.tcam import key_matrix

    _, batch = make_pair()
    _, scalar = make_pair()
    values = np.arange(0, 256, 7, dtype=np.uint64)
    result = batch.search_batch(key_matrix(values, 8))
    scalar_energy = 0.0
    for row, value in enumerate(values):
        outcome = scalar.search(int(value))
        scalar_energy += outcome.energy_j
        expected = -1 if outcome.best_index is None else outcome.best_index
        assert result.best_indices[row] == expected
    assert result.energy_j == pytest.approx(scalar_energy)
    # Colocalized compute/storage: everything on the compute account.
    assert batch.ledger.account(ACCOUNT_MOVEMENT) == 0.0
    assert batch.ledger.account(ACCOUNT_COMPUTE) == pytest.approx(
        scalar.ledger.account(ACCOUNT_COMPUTE))
