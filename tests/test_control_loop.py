"""Intent-driven closed-loop AQM control."""

import numpy as np
import pytest

from repro.control import Intent, IntentController
from repro.netfunc.aqm.pcam_aqm import PCAMAQM


def make_aqm(**kwargs):
    kwargs.setdefault("rng", np.random.default_rng(1))
    kwargs.setdefault("adaptation", False)
    return PCAMAQM(**kwargs)


class TestRetarget:
    def test_retarget_moves_the_band(self):
        aqm = make_aqm(target_delay_s=0.020, max_deviation_s=0.010)
        aqm.retarget(0.040)
        assert aqm.target_delay_s == pytest.approx(0.040)
        # Relative band width preserved: 10/20 -> 20/40.
        assert aqm.max_deviation_s == pytest.approx(0.020)

    def test_retargeted_aqm_drops_at_the_new_band(self):
        class Queue:
            backlog_packets = 400
            backlog_bytes = 200_000  # 40 ms at 40 Mb/s
            capacity_packets = 2000
            service_rate_bps = 40e6
            last_sojourn_s = 0.04

        tight = make_aqm(target_delay_s=0.020)
        loose = make_aqm(target_delay_s=0.020,
                         rng=np.random.default_rng(1))
        loose.retarget(0.100)
        for step in range(30):
            now = step * 0.01
            tight_pdp = tight.pdp(Queue(), now)
            loose_pdp = loose.pdp(Queue(), now)
        assert tight_pdp > 0.9     # 40 ms >> 20 ms band
        assert loose_pdp < 0.2     # 40 ms below the 100 ms band

    def test_explicit_deviation(self):
        aqm = make_aqm()
        aqm.retarget(0.050, max_deviation_s=0.005)
        assert aqm.max_deviation_s == pytest.approx(0.005)


class TestIntent:
    def test_validation(self):
        with pytest.raises(ValueError):
            Intent(max_delay_s=0.01, max_drop_rate=0.1,
                   min_delay_s=0.02)
        with pytest.raises(ValueError):
            Intent(max_delay_s=0.1, max_drop_rate=0.0)


class TestIntentController:
    def make(self, **kwargs):
        aqm = make_aqm(target_delay_s=0.020)
        intent = Intent(max_delay_s=0.080, max_drop_rate=0.05)
        kwargs.setdefault("min_interval_s", 1.0)
        return aqm, IntentController(aqm, intent, **kwargs)

    def test_excess_loss_raises_target(self):
        aqm, controller = self.make()
        controller.observe(0.0, packets=1000, drops=200)  # 20% loss
        controller.observe(1.5, packets=1000, drops=200)
        assert aqm.target_delay_s > 0.020
        assert controller.retargets >= 1

    def test_target_capped_at_intent_bound(self):
        aqm, controller = self.make()
        for step in range(20):
            controller.observe(float(step * 2), packets=1000,
                               drops=500)
        assert aqm.target_delay_s <= 0.080 + 1e-12

    def test_underused_budget_lowers_target(self):
        aqm, controller = self.make()
        controller.observe(0.0, packets=1000, drops=0)
        controller.observe(1.5, packets=1000, drops=0)
        assert aqm.target_delay_s < 0.020

    def test_target_floored_at_min_delay(self):
        aqm, controller = self.make()
        for step in range(20):
            controller.observe(float(step * 2), packets=1000, drops=0)
        assert aqm.target_delay_s >= controller.intent.min_delay_s - 1e-12

    def test_on_budget_no_retarget(self):
        aqm, controller = self.make()
        # 4% loss: inside (0.5*budget, budget] -> hold.
        controller.observe(0.0, packets=1000, drops=40)
        controller.observe(1.5, packets=1000, drops=40)
        assert aqm.target_delay_s == pytest.approx(0.020)
        assert controller.retargets == 0

    def test_decisions_rate_limited(self):
        aqm, controller = self.make(min_interval_s=10.0)
        controller.observe(0.0, packets=100, drops=50)
        controller.observe(1.0, packets=100, drops=50)
        controller.observe(2.0, packets=100, drops=50)
        assert controller.retargets <= 1

    def test_counter_validation(self):
        _, controller = self.make()
        with pytest.raises(ValueError):
            controller.observe(0.0, packets=10, drops=20)
        with pytest.raises(ValueError):
            controller.observe(0.0, packets=-1, drops=0)

    def test_interval_validated(self):
        aqm = make_aqm()
        intent = Intent(max_delay_s=0.08, max_drop_rate=0.05)
        with pytest.raises(ValueError):
            IntentController(aqm, intent, min_interval_s=0.0)
