"""Middleware ordering and idempotence on the staged runtime.

The stock middleware are designed to be order independent: tracing is
the only one opening spans, telemetry only swaps the chunk tally in
and flushes it, energy attribution only reads ledger totals.  These
tests register them in every permutation and require identical
verdicts, span nesting, telemetry totals and ledger totals.
"""

import itertools

import numpy as np
import pytest

from repro.dataplane.pipeline import AnalogPacketProcessor, Verdict
from repro.dataplane.fastpath import TelemetryTally
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.netfunc.firewall import Action, FirewallRule
from repro.observability import Observability
from repro.packet import Packet
from repro.runtime import (
    EnergyAttributionMiddleware,
    FaultPlanMiddleware,
    SupervisionMiddleware,
    TelemetryMiddleware,
    TracingMiddleware,
)

PERMUTATIONS = list(itertools.permutations(
    ["telemetry", "tracing", "energy"]))


def build_processor():
    obs = Observability()
    processor = AnalogPacketProcessor(
        n_ports=2,
        aqm_factory=lambda: PCAMAQM(rng=np.random.default_rng(11)),
        observability=obs)
    processor.add_firewall_rule(FirewallRule(
        action=Action.DENY, dst_prefix="203.0.113.0/24"))
    processor.add_route("10.0.0.0/8", 0)
    processor.add_route("192.168.0.0/16", 1)
    return processor, obs


def middleware_for(processor, obs, order):
    built = {
        "telemetry": TelemetryMiddleware(processor.telemetry,
                                         TelemetryTally),
        "tracing": TracingMiddleware(obs.tracer),
        "energy": EnergyAttributionMiddleware(processor.ledger),
    }
    return [built[name] for name in order]


def make_traffic(n=60, seed=3):
    rng = np.random.default_rng(seed)
    dsts = ["10.1.2.3", "192.168.7.7", "203.0.113.9", "8.8.8.8"]
    return [Packet(size_bytes=int(rng.integers(64, 1500)),
                   fields={"src_ip": "1.2.3.4",
                           "dst_ip": dsts[int(rng.integers(len(dsts)))],
                           "src_port": 1000, "dst_port": 80,
                           "protocol": 6})
            for _ in range(n)]


def span_shape(obs):
    """Span nesting as comparable (name, parent-name) pairs in order."""
    by_id = {span.span_id: span for span in obs.tracer.finished}
    return [(span.name,
             by_id[span.parent_id].name
             if span.parent_id in by_id else None)
            for span in obs.tracer.finished]


def run_with_order(order):
    processor, obs = build_processor()
    processor.use_middleware(middleware_for(processor, obs, order))
    results = processor.process_batch(make_traffic(), now=0.25,
                                      chunk_size=16)
    results += [processor.process(packet, now=0.5)
                for packet in make_traffic(n=5, seed=9)]
    return {
        "verdicts": [r.verdict for r in results],
        "ports": [r.port for r in results],
        "telemetry": processor.telemetry.snapshot(),
        "ledger_total": processor.ledger.total,
        "ledger_accounts": processor.energy_breakdown(),
        "spans": span_shape(obs),
        "by_stage": processor.energy_by_stage(),
    }


class TestOrderingIndependence:
    def test_all_permutations_equivalent(self):
        reference = run_with_order(PERMUTATIONS[0])
        assert reference["spans"], "tracing produced no spans"
        assert reference["by_stage"], "no energy attributed to stages"
        for order in PERMUTATIONS[1:]:
            observed = run_with_order(order)
            for field in reference:
                assert observed[field] == reference[field], \
                    f"middleware order {order} changed {field!r}"

    def test_matches_default_assembly(self):
        # The default middleware set is one of the permutations, so
        # an untouched processor must agree with the permuted ones.
        processor, obs = build_processor()
        results = processor.process_batch(make_traffic(), now=0.25,
                                          chunk_size=16)
        results += [processor.process(packet, now=0.5)
                    for packet in make_traffic(n=5, seed=9)]
        reference = run_with_order(PERMUTATIONS[0])
        assert [r.verdict for r in results] == reference["verdicts"]
        assert processor.telemetry.snapshot() == reference["telemetry"]
        assert processor.ledger.total == reference["ledger_total"]
        assert span_shape(obs) == reference["spans"]

    def test_energy_attribution_reads_do_not_charge(self):
        # Attribution must be observational: totals with and without
        # the middleware are identical.
        with_mw = run_with_order(PERMUTATIONS[0])["ledger_total"]
        processor, obs = build_processor()
        processor.use_middleware(middleware_for(
            processor, obs, ["telemetry", "tracing"]))
        processor.process_batch(make_traffic(), now=0.25,
                                chunk_size=16)
        for packet in make_traffic(n=5, seed=9):
            processor.process(packet, now=0.5)
        assert processor.ledger.total == with_mw


class TestRegistrationIdempotence:
    def test_reassembling_same_set_changes_nothing(self):
        processor, obs = build_processor()
        middleware = middleware_for(processor, obs,
                                    ["telemetry", "tracing", "energy"])
        processor.use_middleware(middleware)
        processor.use_middleware(middleware)  # re-register: no-op
        results = processor.process_batch(make_traffic(), now=0.25,
                                          chunk_size=16)
        results += [processor.process(packet, now=0.5)
                    for packet in make_traffic(n=5, seed=9)]
        reference = run_with_order(("telemetry", "tracing", "energy"))
        assert [r.verdict for r in results] == reference["verdicts"]
        assert processor.telemetry.snapshot() == \
            reference["telemetry"]

    def test_fault_plan_installers_run_once(self):
        installed = []
        mw = FaultPlanMiddleware([lambda: installed.append("a"),
                                  lambda: installed.append("b")])
        processor, obs = build_processor()
        processor.use_middleware(
            processor.default_middleware() + [mw])
        processor.use_middleware(
            processor.default_middleware() + [mw])
        assert installed == ["a", "b"]
        assert mw.installed == 2


class TestSupervisionMiddleware:
    def test_supervisor_called_once_per_chunk(self):
        ticks = []
        processor, obs = build_processor()
        processor.use_middleware(
            processor.default_middleware()
            + [SupervisionMiddleware(ticks.append)])
        processor.process_batch(make_traffic(n=40), now=0.5,
                                chunk_size=16)  # 3 chunks
        processor.process(make_traffic(n=1)[0], now=0.75)
        assert ticks == [0.5, 0.5, 0.5, 0.75]

    def test_verdicts_unchanged_by_supervision(self):
        reference = run_with_order(PERMUTATIONS[0])
        processor, obs = build_processor()
        processor.use_middleware(
            processor.default_middleware()
            + [SupervisionMiddleware(lambda now: None)])
        results = processor.process_batch(make_traffic(), now=0.25,
                                          chunk_size=16)
        assert [r.verdict for r in results] == \
            reference["verdicts"][:len(results)]
