"""The Nb:SrTiO3 memristor device model."""

import math

import numpy as np
import pytest

from repro.device.memristor import MemristorParams, NbSTOMemristor
from repro.device.variability import VariabilityModel


def make_device(state: float = 0.0, **kwargs) -> NbSTOMemristor:
    kwargs.setdefault("variability", VariabilityModel.ideal())
    return NbSTOMemristor(state=state, **kwargs)


class TestParams:
    def test_defaults_have_wide_window(self):
        params = MemristorParams()
        assert params.resistance_window > 1e6

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            MemristorParams(r_on=1e9, r_off=100.0)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ValueError):
            MemristorParams(r_on=-1.0)

    def test_rejects_bad_rectification(self):
        with pytest.raises(ValueError):
            MemristorParams(rectification=1.5)


class TestStaticBehaviour:
    def test_paper_energy_anchor_lrs(self):
        # LRS read at 4 V / 1 ns dissipates 0.16 nJ (Sec. 6 maximum).
        device = make_device(state=1.0)
        read = device.read(4.0, 1e-9, noisy=False)
        assert read.energy_j == pytest.approx(1.6e-10, rel=1e-6)

    def test_paper_energy_anchor_hrs(self):
        # HRS read at 4 V / 1 ns dissipates 0.01 fJ (Sec. 6 minimum).
        device = make_device(state=0.0)
        read = device.read(4.0, 1e-9, noisy=False)
        assert read.energy_j == pytest.approx(1e-17, rel=1e-6)

    def test_resistance_exponential_in_state(self):
        r_mid = make_device(state=0.5).resistance()
        r_on = make_device(state=1.0).resistance()
        r_off = make_device(state=0.0).resistance()
        assert r_mid == pytest.approx(math.sqrt(r_on * r_off), rel=1e-6)

    def test_current_is_rectifying(self):
        device = make_device(state=0.8)
        forward = device.current(2.0)
        reverse = device.current(-2.0)
        assert reverse < 0.0
        assert abs(reverse) < 0.1 * forward

    def test_current_superlinear_forward(self):
        device = make_device(state=0.5)
        # Doubling the voltage more than doubles the current.
        assert device.current(4.0) > 2.0 * device.current(2.0)

    def test_zero_voltage_zero_current(self):
        assert make_device(state=0.7).current(0.0) == 0.0

    def test_read_counts_and_power(self):
        device = make_device(state=1.0)
        read = device.read(1.0, 2e-9, noisy=False)
        assert device.reads == 1
        assert read.power_w == pytest.approx(
            abs(read.current_a * read.voltage_v))
        assert read.energy_j == pytest.approx(read.power_w * 2e-9)

    def test_read_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            make_device().read(1.0, 0.0)

    def test_state_setter_validates(self):
        device = make_device()
        with pytest.raises(ValueError):
            device.state = 1.5

    def test_read_noise_changes_current(self):
        noisy = NbSTOMemristor(
            state=0.5,
            variability=VariabilityModel(read_sigma=0.1, device_sigma=0.0),
            rng=np.random.default_rng(0))
        currents = {noisy.current(1.0, noisy=True) for _ in range(8)}
        assert len(currents) > 1

    def test_device_factor_shifts_resistance(self):
        devices = [NbSTOMemristor(
            state=0.5,
            variability=VariabilityModel(read_sigma=0.0, device_sigma=0.3),
            rng=np.random.default_rng(seed)) for seed in range(6)]
        resistances = {round(d.resistance(), 3) for d in devices}
        assert len(resistances) > 1


class TestProgramming:
    def test_below_threshold_no_motion(self):
        device = make_device(state=0.5)
        device.apply_pulse(0.5, 10e-9)
        assert device.state == pytest.approx(0.5)

    def test_positive_pulse_moves_toward_lrs(self):
        device = make_device(state=0.2)
        device.apply_pulse(2.0, 5e-9)
        assert device.state > 0.2

    def test_negative_pulse_moves_toward_hrs(self):
        device = make_device(state=0.8)
        device.apply_pulse(-2.0, 5e-9)
        assert device.state < 0.8

    def test_state_stays_bounded(self):
        device = make_device(state=0.9)
        for _ in range(20):
            device.apply_pulse(3.5, 100e-9)
        assert device.state <= 1.0

    def test_pulse_dissipates_energy(self):
        device = make_device(state=0.5)
        energy = device.apply_pulse(2.0, 5e-9)
        assert energy > 0.0

    def test_pulse_rejects_bad_arguments(self):
        device = make_device()
        with pytest.raises(ValueError):
            device.apply_pulse(2.0, 0.0)
        with pytest.raises(ValueError):
            device.apply_pulse(2.0, 1e-9, substeps=0)

    @pytest.mark.parametrize("target", [0.0, 0.1, 0.25, 0.5, 0.9, 1.0])
    def test_program_and_verify_converges(self, target):
        device = make_device(state=0.5)
        device.program_state(target, tolerance=0.01)
        assert device.state == pytest.approx(target, abs=0.011)

    def test_program_returns_energy(self):
        device = make_device(state=0.0)
        assert device.program_state(0.7) > 0.0

    def test_program_noop_when_already_there(self):
        device = make_device(state=0.5)
        assert device.program_state(0.5) == 0.0
        assert device.pulses == 0

    def test_program_rejects_bad_target(self):
        with pytest.raises(ValueError):
            make_device().program_state(1.2)
        with pytest.raises(ValueError):
            make_device().program_state(0.5, tolerance=0.0)

    def test_state_velocity_sign_and_threshold(self):
        device = make_device(state=0.5)
        assert device.state_velocity(0.9) == 0.0
        assert device.state_velocity(2.0) > 0.0
        assert device.state_velocity(-2.0) < 0.0


class TestRetention:
    def test_no_drift_by_default(self):
        device = make_device(state=0.6)
        device.relax(1000.0)
        assert device.state == pytest.approx(0.6)

    def test_drift_relaxes_toward_target(self):
        device = NbSTOMemristor(
            state=1.0,
            variability=VariabilityModel(read_sigma=0.0, device_sigma=0.0,
                                         drift_rate_per_s=0.1,
                                         drift_target=0.0))
        device.relax(10.0)
        assert 0.3 < device.state < 0.4  # e^-1 of the way


def test_repr_mentions_state_and_resistance():
    text = repr(make_device(state=0.25))
    assert "state=0.250" in text
    assert "ohm" in text
