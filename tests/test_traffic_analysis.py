"""pCAM-based traffic classification."""

import numpy as np
import pytest

from repro.netfunc.traffic_analysis import (
    FlowFeatures,
    TrafficClassProfile,
    TrafficClassifier,
)

WEB = TrafficClassProfile("web", {
    "mean_packet_size": (200.0, 600.0, 200.0),
    "mean_interarrival_s": (0.01, 0.2, 0.05),
    "burstiness": (0.5, 1.5, 0.5),
})
VIDEO = TrafficClassProfile("video", {
    "mean_packet_size": (1000.0, 1500.0, 200.0),
    "mean_interarrival_s": (0.001, 0.01, 0.005),
    "burstiness": (0.2, 1.0, 0.5),
})
BULK = TrafficClassProfile("bulk", {
    "mean_packet_size": (1200.0, 1500.0, 150.0),
    "mean_interarrival_s": (0.0001, 0.002, 0.001),
    "burstiness": (0.0, 0.6, 0.3),
})


def make_classifier():
    return TrafficClassifier([WEB, VIDEO, BULK])


def test_exact_profile_classifies_deterministically():
    classifier = make_classifier()
    flow = FlowFeatures(mean_packet_size=400.0,
                        mean_interarrival_s=0.05, burstiness=1.0)
    name, score = classifier.classify(flow)
    assert name == "web"
    assert score == pytest.approx(1.0)


def test_video_flow_classified():
    classifier = make_classifier()
    flow = FlowFeatures(mean_packet_size=1300.0,
                        mean_interarrival_s=0.005, burstiness=0.5)
    name, _ = classifier.classify(flow)
    assert name in ("video", "bulk")  # overlapping profiles


def test_partial_match_flow_still_classified():
    # RQ1: a flow matching no profile box exactly still gets the
    # nearest class with a graded score.
    classifier = make_classifier()
    flow = FlowFeatures(mean_packet_size=700.0,
                        mean_interarrival_s=0.05, burstiness=1.2)
    name, score = classifier.classify(flow)
    assert 0.0 < score < 1.0
    assert name == "web"


def test_scores_one_per_class():
    classifier = make_classifier()
    flow = FlowFeatures(400.0, 0.05, 1.0)
    scores = classifier.scores(flow)
    assert set(scores) == {"web", "video", "bulk"}


def test_features_from_samples_poisson_burstiness():
    rng = np.random.default_rng(0)
    times = np.cumsum(rng.exponential(0.01, size=4000))
    sizes = np.full(4000, 500.0)
    features = FlowFeatures.from_samples(sizes, times)
    assert features.mean_packet_size == 500.0
    assert features.burstiness == pytest.approx(1.0, abs=0.1)


def test_features_from_samples_constant_rate():
    times = np.arange(100) * 0.01
    features = FlowFeatures.from_samples(np.full(100, 100.0), times)
    assert features.burstiness == pytest.approx(0.0, abs=1e-9)
    assert features.mean_interarrival_s == pytest.approx(0.01)


def test_features_require_two_packets():
    with pytest.raises(ValueError):
        FlowFeatures.from_samples(np.array([100.0]), np.array([0.0]))


def test_energy_charged():
    classifier = make_classifier()
    classifier.classify(FlowFeatures(400.0, 0.05, 1.0))
    assert classifier.ledger.total > 0.0


def test_profile_validation():
    with pytest.raises(ValueError):
        TrafficClassProfile("bad", {"mean_packet_size": (0, 1, 1)})
    with pytest.raises(ValueError):
        TrafficClassifier([])
    with pytest.raises(ValueError):
        TrafficClassifier([WEB, WEB])


def test_bad_window_rejected():
    profile = TrafficClassProfile("x", {
        "mean_packet_size": (600.0, 200.0, 100.0),  # lo > hi
        "mean_interarrival_s": (0.0, 1.0, 0.1),
        "burstiness": (0.0, 1.0, 0.1),
    })
    with pytest.raises(ValueError):
        profile.to_word()
