"""Shared fixtures: seeded RNGs and a small session-scoped dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device.dataset import MemristorDataset, generate_dataset
from repro.device.memristor import MemristorParams
from repro.device.variability import VariabilityModel


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_dataset() -> MemristorDataset:
    """A compact synthetic measurement campaign (shared, read-only)."""
    return generate_dataset(n_states=24, n_voltages=49,
                            include_sweeps=True,
                            include_pulse_trains=True, seed=7)


@pytest.fixture(scope="session")
def ideal_params() -> MemristorParams:
    return MemristorParams()


@pytest.fixture
def ideal_variability() -> VariabilityModel:
    return VariabilityModel.ideal()
