"""Shared fixtures: seeded RNGs, a small session-scoped dataset, and
the deterministic hypothesis profile every property suite runs under."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.device.dataset import MemristorDataset, generate_dataset
from repro.device.memristor import MemristorParams
from repro.device.variability import VariabilityModel

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis always in CI
    settings = None

if settings is not None:
    # Derandomised examples make tier-1 runs reproducible (no flaky
    # shrink sequences across machines); no deadline because CI boxes
    # stall unpredictably under coverage tracing.  Per-test @settings
    # decorators override only the keys they name, so derandomize
    # still applies to every suite.  Opt out locally with
    # HYPOTHESIS_PROFILE=default for randomised exploration.
    settings.register_profile("ci", derandomize=True, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_dataset() -> MemristorDataset:
    """A compact synthetic measurement campaign (shared, read-only)."""
    return generate_dataset(n_states=24, n_voltages=49,
                            include_sweeps=True,
                            include_pulse_trains=True, seed=7)


@pytest.fixture(scope="session")
def ideal_params() -> MemristorParams:
    return MemristorParams()


@pytest.fixture
def ideal_variability() -> VariabilityModel:
    return VariabilityModel.ideal()
