"""CSV exporters."""

import csv

import numpy as np
import pytest

from repro.analysis.export import (
    export_all,
    export_series_csv,
    export_table1_csv,
)


class TestSeriesCsv:
    def test_round_trip(self, tmp_path):
        path = export_series_csv(
            {"x": np.array([1.0, 2.0]), "y": np.array([3.0, 4.0])},
            tmp_path / "series.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x", "y"]
        assert float(rows[1][0]) == 1.0
        assert float(rows[2][1]) == 4.0

    def test_uneven_columns_padded(self, tmp_path):
        path = export_series_csv(
            {"long": np.arange(3), "short": np.arange(1)},
            tmp_path / "uneven.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[2][1] == ""

    def test_parent_directories_created(self, tmp_path):
        path = export_series_csv({"x": np.zeros(1)},
                                 tmp_path / "a" / "b" / "c.csv")
        assert path.exists()

    def test_empty_export_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_series_csv({}, tmp_path / "nope.csv")


class TestTable1Csv:
    def test_nine_rows_with_measured_flag(self, tmp_path,
                                          small_dataset):
        path = export_table1_csv(tmp_path / "table1.csv",
                                 dataset=small_dataset)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 9
        measured = [row for row in rows if row["measured"] == "True"]
        assert len(measured) == 1
        assert measured[0]["design"] == "pCAM"


@pytest.mark.slow
class TestExportAll:
    def test_all_figures_written(self, tmp_path, small_dataset):
        written = export_all(tmp_path / "out", quick=True,
                             dataset=small_dataset)
        names = {path.name for path in written}
        assert names == {
            "fig1_colocalization.csv",
            "fig2_state_machine.csv",
            "fig4_pcam_response.csv",
            "fig7a_aqm_output.csv",
            "fig7b_aqm_output.csv",
            "fig8_queue_management.csv",
            "table1_comparison.csv",
        }
        for path in written:
            assert path.stat().st_size > 0
