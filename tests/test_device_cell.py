"""Device-realised pCAM cell: noise, energy, fidelity."""

import numpy as np
import pytest

from repro.core.device_cell import DevicePCAMCell
from repro.core.pcam_cell import PCAMCell, prog_pcam
from repro.device.variability import VariabilityModel

PARAMS = prog_pcam(m1=1.5, m2=2.4, m3=2.6, m4=3.5)


def make_cell(variability=None, seed=1, **kwargs):
    return DevicePCAMCell(
        PARAMS,
        variability=variability or VariabilityModel(read_sigma=0.02,
                                                    device_sigma=0.0),
        rng=np.random.default_rng(seed), **kwargs)


class TestConstruction:
    def test_thresholds_must_fit_encodable_range(self):
        with pytest.raises(ValueError):
            DevicePCAMCell(prog_pcam(1.5, 2.4, 2.6, 3.5),
                           v_range=(0.0, 3.0))

    def test_invalid_voltage_range(self):
        with pytest.raises(ValueError):
            DevicePCAMCell(PARAMS, v_range=(4.0, -2.0))

    def test_programming_costs_energy(self):
        cell = make_cell()
        assert cell.programming_energy_j > 0.0

    def test_reprogram_updates_params(self):
        cell = make_cell()
        new_params = prog_pcam(0.0, 1.0, 2.0, 3.0)
        cell.program(new_params)
        assert cell.params == new_params


class TestFidelity:
    def test_tracks_ideal_response_closely(self):
        cell = make_cell()
        ideal = PCAMCell(PARAMS)
        xs = np.linspace(0.5, 4.0, 15)
        measured = np.mean([cell.response_array(xs) for _ in range(8)],
                           axis=0)
        expected = ideal.response_array(xs)
        assert np.max(np.abs(measured - expected)) < 0.12

    def test_deterministic_match_region_stable(self):
        cell = make_cell()
        values = [cell.response(2.5) for _ in range(12)]
        assert np.mean(values) > 0.95

    def test_deterministic_mismatch_region_stable(self):
        cell = make_cell()
        values = [cell.response(0.8) for _ in range(12)]
        assert np.mean(values) < 0.05

    def test_noise_creates_band_on_ramps(self):
        cell = make_cell()
        samples = [cell.response(2.0) for _ in range(24)]
        assert np.std(samples) > 0.0

    def test_ideal_cell_noise_free(self):
        cell = make_cell(variability=VariabilityModel.ideal())
        samples = {cell.response(2.0) for _ in range(6)}
        assert len(samples) == 1

    def test_negative_input_panel_b_regime(self):
        # Figure 7(b): thresholds below zero still decode correctly.
        params = prog_pcam(m1=-1.5, m2=-0.8, m3=0.0, m4=0.7)
        cell = DevicePCAMCell(
            params, variability=VariabilityModel(read_sigma=0.02,
                                                 device_sigma=0.0),
            rng=np.random.default_rng(2))
        assert np.mean([cell.response(-0.4) for _ in range(8)]) > 0.9
        assert np.mean([cell.response(-1.8) for _ in range(8)]) < 0.1

    def test_ideal_response_array_matches_reference(self):
        cell = make_cell()
        xs = np.linspace(0.0, 4.0, 9)
        np.testing.assert_allclose(cell.ideal_response_array(xs),
                                   PCAMCell(PARAMS).response_array(xs))


class TestEnergy:
    def test_evaluation_dissipates_energy(self):
        cell = make_cell()
        result = cell.evaluate(2.5)
        assert result.energy_j > 0.0
        assert result.latency_s == 1e-9

    def test_higher_input_voltage_costs_more(self):
        cell = make_cell(variability=VariabilityModel.ideal())
        low = cell.evaluate(1.0).energy_j
        high = cell.evaluate(3.9).energy_j
        assert high > low

    def test_callable_protocol(self):
        cell = make_cell()
        assert 0.0 <= cell(2.0) <= 1.0


def test_repr_is_informative():
    assert "PCAMCell" in repr(make_cell())
