"""The aCAM classification stage: spec, wiring, steering, energy.

Covers the dataplane side of the tentpole: the declarative
:class:`ClassifierSpec`, its compilation from a fitted tree, the
``SwitchSpec`` port validation, ``insert_stage`` slotting the stage
between the digital MATs and egress, per-class steering, the
``traffic_class`` column, scalar/batch parity, and the ledger account
the search joules land on.
"""

from __future__ import annotations

import pytest

from repro.dataplane import (
    ACAMClassifier,
    ClassificationStage,
    ClassifierSpec,
    SwitchSpec,
    Verdict,
    build_switch,
    classifier_spec_from_tree,
)
from repro.dataplane.classify import ACAM_SEARCH_ACCOUNT
from repro.netfunc.decision_tree import CARTTree, TreeNode
from repro.packet import Packet


def class_tree() -> CARTTree:
    """protocol <= 11.5 ? (size <= 1100 ? class 1 : class 2) : class 0."""
    root = TreeNode(
        feature=2, threshold=11.5,
        left=TreeNode(feature=0, threshold=1100.0,
                      left=TreeNode(prediction=1),
                      right=TreeNode(prediction=2)),
        right=TreeNode(prediction=0))
    return CARTTree.from_root(root, n_features=3)


FEATURES = ("size_bytes", "dst_port", "protocol")
STEERING = ((0, 0), (1, 1), (2, 2))


def spec(**overrides) -> ClassifierSpec:
    base = dict(class_to_port=STEERING, margin=2.0)
    base.update(overrides)
    return classifier_spec_from_tree(class_tree(), FEATURES, **base)


def packet(size: int, protocol: int, dst: str = "10.1.2.3") -> Packet:
    return Packet(size_bytes=size,
                  fields={"src_ip": "1.2.3.4", "dst_ip": dst,
                          "src_port": 1000, "dst_port": 80,
                          "protocol": protocol})


def switch_spec(**overrides) -> SwitchSpec:
    base = dict(n_ports=3, routes=(("10.0.0.0/8", 2),),
                classifier=spec())
    base.update(overrides)
    return SwitchSpec(**base)


class TestClassifierSpec:
    def test_needs_features_and_rows(self):
        with pytest.raises(ValueError, match="at least one feature"):
            ClassifierSpec(features=(), rows=((0, ()),))
        with pytest.raises(ValueError, match="at least one row"):
            ClassifierSpec(features=("f",), rows=())

    def test_row_arity_must_match_features(self):
        with pytest.raises(ValueError, match="has 1 intervals"):
            ClassifierSpec(features=("a", "b"),
                           rows=((0, ((None, 1.0),)),))

    def test_steering_must_name_known_classes(self):
        with pytest.raises(ValueError, match="unknown class 9"):
            ClassifierSpec(features=("f",),
                           rows=((0, ((None, None),)),),
                           class_to_port=((9, 0),))

    def test_steering_port_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="port must be >= 0"):
            ClassifierSpec(features=("f",),
                           rows=((0, ((None, None),)),),
                           class_to_port=((0, -1),))

    def test_margin_and_sharpness_validated(self):
        with pytest.raises(ValueError, match="margin"):
            ClassifierSpec(features=("f",),
                           rows=((0, ((None, None),)),), margin=-1.0)
        with pytest.raises(ValueError, match="sharpness"):
            ClassifierSpec(features=("f",),
                           rows=((0, ((None, None),)),), sharpness=0.0)

    def test_ports_property_lists_steered_ports(self):
        assert spec().ports == (0, 1, 2)

    def test_from_tree_emits_one_row_per_leaf_in_dfs_order(self):
        compiled = spec()
        assert compiled.features == FEATURES
        assert [label for label, _ in compiled.rows] == [1, 2, 0]
        # leaf 0: protocol <= 11.5 and size <= 1100
        label, intervals = compiled.rows[0]
        assert intervals[0] == (None, 1100.0)
        assert intervals[2] == (None, 11.5)

    def test_from_tree_checks_feature_arity(self):
        with pytest.raises(ValueError, match="one feature name"):
            classifier_spec_from_tree(class_tree(), ("a", "b"))


class TestSwitchSpecValidation:
    def test_classifier_ports_must_fit_the_switch(self):
        with pytest.raises(ValueError,
                           match="classifier steers to port 2"):
            switch_spec(n_ports=2, routes=(("10.0.0.0/8", 0),))

    def test_in_range_steering_accepted(self):
        assert switch_spec().classifier is not None


class TestWiring:
    def test_stage_slots_between_mats_and_egress(self):
        processor = build_switch(switch_spec())
        names = [stage.name for stage in processor.runtime.stages]
        assert names.index("digital_mats") \
            < names.index("acam_classifier") < names.index("egress")

    def test_classifier_shares_the_processor_ledger(self):
        processor = build_switch(switch_spec())
        assert processor.classifier.array.ledger is processor.ledger

    def test_insert_stage_rejects_duplicate_names(self):
        processor = build_switch(switch_spec())
        classifier = ACAMClassifier(spec())
        with pytest.raises(ValueError, match="duplicate stage name"):
            processor.insert_stage(ClassificationStage(classifier),
                                   before="egress")

    def test_insert_stage_rejects_unknown_anchor(self):
        processor = build_switch(SwitchSpec(n_ports=1))
        classifier = ACAMClassifier(spec())
        with pytest.raises(KeyError):
            processor.insert_stage(ClassificationStage(classifier),
                                   before="no_such_stage")

    def test_without_classifier_no_stage_is_added(self):
        processor = build_switch(switch_spec(classifier=None))
        names = [stage.name for stage in processor.runtime.stages]
        assert "acam_classifier" not in names


class TestSteering:
    def test_classes_steer_to_their_ports(self):
        processor = build_switch(switch_spec())
        cases = [(packet(200, 17), 0),   # class 0: protocol > 11.5
                 (packet(200, 6), 1),    # class 1: small TCP
                 (packet(1400, 6), 2)]   # class 2: large TCP
        for pkt, want_port in cases:
            result = processor.process(pkt, now=0.0)
            assert result.verdict is Verdict.QUEUED
            assert result.port == want_port

    def test_unmapped_class_keeps_the_digital_route(self):
        unmapped = spec(class_to_port=((1, 1),))
        processor = build_switch(switch_spec(classifier=unmapped))
        # class 0 has no steering entry: the LPM route (port 2) holds.
        result = processor.process(packet(200, 17), now=0.0)
        assert result.verdict is Verdict.QUEUED and result.port == 2
        steered = processor.process(packet(200, 6), now=0.0)
        assert steered.port == 1

    def test_batch_matches_scalar_for_every_packet(self):
        packets = [packet(150 + 37 * i, 6 if i % 3 else 17)
                   for i in range(40)]
        batched = build_switch(switch_spec()).process_batch(
            packets, now=0.0, chunk_size=16)
        scalar_proc = build_switch(switch_spec())
        for pkt, got in zip(packets, batched):
            want = scalar_proc.process(pkt, now=0.0)
            assert got.verdict is want.verdict
            assert got.port == want.port

    def test_dropped_packets_are_not_classified(self):
        processor = build_switch(switch_spec())
        result = processor.process(packet(200, 6, dst="8.8.8.8"),
                                   now=0.0)
        assert result.verdict is Verdict.DROPPED_NO_ROUTE
        assert processor.ledger.breakdown().get(
            ACAM_SEARCH_ACCOUNT, 0.0) == 0.0


class TestEnergyAndTelemetry:
    def test_search_energy_lands_on_the_acam_account(self):
        processor = build_switch(switch_spec())
        processor.process_batch([packet(200, 6) for _ in range(8)],
                                now=0.0)
        breakdown = processor.ledger.breakdown()
        assert breakdown[ACAM_SEARCH_ACCOUNT] > 0.0
        per_search = processor.classifier.array \
            .energy_model.per_classification_j(3, 3)
        assert breakdown[ACAM_SEARCH_ACCOUNT] == \
            pytest.approx(8 * per_search)

    def test_energy_attribution_books_the_stage(self):
        processor = build_switch(switch_spec())
        processor.process_batch([packet(200, 6) for _ in range(4)],
                                now=0.0)
        by_stage = processor.energy_by_stage()
        assert by_stage.get("acam_classifier", 0.0) > 0.0

    def test_classification_is_tallied_per_class(self):
        processor = build_switch(switch_spec())
        processor.process_batch(
            [packet(200, 17), packet(200, 6), packet(1400, 6)],
            now=0.0)
        stats = processor.telemetry.table("acam_classifier")
        assert stats.lookups == 3 and stats.hits == 3
        assert dict(stats.verdicts) == {"0": 1, "1": 1, "2": 1}
