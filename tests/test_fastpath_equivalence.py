"""Columnar fast path == scalar reference, chunk size aside.

Pins the tentpole equivalences: ``process_batch`` must agree with the
per-packet ``process`` loop verdict for verdict (including drop
reasons) and telemetry total for telemetry total, for every chunk
size, with the flow cache on or off, and with analog faults injected.
"""

import numpy as np
import pytest

from repro.dataplane.pipeline import AnalogPacketProcessor, Verdict
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.netfunc.firewall import Action, FirewallRule
from repro.packet import Packet
from repro.robustness import FaultInjector, StuckAtFault

#: Destinations per routed prefix, the denied prefix, and a prefix
#: with no route; plus packets that carry no destination at all.
DST_POOL = [
    "10.1.2.3", "10.1.2.4", "10.200.0.1",          # -> port 0
    "192.168.7.7", "192.168.9.1",                  # -> port 1
    "172.16.0.5", "172.16.3.3",                    # -> port 2
    "203.0.113.9", "203.0.113.10",                 # denied by ACL
    "198.51.100.1", "198.51.100.2",                # no route
    None, None,                                    # missing dst field
]
SRC_POOL = ["1.2.3.4", "5.6.7.8", "9.10.11.12"]


def build_processor(*, flow_cache_size=4096, aqm_seed=None,
                    fault_seed=None):
    factory = None
    if aqm_seed is not None:
        factory = lambda: PCAMAQM(rng=np.random.default_rng(aqm_seed))
    processor = AnalogPacketProcessor(n_ports=3, aqm_factory=factory,
                                      flow_cache_size=flow_cache_size)
    processor.add_firewall_rule(FirewallRule(
        action=Action.DENY, dst_prefix="203.0.113.0/24"))
    processor.add_route("10.0.0.0/8", 0)
    processor.add_route("192.168.0.0/16", 1)
    processor.add_route("172.16.0.0/12", 2)
    if fault_seed is not None:
        injector = FaultInjector(StuckAtFault(state="hrs"),
                                 cell_fraction=1.0,
                                 rng=np.random.default_rng(fault_seed))
        for port in range(processor.traffic_manager.n_ports):
            injector.inject_aqm(processor.traffic_manager.aqm(port))
    return processor


def make_traffic(n=240, seed=17):
    rng = np.random.default_rng(seed)
    packets = []
    for _ in range(n):
        fields = {"src_ip": SRC_POOL[int(rng.integers(len(SRC_POOL)))],
                  "src_port": int(rng.integers(1024, 1028)),
                  "dst_port": int(rng.integers(80, 83)),
                  "protocol": int(rng.choice([6, 17]))}
        dst = DST_POOL[int(rng.integers(len(DST_POOL)))]
        if dst is not None:
            fields["dst_ip"] = dst
        packets.append(Packet(size_bytes=int(rng.integers(64, 1500)),
                              priority=int(rng.random() < 0.3),
                              fields=fields))
    return packets


def observed(processor, results):
    """Everything the equivalence contract pins, as one comparable."""
    snapshot = processor.telemetry.snapshot()
    return {
        "verdicts": [r.verdict for r in results],
        "ports": [r.port for r in results],
        "verdict_counts": dict(processor.verdict_counts),
        "tables": snapshot["tables"],
        "events": snapshot["events"],
        "gauges": snapshot["gauges"],
    }


def run_scalar(processor, packets, now=0.5):
    return [processor.process(packet, now) for packet in packets]


class TestChunkSizeInvariance:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 240])
    def test_matches_per_packet_process(self, chunk_size):
        packets = make_traffic()
        scalar = build_processor(aqm_seed=5)
        batched = build_processor(aqm_seed=5)
        reference = observed(scalar, run_scalar(scalar, packets))
        batch = observed(batched, batched.process_batch(
            packets, now=0.5, chunk_size=chunk_size))
        assert batch == reference

    def test_every_verdict_kind_exercised(self):
        # The traffic mix must actually cover all digital drop paths,
        # or the equivalence above proves less than it claims.
        processor = build_processor(aqm_seed=5)
        processor.process_batch(make_traffic(), now=0.5)
        counts = processor.verdict_counts
        assert counts[Verdict.QUEUED] > 0
        assert counts[Verdict.DROPPED_ACL] > 0
        assert counts[Verdict.DROPPED_NO_ROUTE] > 0

    def test_flow_cache_transparent(self):
        packets = make_traffic()
        cached = build_processor(aqm_seed=5)
        uncached = build_processor(aqm_seed=5, flow_cache_size=0)
        with_cache = observed(cached, cached.process_batch(
            packets, now=0.5, chunk_size=64))
        without = observed(uncached, uncached.process_batch(
            packets, now=0.5, chunk_size=64))
        assert with_cache == without
        # ... while actually short-circuiting TCAM work.
        assert uncached.flow_cache is None
        assert cached.flow_cache.hits > 0
        assert cached.firewall.tcam.searches \
            < uncached.firewall.tcam.searches
        assert cached.lookup.tcam.searches \
            < uncached.lookup.tcam.searches

    def test_telemetry_totals_track_traffic_not_chunking(self):
        packets = make_traffic()
        processor = build_processor(aqm_seed=5)
        processor.process_batch(packets, now=0.5, chunk_size=32)
        firewall = processor.telemetry.table("firewall")
        assert firewall.lookups == len(packets)
        routed = processor.telemetry.table("ip_lookup")
        denied = processor.verdict_counts[Verdict.DROPPED_ACL]
        assert routed.lookups == len(packets) - denied


class TestFaultInjectedEquivalence:
    """Analog fault injection must not desynchronise the fast path."""

    @pytest.mark.parametrize("chunk_size", [1, 16, 240])
    def test_matches_per_packet_process_under_faults(self, chunk_size):
        packets = make_traffic(seed=23)
        scalar = build_processor(aqm_seed=7, fault_seed=99)
        batched = build_processor(aqm_seed=7, fault_seed=99)
        reference = observed(scalar, run_scalar(scalar, packets))
        batch = observed(batched, batched.process_batch(
            packets, now=0.5, chunk_size=chunk_size))
        assert batch == reference

    def test_faults_were_actually_injected(self):
        clean = build_processor(aqm_seed=7)
        faulted = build_processor(aqm_seed=7, fault_seed=99)
        stage = faulted.traffic_manager.aqm(0).pipeline.stage_names[0]
        clean_cell = clean.traffic_manager.aqm(0).pipeline.stage(stage)
        fault_cell = faulted.traffic_manager.aqm(0).pipeline.stage(
            stage)
        value = float(clean_cell.params.m2)
        assert fault_cell.response(value) != pytest.approx(
            clean_cell.response(value))


class TestScalarDelegation:
    def test_process_is_batch_of_one(self):
        # One packet through process() and through process_batch()
        # must produce identical outcomes AND identical table work.
        a = build_processor(aqm_seed=3)
        b = build_processor(aqm_seed=3)
        packet = make_traffic(n=1, seed=4)[0]
        scalar = a.process(packet, now=0.1)
        [batch] = b.process_batch([packet], now=0.1, chunk_size=1)
        assert scalar.verdict == batch.verdict
        assert scalar.port == batch.port
        assert a.firewall.tcam.searches == b.firewall.tcam.searches
        assert a.telemetry.snapshot() == b.telemetry.snapshot()
