"""Multi-bottleneck paths."""

import numpy as np
import pytest

from repro.netfunc.aqm.base import TailDropAQM
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.packet import Packet
from repro.simnet.engine import Simulator
from repro.simnet.multihop import (
    MultiBottleneckExperiment,
    build_path,
)


class TestBuildPath:
    def test_packets_traverse_all_hops(self):
        sim = Simulator()
        delivered = []
        queues = build_path(sim, [8e6, 8e6], [0.001, 0.001],
                            TailDropAQM,
                            on_delivery=delivered.append)
        packet = Packet(size_bytes=1000, created_at=0.0)
        queues[0].enqueue(packet)
        sim.run()
        assert len(delivered) == 1
        # Two 1 ms transmissions + two 1 ms propagation delays.
        assert sim.now == pytest.approx(0.004)

    def test_propagation_delay_counts(self):
        sim = Simulator()
        delivered_at = []
        queues = build_path(
            sim, [8e6], [0.010], TailDropAQM,
            on_delivery=lambda p: delivered_at.append(sim.now))
        queues[0].enqueue(Packet(size_bytes=1000, created_at=0.0))
        sim.run()
        assert delivered_at[0] == pytest.approx(0.011)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_path(sim, [1e6], [0.001, 0.002], TailDropAQM)
        with pytest.raises(ValueError):
            build_path(sim, [], [], TailDropAQM)


class TestMultiBottleneckExperiment:
    def test_congestion_forms_at_tight_hop(self):
        experiment = MultiBottleneckExperiment(
            load=1.3, duration_s=3.0,
            hop_rates_bps=(60e6, 40e6), seed=2)
        result = experiment.run(TailDropAQM)
        first, second = result.per_hop_recorders
        assert np.mean(second.sojourn_times) > \
            3 * np.mean(first.sojourn_times)

    def test_per_hop_aqm_bounds_end_to_end_delay(self):
        experiment = MultiBottleneckExperiment(
            load=1.3, duration_s=4.0, seed=2)
        unmanaged = experiment.run(TailDropAQM)
        counter = iter(range(100))
        managed = experiment.run(
            lambda: PCAMAQM(rng=np.random.default_rng(next(counter))))
        assert managed.mean_delay_s < 0.3 * unmanaged.mean_delay_s
        # End-to-end stays near band + propagation.
        assert managed.p95_delay_s < 0.05

    def test_deliveries_and_drops_accounted(self):
        experiment = MultiBottleneckExperiment(load=1.3,
                                               duration_s=2.0, seed=2)
        result = experiment.run(TailDropAQM)
        assert result.delivered > 1000
        assert result.dropped >= 0
        assert len(result.queues) == 2

    def test_empty_result_statistics(self):
        from repro.simnet.multihop import PathResult
        empty = PathResult(end_to_end_delays_s=np.zeros(0),
                           delivered=0, dropped=0,
                           per_hop_recorders=(), queues=())
        assert empty.mean_delay_s == 0.0
        assert empty.p95_delay_s == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiBottleneckExperiment(n_flows=0)
        with pytest.raises(ValueError):
            MultiBottleneckExperiment(hop_rates_bps=(1e6,),
                                      propagation_delays_s=(0.1, 0.2))
