"""Scenario-driven golden: flash crowd through ``build_switch``.

``tests/golden/scenario_flash_crowd.json`` was captured by running
the registered ``flash_crowd`` scenario (seed 0, 20k packets) through
the default matrix switch with per-packet results collected, then
digesting the verdict and egress-port sequences and pinning the
energy ledger.  Any change to the workload engine, the staged
runtime, the flow cache, the AQM, or the energy model that shifts a
single packet's fate shows up here as a digest mismatch.

To re-capture after an *intentional* behaviour change, run
``capture()`` below and rewrite the JSON — and say why in the commit.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.simnet.scenarios import run_scenario

GOLDEN_PATH = Path(__file__).parent / "golden" / \
    "scenario_flash_crowd.json"


def capture() -> dict:
    """One golden record, freshly computed (deterministic)."""
    reference = json.loads(GOLDEN_PATH.read_text())
    r = run_scenario("flash_crowd",
                     seed=reference["seed"],
                     n_packets=reference["n_packets"],
                     chunk_size=reference["chunk_size"],
                     admission_chunk=reference["admission_chunk"],
                     collect_results=True)
    return {
        "scenario": r.scenario,
        "seed": r.seed,
        "n_packets": r.n_packets,
        "chunk_size": r.chunk_size,
        "admission_chunk": r.admission_chunk,
        "verdict_counts": r.verdict_counts,
        "verdict_digest": hashlib.sha256(
            "\n".join(r.verdicts).encode()).hexdigest(),
        "port_digest": hashlib.sha256(
            ",".join("-" if p is None else str(p)
                     for p in r.ports).encode()).hexdigest(),
        "energy_total_j": round(r.energy_total_j, 28),
        "energy_breakdown": {key: round(value, 28) for key, value
                             in r.energy_breakdown.items()},
    }


@pytest.fixture(scope="module")
def fresh() -> dict:
    return capture()


@pytest.fixture(scope="module")
def reference() -> dict:
    # JSON round-trip the fresh capture too (via dumps in the assert
    # helpers) so float formatting can never cause a spurious diff.
    return json.loads(GOLDEN_PATH.read_text())


class TestScenarioGolden:
    def test_verdict_counts_pinned(self, fresh, reference):
        assert fresh["verdict_counts"] == reference["verdict_counts"]

    def test_verdict_sequence_digest_pinned(self, fresh, reference):
        assert fresh["verdict_digest"] == reference["verdict_digest"]

    def test_port_sequence_digest_pinned(self, fresh, reference):
        assert fresh["port_digest"] == reference["port_digest"]

    def test_energy_ledger_pinned(self, fresh, reference):
        assert json.loads(json.dumps(fresh["energy_total_j"])) \
            == reference["energy_total_j"]
        assert json.loads(json.dumps(fresh["energy_breakdown"])) \
            == reference["energy_breakdown"]

    def test_golden_file_shape(self, reference):
        for key in ("scenario", "seed", "n_packets", "verdict_counts",
                    "verdict_digest", "port_digest", "energy_total_j",
                    "energy_breakdown"):
            assert key in reference
        assert reference["scenario"] == "flash_crowd"
        # the golden must exercise the AQM, or it pins nothing
        # interesting about the cognitive datapath
        assert reference["verdict_counts"]["dropped_aqm"] > 0
