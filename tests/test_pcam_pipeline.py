"""Series composition of pCAM stages (Figure 4b)."""

import numpy as np
import pytest

from repro.core.pcam_cell import PCAMCell, prog_pcam
from repro.core.pcam_pipeline import (
    COMPOSITIONS,
    MissingFeatureError,
    PCAMPipeline,
    PipelineFeatureError,
    UnknownFeatureError,
)

P1 = prog_pcam(0.0, 1.0, 2.0, 3.0)
P2 = prog_pcam(-1.0, 0.0, 1.0, 2.0)


def make_pipeline(composition="product"):
    return PCAMPipeline.from_params({"a": P1, "b": P2},
                                    composition=composition)


class TestEvaluation:
    def test_product_of_stage_outputs(self):
        pipeline = make_pipeline()
        a = PCAMCell(P1).response(0.5)
        b = PCAMCell(P2).response(0.5)
        assert pipeline.evaluate({"a": 0.5, "b": 0.5}) == \
            pytest.approx(a * b)

    def test_sequence_input_in_stage_order(self):
        pipeline = make_pipeline()
        assert pipeline.evaluate([0.5, 0.5]) == \
            pytest.approx(pipeline.evaluate({"a": 0.5, "b": 0.5}))

    def test_missing_feature_rejected(self):
        with pytest.raises(KeyError):
            make_pipeline().evaluate({"a": 1.0})

    def test_wrong_length_sequence_rejected(self):
        with pytest.raises(ValueError):
            make_pipeline().evaluate([1.0])

    def test_missing_feature_error_names_stages(self):
        with pytest.raises(MissingFeatureError) as excinfo:
            make_pipeline().evaluate({"a": 1.0})
        message = str(excinfo.value)
        assert "'b'" in message
        assert "['a', 'b']" in message
        # Backward compatible with callers catching KeyError, and
        # catchable via the family base class.
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, PipelineFeatureError)

    def test_missing_feature_error_str_is_not_reprd(self):
        # KeyError.__str__ would wrap the message in quotes.
        error = MissingFeatureError(["b"], ("a", "b"))
        assert str(error) == ("missing features for stages ['b']; "
                              "pipeline stages are ['a', 'b']")

    def test_unknown_feature_key_rejected(self):
        with pytest.raises(UnknownFeatureError) as excinfo:
            make_pipeline().evaluate({"a": 1.0, "b": 0.5, "c": 2.0})
        message = str(excinfo.value)
        assert "'c'" in message
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, PipelineFeatureError)

    def test_batch_mapping_raises_same_typed_errors(self):
        pipeline = make_pipeline()
        with pytest.raises(MissingFeatureError):
            pipeline.evaluate_batch({"a": np.zeros(3)})
        with pytest.raises(UnknownFeatureError):
            pipeline.evaluate_batch({"a": np.zeros(3),
                                     "b": np.zeros(3),
                                     "z": np.zeros(3)})

    def test_batch_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="batch length"):
            make_pipeline().evaluate_batch({"a": np.zeros(3),
                                            "b": np.zeros(4)})

    def test_batch_matrix_wrong_width_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            make_pipeline().evaluate_batch(np.zeros((4, 3)))

    def test_any_zero_stage_kills_product(self):
        pipeline = make_pipeline()
        # Stage b mismatches hard at 5.0 -> product 0 regardless of a.
        assert pipeline.evaluate({"a": 1.5, "b": 5.0}) == 0.0

    def test_trace_reports_per_stage(self):
        pipeline = make_pipeline()
        total, outputs = pipeline.evaluate_trace({"a": 0.5, "b": 0.5})
        assert len(outputs) == 2
        assert outputs[0].name == "a"
        product = outputs[0].probability * outputs[1].probability
        assert total == pytest.approx(product)


class TestCompositions:
    def test_all_compositions_available(self):
        assert set(COMPOSITIONS) == {"product", "min", "geometric",
                                     "mean"}

    def test_min_composition(self):
        pipeline = make_pipeline("min")
        a = PCAMCell(P1).response(0.5)
        b = PCAMCell(P2).response(0.5)
        assert pipeline.evaluate([0.5, 0.5]) == pytest.approx(min(a, b))

    def test_mean_composition(self):
        pipeline = make_pipeline("mean")
        a = PCAMCell(P1).response(0.5)
        b = PCAMCell(P2).response(0.5)
        assert pipeline.evaluate([0.5, 0.5]) == \
            pytest.approx(0.5 * (a + b))

    def test_geometric_composition(self):
        pipeline = make_pipeline("geometric")
        a = PCAMCell(P1).response(0.5)
        b = PCAMCell(P2).response(0.5)
        assert pipeline.evaluate([0.5, 0.5]) == \
            pytest.approx(np.sqrt(a * b))

    def test_product_is_most_conservative(self):
        # product <= geometric <= mean, min <= others (AM-GM family).
        features = {"a": 0.6, "b": 0.4}
        product = make_pipeline("product").evaluate(features)
        geometric = make_pipeline("geometric").evaluate(features)
        mean = make_pipeline("mean").evaluate(features)
        assert product <= geometric + 1e-12 <= mean + 1e-12

    def test_unknown_composition_rejected(self):
        with pytest.raises(ValueError):
            make_pipeline("median")


class TestManagement:
    def test_stage_names_preserve_order(self):
        assert make_pipeline().stage_names == ("a", "b")

    def test_stage_access_and_reprogram(self):
        pipeline = make_pipeline()
        before = pipeline.evaluate({"a": 0.5, "b": 5.0})
        pipeline.program_stage("b", prog_pcam(4.0, 4.9, 5.1, 6.0))
        after = pipeline.evaluate({"a": 0.5, "b": 5.0})
        assert before == 0.0
        assert after > 0.0

    def test_unknown_stage_rejected(self):
        with pytest.raises(KeyError):
            make_pipeline().stage("z")

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            PCAMPipeline({})

    def test_len_and_repr(self):
        pipeline = make_pipeline()
        assert len(pipeline) == 2
        assert "product" in repr(pipeline)

    def test_evaluate_with_energy_ideal_stages_free(self):
        probability, energy = make_pipeline().evaluate_with_energy(
            {"a": 0.5, "b": 0.5})
        assert energy == 0.0
        assert probability == pytest.approx(
            make_pipeline().evaluate({"a": 0.5, "b": 0.5}))

    def test_device_backed_pipeline_charges_energy(self, rng):
        from repro.device.variability import VariabilityModel
        pipeline = PCAMPipeline.from_params(
            {"a": prog_pcam(0.5, 1.0, 2.0, 2.5)},
            device_backed=True,
            variability=VariabilityModel.ideal(), rng=rng)
        probability, energy = pipeline.evaluate_with_energy([1.5])
        assert energy > 0.0
        assert probability == pytest.approx(1.0, abs=0.05)
        assert pipeline.programming_energy_j() > 0.0
