"""The pCAM-based analog AQM (the paper's proof of concept)."""

import numpy as np
import pytest

from repro.energy.ledger import EnergyLedger
from repro.netfunc.aqm.base import TailDropAQM
from repro.netfunc.aqm.pcam_aqm import (
    PCAMAQM,
    StageSpec,
    default_stage_programs,
)
from repro.core.pcam_cell import prog_pcam
from repro.packet import Packet
from repro.simnet.topology import DumbbellExperiment, overload_profile


class FakeQueue:
    def __init__(self, packets=0, bytes_=0, rate=40e6, sojourn=0.0):
        self.backlog_packets = packets
        self.backlog_bytes = bytes_
        self.capacity_packets = 2000
        self.service_rate_bps = rate
        self.last_sojourn_s = sojourn


def make_aqm(**kwargs):
    kwargs.setdefault("rng", np.random.default_rng(7))
    return PCAMAQM(**kwargs)


class TestStagePrograms:
    def test_default_has_eight_stages(self):
        programs = default_stage_programs()
        assert len(programs) == 8
        assert "sojourn_time" in programs
        assert "d3_buffer" in programs

    def test_order_limits_stage_count(self):
        assert len(default_stage_programs(order=0)) == 2
        assert len(default_stage_programs(order=1)) == 4

    def test_without_buffer_family(self):
        programs = default_stage_programs(use_buffer=False)
        assert len(programs) == 4
        assert all("buffer" not in name for name in programs)

    def test_band_encoded_in_delay_stage(self):
        programs = default_stage_programs(target_delay_s=0.02,
                                          max_deviation_s=0.01)
        delay = programs["sojourn_time"].params
        assert delay.m1 == pytest.approx(0.01)
        assert delay.m2 == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            default_stage_programs(target_delay_s=0.0)
        with pytest.raises(ValueError):
            default_stage_programs(max_deviation_s=0.05,
                                   target_delay_s=0.02)
        with pytest.raises(ValueError):
            default_stage_programs(order=5)

    def test_stage_spec_validation(self):
        with pytest.raises(ValueError):
            StageSpec(params=prog_pcam(0, 1, 2, 3),
                      feature_lo=0.5, feature_hi=2.0)
        with pytest.raises(ValueError):
            StageSpec(params=prog_pcam(0, 1, 2, 3),
                      feature_lo=3.0, feature_hi=1.0)


class TestPDP:
    def test_empty_queue_zero_pdp(self):
        aqm = make_aqm()
        assert aqm.pdp(FakeQueue(), 0.0) == pytest.approx(0.0)

    def test_pdp_saturates_under_heavy_backlog(self):
        aqm = make_aqm(adaptation=False)
        queue = FakeQueue(packets=2000, bytes_=2_000_000, sojourn=0.5)
        pdp = None
        for step in range(50):
            pdp = aqm.pdp(queue, step * 0.01)
        assert pdp > 0.9

    def test_pdp_monotone_in_backlog_levels(self):
        aqm = make_aqm(adaptation=False)
        levels = []
        for backlog_bytes in (0, 60_000, 120_000, 500_000):
            aqm.reset()
            queue = FakeQueue(bytes_=backlog_bytes)
            for step in range(30):
                value = aqm.pdp(queue, step * 0.01)
            levels.append(value)
        assert levels == sorted(levels)
        assert levels[0] == pytest.approx(0.0)
        assert levels[-1] > 0.9

    def test_improving_queue_suppresses_drops(self):
        # Veto stages: a rapidly draining queue lowers the PDP below
        # what the same instantaneous backlog would otherwise give.
        aqm_steady = make_aqm(adaptation=False)
        aqm_improving = make_aqm(adaptation=False)
        for step in range(40):
            t = step * 0.005
            aqm_steady.pdp(FakeQueue(bytes_=150_000), t)
            declining = max(0, 400_000 - step * 40_000)
            aqm_improving.pdp(FakeQueue(bytes_=declining), t)
        steady = aqm_steady.pdp(FakeQueue(bytes_=150_000), 0.2)
        improving = aqm_improving.pdp(FakeQueue(bytes_=150_000), 0.2)
        assert improving < steady

    def test_energy_charged_per_evaluation(self):
        ledger = EnergyLedger()
        aqm = make_aqm(ledger=ledger, energy_per_cell_j=1e-17)
        aqm.pdp(FakeQueue(), 0.0)
        # 8 stages x 2 cells x 1e-17 J.
        assert ledger.account("pcam_aqm.search") == pytest.approx(1.6e-16)
        assert aqm.evaluations == 1


class TestDropBehaviour:
    def test_tiny_backlog_never_dropped(self):
        aqm = make_aqm()
        assert not aqm.on_enqueue(Packet(), FakeQueue(packets=1), 0.0)

    def test_heavy_backlog_drops_most_arrivals(self):
        # Empty priority map: no class discount obscures the raw PDP.
        aqm = make_aqm(adaptation=False, priority_weights={})
        queue = FakeQueue(packets=1000, bytes_=1_000_000, sojourn=0.4)
        outcomes = [aqm.on_enqueue(Packet(), queue, step * 0.01)
                    for step in range(100)]
        assert np.mean(outcomes[20:]) > 0.8

    def test_high_priority_dropped_less(self):
        weights = {0: 0.25, 1: 1.0}
        results = {}
        for priority in (0, 1):
            aqm = make_aqm(adaptation=False, priority_weights=weights,
                           rng=np.random.default_rng(3))
            queue = FakeQueue(packets=500, bytes_=400_000, sojourn=0.03)
            outcomes = [aqm.on_enqueue(Packet(priority=priority),
                                       queue, step * 0.01)
                        for step in range(300)]
            results[priority] = np.mean(outcomes[50:])
        assert results[0] < results[1]


class TestAdaptation:
    def test_update_pcam_fires_when_delay_out_of_band(self):
        aqm = make_aqm(adaptation=True, adaptation_interval_s=0.01)
        queue = FakeQueue(packets=500, bytes_=500_000)
        for step in range(100):
            now = step * 0.01
            aqm.on_dequeue(Packet(), queue, now, 0.08)  # way over band
            aqm.on_enqueue(Packet(), queue, now)
        assert aqm.adaptations > 0
        assert aqm.threshold_shift < 1.0

    def test_no_adaptation_inside_band(self):
        aqm = make_aqm(adaptation=True, adaptation_interval_s=0.01)
        queue = FakeQueue(packets=50, bytes_=50_000)
        for step in range(50):
            now = step * 0.01
            aqm.on_dequeue(Packet(), queue, now, 0.02)  # on target
            aqm.on_enqueue(Packet(), queue, now)
        assert aqm.adaptations == 0
        assert aqm.threshold_shift == 1.0

    def test_shift_relaxes_back_when_delay_low(self):
        aqm = make_aqm(adaptation=True, adaptation_interval_s=0.01)
        queue = FakeQueue(packets=500, bytes_=500_000)
        for step in range(60):
            now = step * 0.01
            aqm.on_dequeue(Packet(), queue, now, 0.09)
            aqm.on_enqueue(Packet(), queue, now)
        tightened = aqm.threshold_shift
        quiet = FakeQueue(packets=5, bytes_=5_000)
        for step in range(600):
            now = 1.0 + step * 0.01
            aqm.on_dequeue(Packet(), quiet, now, 0.002)
            aqm.on_enqueue(Packet(), quiet, now)
        assert aqm.threshold_shift > tightened

    def test_reset_restores_base_program(self):
        aqm = make_aqm(adaptation=True, adaptation_interval_s=0.01)
        queue = FakeQueue(packets=500, bytes_=500_000)
        for step in range(60):
            now = step * 0.01
            aqm.on_dequeue(Packet(), queue, now, 0.09)
            aqm.on_enqueue(Packet(), queue, now)
        aqm.reset()
        assert aqm.threshold_shift == 1.0
        assert aqm.adaptations == 0


class TestFigure8Behaviour:
    def test_holds_delay_inside_programmed_band(self):
        experiment = DumbbellExperiment(
            n_flows=6, load=0.9, service_rate_bps=40e6,
            capacity_packets=1500, duration_s=6.0,
            rate_fn=overload_profile(1.5, 5.0, 1.6), seed=3)
        aqm = make_aqm()
        managed = experiment.run(aqm).recorder.summary()
        unmanaged = experiment.run(TailDropAQM()).recorder.summary()
        # Shape of Figure 8: unmanaged delay explodes, managed stays
        # within the programmed 20 +- 10 ms objective.
        assert unmanaged.mean_delay_s > 0.1
        assert managed.mean_delay_s < 0.03
        assert managed.p95_delay_s < 0.035

    def test_composition_choice_respected(self):
        aqm = make_aqm(composition="min")
        assert aqm.pipeline.composition == "min"

    def test_order_zero_uses_only_level_features(self):
        aqm = make_aqm(order=0)
        assert aqm.pipeline.stage_names == ("sojourn_time",
                                            "buffer_size")
