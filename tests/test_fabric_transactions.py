"""Transactional fabric programming: no chunk spans two generations.

The controller's two-phase commit promises that a chunk classified
concurrently with a reprogramming observes the old configuration on
every shard or the new configuration on every shard — never a mix.
These tests drive probe flows whose verdict differs across the
generations (a route that only exists after the commit) and assert
chunk-level purity under a concurrent commit storm.
"""

import threading

import pytest

from repro.dataplane.results import Verdict
from repro.dataplane.switch import SwitchSpec, build_switch
from repro.fabric import SwitchFabric
from repro.packet import Packet

#: Probe destinations chosen to spread across shards (distinct
#: 5-tuples) while all riding the same route prefix.
PROBE_DSTS = [f"198.51.100.{host}" for host in range(1, 33)]


def build_shard():
    spec = SwitchSpec(n_ports=2, routes=(("10.0.0.0/8", 0),),
                      flow_cache_size=0)
    return build_switch(spec)


def probe_chunk(now: float) -> list[Packet]:
    return [Packet(size_bytes=200, created_at=now,
                   fields={"src_ip": f"10.9.{i}.1", "src_port": 1000 + i,
                           "dst_ip": dst, "dst_port": 80,
                           "protocol": 6})
            for i, dst in enumerate(PROBE_DSTS)]


def chunk_verdicts(results) -> set:
    return {r.verdict for r in results}


def test_staged_ops_are_invisible_until_commit():
    with SwitchFabric(build_shard, 2) as fabric:
        fabric.controller.add_route("198.51.100.0/24", 1)
        # Staged locally: nothing pushed, nothing visible.
        results = fabric.process_batch(probe_chunk(0.0), now=0.0)
        assert chunk_verdicts(results) == {Verdict.DROPPED_NO_ROUTE}
        assert fabric.generation == 0

        generation = fabric.controller.commit()
        assert generation == 1
        results = fabric.process_batch(probe_chunk(0.0), now=0.0)
        assert chunk_verdicts(results) == {Verdict.QUEUED}


def test_abort_discards_staged_ops():
    with SwitchFabric(build_shard, 2) as fabric:
        fabric.controller.add_route("198.51.100.0/24", 1)
        assert fabric.controller.abort() == 1
        assert fabric.controller.commit() == 1  # empty barrier commit
        results = fabric.process_batch(probe_chunk(0.0), now=0.0)
        assert chunk_verdicts(results) == {Verdict.DROPPED_NO_ROUTE}


def test_empty_commit_is_a_generation_barrier():
    with SwitchFabric(build_shard, 2) as fabric:
        assert fabric.controller.commit() == 1
        assert fabric.controller.commit() == 2
        assert fabric.generation == 2


@pytest.mark.parametrize("mode", ["in_process", "multiprocessing"])
def test_no_chunk_observes_mixed_generations(mode):
    """Commit storm against a chunk stream: every chunk is pure.

    Before the commit the probe flows all drop (no route); after it
    they all queue.  A chunk that mixes QUEUED with DROPPED_NO_ROUTE
    would prove one shard flipped mid-chunk.
    """
    with SwitchFabric(build_shard, 4, mode=mode) as fabric:
        stop = threading.Event()
        impure = []
        chunks_seen = [0]

        def traffic():
            while not stop.is_set():
                results = fabric.process_batch(probe_chunk(0.0),
                                               now=0.0)
                verdicts = chunk_verdicts(results)
                chunks_seen[0] += 1
                if len(verdicts) != 1:
                    impure.append(verdicts)

        worker = threading.Thread(target=traffic)
        worker.start()
        try:
            # Several commits while the chunk stream is running: the
            # route flip changes every probe's verdict.
            for _ in range(3):
                fabric.controller.add_route("198.51.100.0/24", 1)
                fabric.controller.commit()
                fabric.controller.invalidate_flow_caches()
                fabric.controller.commit()
        finally:
            stop.set()
            worker.join(timeout=30.0)
        assert not worker.is_alive()
        assert chunks_seen[0] > 0
        assert impure == [], \
            f"chunks spanned two generations: {impure[:3]}"
        assert fabric.generation == 6


def test_commit_applies_to_every_shard():
    with SwitchFabric(build_shard, 4) as fabric:
        fabric.controller.add_route("198.51.100.0/24", 1)
        fabric.controller.commit()
        # Every probe queues regardless of which shard it steered to.
        results = fabric.process_batch(probe_chunk(0.0), now=0.0)
        assert chunk_verdicts(results) == {Verdict.QUEUED}
        ports = {r.port for r in results}
        assert ports == {1}


def test_retarget_reaches_all_shard_aqms():
    with SwitchFabric(build_shard, 2) as fabric:
        fabric.controller.retarget(0.004)
        fabric.controller.commit()
        for shard in fabric.shards:
            manager = shard.processor.traffic_manager
            for port in range(manager.n_ports):
                aqm = manager.aqm(port)
                analog = getattr(aqm, "analog", aqm)
                assert analog.target_delay_s == pytest.approx(0.004)


def test_unknown_op_rejected_at_stage_time():
    with SwitchFabric(build_shard, 2) as fabric:
        fabric.controller.stage("format_tables")
        with pytest.raises(ValueError):
            fabric.controller.commit()


# ----------------------------------------------------------------------
# Learned commits (the fleet learning loop drives the same primitive)
# ----------------------------------------------------------------------
def shard_programmings(fabric) -> set:
    programmings = set()
    for shard in fabric.shards:
        manager = shard.processor.traffic_manager
        for port in range(manager.n_ports):
            analog = getattr(manager.aqm(port), "analog",
                             manager.aqm(port))
            programmings.add((analog.target_delay_s,
                              analog.max_deviation_s))
    return programmings


def test_learned_commit_storm_keeps_chunks_and_programmings_pure():
    """A learning sweep's retargets ride the same two-phase commit.

    While a traffic thread streams probe chunks, the main thread runs
    a :class:`FleetLearningController` sweep: every candidate the
    SPSA policy deploys is one staged+committed fleet op.  No chunk
    may mix verdicts across a commit, and after every single step the
    fleet must be programming-uniform — a shard still running the
    previous candidate would be a torn commit.
    """
    import time

    import numpy as np

    from repro.control.fleet import FleetLearningController
    from repro.control.learning import SPSAPolicy

    with SwitchFabric(build_shard, 4) as fabric:
        fabric.controller.add_route("198.51.100.0/24", 1)
        fabric.controller.commit()

        stop = threading.Event()
        impure = []
        chunks_sent = [0]

        def traffic():
            # Bounded stream: backlog must stay below any learnable
            # AQM band, so admission verdicts remain deterministic
            # (probabilistic AQM drops would fake impurity).
            while not stop.is_set() and chunks_sent[0] < 150:
                results = fabric.process_batch(probe_chunk(0.0)[:16],
                                               now=0.0)
                chunks_sent[0] += 1
                verdicts = chunk_verdicts(results)
                if len(verdicts) != 1:
                    impure.append(verdicts)
                time.sleep(0.001)

        policy = SPSAPolicy(0, np.log([0.120, 0.5]))
        fleet = FleetLearningController(fabric.controller, policy,
                                        min_interval_s=0.05,
                                        drain_pps=100.0)
        worker = threading.Thread(target=traffic)
        worker.start()
        try:
            for tick in range(20):
                fleet.step(0.05 * tick)
                # After each step every shard runs one programming.
                assert len(shard_programmings(fabric)) == 1
                time.sleep(0.002)
            fleet.finalise()
        finally:
            stop.set()
            worker.join(timeout=30.0)
        assert not worker.is_alive()
        assert chunks_sent[0] > 0
        assert impure == [], \
            f"chunks spanned two generations: {impure[:3]}"
        assert fleet.commits >= 5
        # One generation per commit, plus the route commit up front.
        assert fabric.generation == 1 + fleet.commits
        assert shard_programmings(fabric) == \
            {fleet.policy.best_programming}
