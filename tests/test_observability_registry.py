"""Metrics registry semantics: instruments, families, snapshots."""

import pytest

from repro.observability.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = MetricsRegistry().counter("packets_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("packets_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_set_total_overwrites_for_adapters(self):
        counter = MetricsRegistry().counter("mirrored_total")
        counter.inc(10)
        counter.set_total(4)
        assert counter.value == 4.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.value == 4.0

    def test_negative_values_allowed(self):
        gauge = MetricsRegistry().gauge("delta")
        gauge.set(-1.5)
        assert gauge.value == -1.5


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        histogram = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)   # <= 0.1
        histogram.observe(0.5)    # <= 1.0
        histogram.observe(5.0)    # overflow
        assert histogram.bucket_counts() == (1, 1, 1)
        assert histogram.cumulative_counts() == (1, 2, 3)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.55)

    def test_boundary_value_counts_as_le(self):
        histogram = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        histogram.observe(0.1)
        assert histogram.bucket_counts() == (1, 0, 0)

    def test_bounds_must_be_strictly_increasing(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("worse", buckets=(2.0, 1.0))

    def test_bounds_must_be_non_empty(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("empty", buckets=())

    def test_default_buckets_span_microseconds_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS_S[0] == pytest.approx(1e-6)
        assert DEFAULT_LATENCY_BUCKETS_S[-1] == pytest.approx(1.0)


class TestGetOrCreate:
    def test_same_name_and_labels_return_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", labels={"table": "fw"})
        b = registry.counter("hits_total", labels={"table": "fw"})
        assert a is b

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.gauge("g", labels={"a": "1", "b": "2"})
        b = registry.gauge("g", labels={"b": "2", "a": "1"})
        assert a is b

    def test_different_labels_create_distinct_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", labels={"table": "fw"})
        b = registry.counter("hits_total", labels={"table": "ip"})
        assert a is not b
        assert len(registry) == 2

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_histogram_bucket_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("9starts-with-digit")

    def test_invalid_label_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c", labels={"bad-name": "x"})


class TestCollectors:
    def test_collectors_run_on_snapshot(self):
        registry = MetricsRegistry()
        source = {"count": 0}

        def mirror(reg):
            reg.counter("mirrored_total").set_total(source["count"])

        registry.register_collector(mirror)
        source["count"] = 7
        snapshot = registry.snapshot()
        (entry,) = snapshot["metrics"]
        assert entry["samples"][0]["value"] == 7.0

    def test_collectors_see_fresh_state_each_snapshot(self):
        registry = MetricsRegistry()
        source = {"count": 1}
        registry.register_collector(
            lambda reg: reg.counter("m_total").set_total(source["count"]))
        registry.snapshot()
        source["count"] = 2
        snapshot = registry.snapshot()
        assert snapshot["metrics"][0]["samples"][0]["value"] == 2.0


class TestSnapshot:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Table hits.",
                         {"table": "fw"}).inc(3)
        registry.gauge("backlog", "Queue backlog.").set(12.0)
        histogram = registry.histogram(
            "latency_seconds", "Latency.", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(2.0)
        return registry

    def test_snapshot_structure(self):
        snapshot = self._populated().snapshot()
        by_name = {entry["name"]: entry for entry in snapshot["metrics"]}
        assert set(by_name) == {"hits_total", "backlog", "latency_seconds"}
        assert by_name["hits_total"]["type"] == "counter"
        assert by_name["hits_total"]["samples"][0]["labels"] == {
            "table": "fw"}
        assert by_name["latency_seconds"]["buckets"] == [0.1, 1.0]
        assert by_name["latency_seconds"]["samples"][0]["counts"] == [
            1, 0, 1]

    def test_families_sorted_by_name(self):
        names = [entry["name"]
                 for entry in self._populated().snapshot()["metrics"]]
        assert names == sorted(names)

    def test_from_snapshot_round_trips(self):
        registry = self._populated()
        snapshot = registry.snapshot()
        rebuilt = MetricsRegistry.from_snapshot(snapshot)
        assert rebuilt.snapshot() == snapshot

    def test_round_trip_preserves_empty_families(self):
        registry = MetricsRegistry()
        registry._family("unused_total", "counter", "Never sampled.")
        snapshot = registry.snapshot()
        rebuilt = MetricsRegistry.from_snapshot(snapshot)
        assert rebuilt.snapshot() == snapshot

    def test_reset_drops_everything(self):
        registry = self._populated()
        registry.register_collector(lambda reg: None)
        registry.reset()
        assert len(registry) == 0
        assert registry.snapshot() == {"metrics": []}
