"""The ``repro.dataplane.packet`` deprecation shim, pinned precisely.

The Packet implementation lives in :mod:`repro.packet`; the old
dataplane path is a warn-on-import re-export kept for external
callers.  These tests pin the full shim contract: the warning fires
at import time (once per interpreter — repeat imports are served from
``sys.modules`` silently), and every re-exported name stays the
canonical object, not a copy.
"""

import importlib
import sys
import warnings

import pytest

import repro.packet as canonical

SHIM = "repro.dataplane.packet"


def fresh_import():
    """Force the shim's module body to re-execute."""
    sys.modules.pop(SHIM, None)
    return importlib.import_module(SHIM)


def test_import_warns_deprecation_with_redirect():
    with pytest.warns(DeprecationWarning,
                      match="import Packet and FIVE_TUPLE_FIELDS "
                            "from repro.packet instead"):
        fresh_import()


def test_warning_fires_once_per_interpreter():
    # First import executes the module body (and warns); any further
    # import is a sys.modules hit and must stay silent.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = fresh_import()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = importlib.import_module(SHIM)
    assert again is shim


def test_reexports_are_the_canonical_objects():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = fresh_import()
    assert shim.Packet is canonical.Packet
    assert shim.FIVE_TUPLE_FIELDS is canonical.FIVE_TUPLE_FIELDS
    assert set(shim.__all__) == {"Packet", "FIVE_TUPLE_FIELDS"}


def test_shimmed_packet_constructs_and_roundtrips():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = fresh_import()
    packet = shim.Packet(size_bytes=128,
                         fields={"src_ip": "1.2.3.4",
                                 "dst_ip": "10.0.0.1"})
    assert isinstance(packet, canonical.Packet)
    assert packet.fields["dst_ip"] == "10.0.0.1"
