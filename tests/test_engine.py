"""The discrete-event loop."""

import pytest

from repro.simnet.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("late"))
    sim.schedule(1.0, lambda: fired.append("early"))
    sim.run()
    assert fired == ["early", "late"]


def test_ties_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for label in ("a", "b", "c"):
        sim.schedule(1.0, lambda label=label: fired.append(label))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(3.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.5]
    assert sim.now == 3.5


def test_run_until_stops_at_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run_until(2.0)
    assert fired == [1]
    assert sim.now == 2.0
    assert sim.pending == 1


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run_until(7.0)
    assert sim.now == 7.0


def test_events_can_schedule_events():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_stop_halts_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]


def test_every_installs_periodic_callback():
    sim = Simulator()
    ticks = []
    sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run_until(3.5)
    assert ticks == [1.0, 2.0, 3.0]


def test_every_with_start_delay():
    sim = Simulator()
    ticks = []
    sim.every(1.0, lambda: ticks.append(sim.now), start_delay=0.25)
    sim.run_until(2.5)
    assert ticks == [0.25, 1.25, 2.25]


def test_scheduling_into_past_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.run_until(0.1)
    with pytest.raises(ValueError):
        sim.every(0.0, lambda: None)


def test_processed_counter():
    sim = Simulator()
    for _ in range(3):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.processed == 3
