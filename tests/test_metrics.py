"""Measurement instruments."""

import numpy as np
import pytest

from repro.simnet.metrics import (
    DelayRecorder,
    SummaryStatistics,
    time_binned_mean,
)


class TestDelayRecorder:
    def test_counters(self):
        recorder = DelayRecorder()
        recorder.record_departure(1.0, 0.01)
        recorder.record_departure(2.0, 0.02)
        recorder.record_drop(1.5)
        assert recorder.delivered == 2
        assert recorder.dropped == 1
        assert recorder.drop_rate == pytest.approx(1 / 3)

    def test_drop_rate_empty(self):
        assert DelayRecorder().drop_rate == 0.0

    def test_queue_samples(self):
        recorder = DelayRecorder()
        recorder.record_queue_sample(0.5, 10, 15000)
        assert recorder.queue_lengths == [10]
        assert recorder.queue_bytes == [15000]

    def test_summary_statistics(self):
        recorder = DelayRecorder()
        for delay in (0.01, 0.02, 0.03, 0.04):
            recorder.record_departure(1.0, delay)
        summary = recorder.summary()
        assert summary.mean_delay_s == pytest.approx(0.025)
        assert summary.max_delay_s == pytest.approx(0.04)
        assert summary.delivered == 4

    def test_summary_of_empty_run(self):
        summary = SummaryStatistics.from_recorder(DelayRecorder())
        assert summary.delivered == 0
        assert summary.mean_delay_s == 0.0

    def test_priorities_recorded(self):
        recorder = DelayRecorder()
        recorder.record_departure(1.0, 0.01, priority=1)
        recorder.record_drop(1.0, priority=0)
        assert recorder.delivered_priorities == [1]
        assert recorder.drop_priorities == [0]


class TestTimeBinnedMean:
    def test_means_per_bin(self):
        times = [0.1, 0.2, 1.1, 1.9]
        values = [1.0, 3.0, 10.0, 20.0]
        centres, means = time_binned_mean(times, values, 1.0)
        assert centres[0] == pytest.approx(0.5)
        assert means[0] == pytest.approx(2.0)
        assert means[1] == pytest.approx(15.0)

    def test_empty_bins_are_nan(self):
        centres, means = time_binned_mean([0.1, 2.5], [1.0, 2.0], 1.0)
        assert np.isnan(means[1])

    def test_horizon_extends_series(self):
        centres, means = time_binned_mean([0.1], [1.0], 1.0,
                                          end_time_s=5.0)
        assert len(centres) == 5

    def test_empty_input(self):
        centres, means = time_binned_mean([], [], 1.0)
        assert centres.size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            time_binned_mean([1.0], [1.0], 0.0)
        with pytest.raises(ValueError):
            time_binned_mean([1.0, 2.0], [1.0], 1.0)
