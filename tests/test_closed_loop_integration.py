"""End-to-end: the intent loop steering a live simulated queue."""

import numpy as np
import pytest

from repro.control import Intent, IntentController
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.simnet.engine import Simulator
from repro.simnet.flows import PoissonFlowGenerator
from repro.simnet.queue_sim import BottleneckQueue


def run_closed_loop(intent: Intent, duration_s: float = 12.0,
                    load: float = 1.25):
    """Overloaded queue + periodic intent-loop polling."""
    sim = Simulator()
    aqm = PCAMAQM(target_delay_s=0.020, adaptation=False,
                  rng=np.random.default_rng(3))
    queue = BottleneckQueue(sim, service_rate_bps=20e6,
                            capacity_packets=2000, aqm=aqm)
    controller = IntentController(aqm, intent, min_interval_s=0.5)
    rate = load * 20e6 / 8000.0
    PoissonFlowGenerator(rate_pps=rate,
                         rng=np.random.default_rng(11)
                         ).attach(sim, queue.enqueue)
    state = {"packets": 0, "drops": 0}

    def poll() -> None:
        packets = queue.admitted + queue.aqm_drops
        drops = queue.aqm_drops
        controller.observe(sim.now,
                           packets=packets - state["packets"],
                           drops=drops - state["drops"])
        state["packets"] = packets
        state["drops"] = drops

    sim.every(0.5, poll)
    sim.run_until(duration_s)
    return aqm, controller, queue


def test_loss_budget_trades_latency():
    # A persistent 1.25x overload forces ~20% drops at any fixed
    # target; with a 5% loss budget the loop must raise the delay
    # target toward the intent bound (trading latency for loss).
    intent = Intent(max_delay_s=0.200, max_drop_rate=0.05)
    aqm, controller, queue = run_closed_loop(intent)
    assert controller.retargets > 0
    assert aqm.target_delay_s > 0.020
    assert aqm.target_delay_s <= intent.max_delay_s + 1e-9


def test_latency_bound_respected():
    intent = Intent(max_delay_s=0.060, max_drop_rate=0.05)
    aqm, _, queue = run_closed_loop(intent)
    assert aqm.target_delay_s <= 0.060 + 1e-9
    # The delay actually realised stays near the (raised) target.
    summary = queue.recorder.summary()
    assert summary.mean_delay_s < 0.09


def test_light_load_chases_low_latency():
    intent = Intent(max_delay_s=0.100, max_drop_rate=0.05,
                    min_delay_s=0.004)
    aqm, controller, queue = run_closed_loop(intent, load=0.5)
    # No drops at 0.5x load: the loop walks the target down.
    assert aqm.target_delay_s < 0.020
    assert queue.recorder.summary().mean_delay_s < 0.01
