"""Fabric replay identity: N shards == the serial walk, byte for byte.

Replays the pinned runtime-golden traffic through fabrics of 1, 2 and
4 shards in both execution modes and demands *byte identity* with the
serial golden reference for every observable: verdict and port
sequences, verdict counts, telemetry tables/events/gauges, and the
energy breakdown (exact dyadic merge of the shard ledgers).

Why this holds (and when it wouldn't): steering is flow-consistent,
so per-chunk dedup sets partition cleanly; flow caches never evict at
this trace size, so per-shard LRU order is invisible; the ledger
books integer counts of fixed quanta, so summed shard ledgers equal
the serial ledger to the last ulp.  Identity is a *golden-regime*
contract — under cache-eviction pressure or state-dependent AQM
drops, sharding legitimately changes per-queue dynamics.
"""

import json

import pytest

from tests.test_runtime_golden import (
    CONFIGS,
    GOLDEN,
    build_processor,
    make_traffic,
)

from repro.fabric import SwitchFabric

SHARD_COUNTS = (1, 2, 4)


def canonical(value):
    return json.loads(json.dumps(value, sort_keys=True))


def observe_fabric(fabric, results):
    """The fabric-side mirror of the golden ``observe`` document."""
    ledger = fabric.energy_ledger()
    telemetry = fabric.telemetry_snapshot()
    return {
        "verdicts": [r.verdict.value for r in results],
        "ports": [r.port for r in results],
        "verdict_counts": {v.value: c for v, c
                           in fabric.verdict_counts.items()},
        "tables": telemetry["tables"],
        "events": telemetry["events"],
        "gauges": telemetry["gauges"],
        "energy_breakdown": {account: round(ledger.account(account), 28)
                             for account in ledger.breakdown()},
        "energy_total_j": round(ledger.total, 28),
    }


def replay(config: str, n_shards: int, mode: str) -> dict:
    kind, chunk, cache, fault_seed = CONFIGS[config]
    fabric = SwitchFabric(lambda: build_processor(cache, fault_seed),
                          n_shards, mode=mode)
    try:
        packets = make_traffic()
        if kind == "scalar":
            results = [fabric.process(p, now=0.5) for p in packets]
        else:
            results = fabric.process_batch(packets, now=0.5,
                                           chunk_size=chunk)
        return observe_fabric(fabric, results)
    finally:
        fabric.close()


@pytest.mark.parametrize("config", sorted(CONFIGS))
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_in_process_fabric_matches_golden(config, n_shards):
    observed = canonical(replay(config, n_shards, "in_process"))
    golden = GOLDEN[config]
    for key in golden:
        assert observed[key] == golden[key], \
            f"{config}/N={n_shards}: {key} diverged"


@pytest.mark.parametrize("config", ["batch_c64", "batch_c64_nocache",
                                    "scalar_cached"])
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_multiprocessing_fabric_matches_golden(config, n_shards):
    observed = canonical(replay(config, n_shards, "multiprocessing"))
    golden = GOLDEN[config]
    for key in golden:
        assert observed[key] == golden[key], \
            f"{config}/N={n_shards}/mp: {key} diverged"


@pytest.mark.parametrize("n_shards", (2, 4))
def test_compiled_shards_match_golden(n_shards):
    """PR-8 compiled kernels run unchanged inside fabric shards."""
    def compiled_processor():
        processor = build_processor(4096, None)
        processor.request_compile()
        return processor

    fabric = SwitchFabric(compiled_processor, n_shards)
    try:
        results = fabric.process_batch(make_traffic(), now=0.5,
                                       chunk_size=64)
        observed = canonical(observe_fabric(fabric, results))
    finally:
        fabric.close()
    golden = GOLDEN["batch_c64"]
    for key in golden:
        assert observed[key] == golden[key], \
            f"compiled/N={n_shards}: {key} diverged"


def test_energy_merge_is_exact_not_approximate():
    """The merged total equals the serial total bit-for-bit."""
    serial = build_processor(4096, None)
    serial.process_batch(make_traffic(), now=0.5, chunk_size=64)
    for n_shards in SHARD_COUNTS:
        fabric = SwitchFabric(lambda: build_processor(4096, None),
                              n_shards)
        try:
            fabric.process_batch(make_traffic(), now=0.5, chunk_size=64)
            assert fabric.energy_total_j() == serial.ledger.total
        finally:
            fabric.close()
