"""RED, CoDel, PIE digital baselines + the AQM base interface."""

import numpy as np
import pytest

from repro.netfunc.aqm.base import AQMAlgorithm, TailDropAQM
from repro.netfunc.aqm.codel import CoDelAqm
from repro.netfunc.aqm.pie import PIEAqm
from repro.netfunc.aqm.red import REDAqm
from repro.packet import Packet
from repro.simnet.engine import Simulator
from repro.simnet.queue_sim import BottleneckQueue


class FakeQueue:
    """Minimal QueueView stub with settable state."""

    def __init__(self, packets=0, bytes_=0, rate=8e6, sojourn=0.0):
        self.backlog_packets = packets
        self.backlog_bytes = bytes_
        self.capacity_packets = 1000
        self.service_rate_bps = rate
        self.last_sojourn_s = sojourn


def pkt():
    return Packet(size_bytes=1000)


class TestBaseInterface:
    def test_defaults_never_drop(self):
        class Noop(AQMAlgorithm):
            pass

        aqm = Noop()
        assert not aqm.on_enqueue(pkt(), FakeQueue(), 0.0)
        assert not aqm.on_dequeue(pkt(), FakeQueue(), 0.0, 0.1)

    def test_tail_drop_never_drops(self):
        aqm = TailDropAQM()
        assert not aqm.on_enqueue(pkt(), FakeQueue(packets=999), 0.0)
        assert aqm.name == "tail-drop"


class TestRED:
    def test_below_min_threshold_never_drops(self, rng):
        aqm = REDAqm(rng=rng)
        queue = FakeQueue(packets=10)
        assert not any(aqm.on_enqueue(pkt(), queue, t * 1e-3)
                       for t in range(100))

    def test_above_max_threshold_always_drops(self, rng):
        aqm = REDAqm(min_threshold_packets=5,
                     max_threshold_packets=20, weight=1.0, rng=rng)
        queue = FakeQueue(packets=500)
        aqm.on_enqueue(pkt(), queue, 0.0)  # warm the average
        assert aqm.on_enqueue(pkt(), queue, 0.001)

    def test_intermediate_region_probabilistic(self, rng):
        aqm = REDAqm(min_threshold_packets=10,
                     max_threshold_packets=100, max_p=0.5,
                     weight=1.0, rng=rng)
        queue = FakeQueue(packets=55)
        outcomes = [aqm.on_enqueue(pkt(), queue, t * 1e-3)
                    for t in range(400)]
        drop_rate = np.mean(outcomes)
        assert 0.05 < drop_rate < 0.95

    def test_average_is_ewma_not_instantaneous(self, rng):
        aqm = REDAqm(weight=0.01, rng=rng)
        queue = FakeQueue(packets=200)
        aqm.on_enqueue(pkt(), queue, 0.0)
        assert aqm.average_queue < 200

    def test_idle_period_decays_average(self, rng):
        aqm = REDAqm(weight=0.5, rng=rng)
        busy = FakeQueue(packets=100)
        for t in range(10):
            aqm.on_enqueue(pkt(), busy, t * 1e-3)
        peak = aqm.average_queue
        idle = FakeQueue(packets=0)
        aqm.on_enqueue(pkt(), idle, 0.02)   # marks idle start
        busy_again = FakeQueue(packets=1)
        aqm.on_enqueue(pkt(), busy_again, 1.0)
        assert aqm.average_queue < peak * 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            REDAqm(min_threshold_packets=100, max_threshold_packets=50)
        with pytest.raises(ValueError):
            REDAqm(max_p=0.0)
        with pytest.raises(ValueError):
            REDAqm(weight=2.0)


class TestCoDel:
    def test_no_drops_below_target(self):
        aqm = CoDelAqm(target_s=0.005, interval_s=0.1)
        queue = FakeQueue(bytes_=10000)
        assert not any(aqm.on_dequeue(pkt(), queue, t * 0.01, 0.001)
                       for t in range(50))
        assert not aqm.dropping

    def test_sustained_delay_enters_dropping_state(self):
        aqm = CoDelAqm(target_s=0.005, interval_s=0.1)
        queue = FakeQueue(bytes_=100000)
        dropped = [aqm.on_dequeue(pkt(), queue, t * 0.02, 0.05)
                   for t in range(20)]
        assert any(dropped)
        assert aqm.dropping

    def test_drop_frequency_increases_while_bad(self):
        aqm = CoDelAqm(target_s=0.005, interval_s=0.1)
        queue = FakeQueue(bytes_=100000)
        drops = [t * 0.005 for t in range(600)
                 if aqm.on_dequeue(pkt(), queue, t * 0.005, 0.05)]
        assert len(drops) >= 3
        gaps = np.diff(drops)
        assert gaps[-1] < gaps[0]  # control law accelerates

    def test_recovery_exits_dropping_state(self):
        aqm = CoDelAqm(target_s=0.005, interval_s=0.05)
        congested = FakeQueue(bytes_=100000)
        for t in range(40):
            aqm.on_dequeue(pkt(), congested, t * 0.01, 0.05)
        assert aqm.dropping
        aqm.on_dequeue(pkt(), congested, 0.5, 0.001)
        assert not aqm.dropping

    def test_small_backlog_never_drops(self):
        aqm = CoDelAqm(target_s=0.005, interval_s=0.05)
        tiny = FakeQueue(bytes_=500)  # below one MTU
        assert not any(aqm.on_dequeue(pkt(), tiny, t * 0.01, 0.5)
                       for t in range(30))

    def test_validation(self):
        with pytest.raises(ValueError):
            CoDelAqm(target_s=0.0)


class TestPIE:
    def test_probability_rises_under_persistent_delay(self, rng):
        aqm = PIEAqm(target_delay_s=0.01, max_burst_s=0.0, rng=rng)
        queue = FakeQueue(bytes_=100000, rate=8e6)  # 100 ms delay
        for t in range(50):
            aqm.on_enqueue(pkt(), queue, t * 0.02)
        assert aqm.drop_probability > 0.05

    def test_probability_decays_when_queue_empties(self, rng):
        aqm = PIEAqm(target_delay_s=0.01, max_burst_s=0.0, rng=rng)
        congested = FakeQueue(bytes_=100000)
        for t in range(50):
            aqm.on_enqueue(pkt(), congested, t * 0.02)
        peak = aqm.drop_probability
        empty = FakeQueue(bytes_=0, packets=0)
        for t in range(200):
            aqm.on_enqueue(pkt(), empty, 1.0 + t * 0.02)
        assert aqm.drop_probability < peak

    def test_burst_allowance_protects_startup(self, rng):
        aqm = PIEAqm(max_burst_s=10.0, rng=rng)
        queue = FakeQueue(bytes_=100000, packets=100)
        assert not any(aqm.on_enqueue(pkt(), queue, t * 0.02)
                       for t in range(20))

    def test_tiny_queue_safeguard(self, rng):
        aqm = PIEAqm(max_burst_s=0.0, rng=rng)
        aqm._p = 0.9
        queue = FakeQueue(bytes_=1000, packets=1)
        assert not aqm.on_enqueue(pkt(), queue, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PIEAqm(target_delay_s=0.0)


class TestAllAQMsInRealQueue:
    """Every baseline must actually curb delay in an overloaded queue."""

    # CoDel's sqrt control law ramps slowly against unresponsive
    # (non-TCP) Poisson overload — its documented weakness — so its
    # bound is looser than RED's and PIE's.
    @pytest.mark.parametrize("aqm_factory, max_ratio", [
        (lambda: REDAqm(min_threshold_packets=20,
                        max_threshold_packets=100,
                        rng=np.random.default_rng(0)), 0.5),
        (lambda: CoDelAqm(), 0.999),
        (lambda: PIEAqm(rng=np.random.default_rng(0)), 0.5),
    ])
    def test_mean_delay_below_tail_drop(self, aqm_factory, max_ratio):
        from repro.simnet.topology import DumbbellExperiment
        experiment = DumbbellExperiment(
            n_flows=4, load=1.4, service_rate_bps=20e6,
            capacity_packets=1000, duration_s=3.0, seed=5)
        managed_run = experiment.run(aqm_factory())
        managed = managed_run.recorder.summary()
        unmanaged = experiment.run(TailDropAQM()).recorder.summary()
        assert managed.mean_delay_s < max_ratio * unmanaged.mean_delay_s
        assert managed_run.queue.aqm_drops > 0
