"""The crossbar-realised pCAM array."""

import numpy as np
import pytest

from repro.core.hardware_array import CrossbarPCAMArray
from repro.core.pcam_cell import prog_pcam
from repro.device.variability import VariabilityModel

FIELDS = ("port", "size")
WORD0 = {"port": prog_pcam(0.5, 1.0, 1.5, 2.0),
         "size": prog_pcam(2.0, 2.5, 3.0, 3.5)}
WORD1 = {"port": prog_pcam(2.5, 3.0, 3.5, 3.9),
         "size": prog_pcam(-1.0, -0.5, 0.0, 0.5)}


def make_array(**kwargs):
    kwargs.setdefault("variability",
                      VariabilityModel(read_sigma=0.02, device_sigma=0.0))
    kwargs.setdefault("rng", np.random.default_rng(1))
    array = CrossbarPCAMArray(FIELDS, max_words=4, **kwargs)
    array.add(WORD0)
    array.add(WORD1)
    return array


class TestSearch:
    def test_exact_queries_select_their_word(self):
        array = make_array()
        first = array.search({"port": 1.2, "size": 2.7})
        second = array.search({"port": 3.2, "size": -0.2})
        assert first.best_index == 0
        assert first.best_probability > 0.9
        assert second.best_index == 1
        assert second.best_probability > 0.9

    def test_cross_query_mismatches(self):
        array = make_array()
        result = array.search({"port": 1.2, "size": -0.2})
        # Matches word0 on port only, word1 on size only: both words
        # score ~0 because the product needs every field.
        assert result.probabilities.max() < 0.1

    def test_partial_match_graded(self):
        array = make_array()
        # On the ramp of word0's port window.
        result = array.search({"port": 0.75, "size": 2.7})
        assert 0.1 < result.probabilities[0] < 0.95

    def test_search_consumes_energy(self):
        array = make_array()
        result = array.search({"port": 1.2, "size": 2.7})
        assert result.energy_j > 0.0
        assert array.ledger.account("conversion") > 0.0
        assert array.searches == 1

    def test_empty_array(self):
        array = CrossbarPCAMArray(FIELDS, max_words=2)
        result = array.search({"port": 1.0, "size": 1.0})
        assert result.best_index is None
        assert result.probabilities.size == 0

    def test_missing_query_field_rejected(self):
        array = make_array()
        with pytest.raises(KeyError):
            array.search({"port": 1.0})

    def test_dac_quantization_applied(self):
        coarse = make_array(rng=np.random.default_rng(2))
        # Queries within one LSB land on the same DAC code -> same
        # decoded probability (noise aside, use ideal variability).
        ideal = CrossbarPCAMArray(
            FIELDS, max_words=4,
            variability=VariabilityModel.ideal(),
            rng=np.random.default_rng(3))
        ideal.add(WORD0)
        lsb = ideal.dac.lsb_v
        a = ideal.search({"port": 1.2, "size": 2.7})
        b = ideal.search({"port": 1.2 + 0.3 * lsb, "size": 2.7})
        np.testing.assert_allclose(a.probabilities, b.probabilities)


class TestProgramming:
    def test_capacity_enforced(self):
        array = CrossbarPCAMArray(FIELDS, max_words=1)
        array.add(WORD0)
        with pytest.raises(ValueError):
            array.add(WORD1)

    def test_field_set_validated(self):
        array = CrossbarPCAMArray(FIELDS, max_words=2)
        with pytest.raises(ValueError):
            array.add({"port": prog_pcam(0, 1, 2, 3)})

    def test_thresholds_must_fit_range(self):
        array = CrossbarPCAMArray(FIELDS, max_words=2,
                                  v_range=(0.0, 2.0))
        with pytest.raises(ValueError):
            array.add(WORD0)  # size window reaches 3.5 V

    def test_word_params_accessor(self):
        array = make_array()
        assert array.word_params(0)["port"].m2 == 1.0
        with pytest.raises(IndexError):
            array.word_params(9)
        assert len(array) == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CrossbarPCAMArray((), max_words=2)
        with pytest.raises(ValueError):
            CrossbarPCAMArray(FIELDS, max_words=0)
        with pytest.raises(ValueError):
            CrossbarPCAMArray(FIELDS, v_range=(4.0, -2.0))


class TestAgainstFunctionalModel:
    def test_matches_ideal_array_probabilities(self):
        from repro.core.pcam_array import PCAMArray
        hardware = CrossbarPCAMArray(
            FIELDS, max_words=4,
            variability=VariabilityModel.ideal(),
            rng=np.random.default_rng(5))
        functional = PCAMArray(FIELDS)
        for word in (WORD0, WORD1):
            hardware.add(word)
            functional.add(word)
        rng = np.random.default_rng(6)
        for _ in range(10):
            query = {"port": float(rng.uniform(0.0, 3.8)),
                     "size": float(rng.uniform(-1.5, 3.4))}
            hw = hardware.search(query).probabilities
            fn = functional.search(query).probabilities
            np.testing.assert_allclose(hw, fn, atol=0.06)
