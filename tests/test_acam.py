"""Unit tests for the analog-CAM subsystem (cells, bank, compiler).

The property suite (``test_acam_properties.py``) carries the
differential exactness argument; this file pins the concrete device
semantics — interval cells as pCAM programmings, conductance mapping,
bank search bookkeeping, fault plans over the shared robustness
surface, and the energy/comparison arithmetic — with hand-checkable
cases.
"""

import numpy as np
import pytest

from repro.acam import (
    ACAMArray,
    ACAMCell,
    ACAMDecisionTree,
    ACAMEnergyModel,
    ACAMFaultPlan,
    ACAMInterval,
    ConductanceMap,
    UNBOUNDED,
    build_energy_table,
    compile_tree,
    energy_table_json,
    format_energy_table,
    published_acam_energy,
    reference_classifier,
    tree_paths,
)
from repro.acam.comparison import (
    DIGITAL_TREE_MOVEMENT_FACTOR,
    prefix_cover_count,
    tcam_rows_for_paths,
)
from repro.energy.ledger import EnergyLedger
from repro.netfunc.decision_tree import CARTTree, TreeNode
from repro.robustness.models import ConductanceDrift, StuckAtFault


def two_level_tree() -> CARTTree:
    """x0 <= 1 -> leaf A; else x1 <= 2 -> leaf B; else leaf C."""
    root = TreeNode(
        feature=0, threshold=1.0,
        left=TreeNode(prediction=0),
        right=TreeNode(feature=1, threshold=2.0,
                       left=TreeNode(prediction=1),
                       right=TreeNode(prediction=2)))
    return CARTTree.from_root(root, n_features=2)


# ----------------------------------------------------------------------
# Intervals and cells
# ----------------------------------------------------------------------
class TestInterval:
    def test_validation(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            ACAMInterval(lo=2.0, hi=1.0)
        with pytest.raises(ValueError, match="finite"):
            ACAMInterval(lo=float("inf"))
        with pytest.raises(ValueError, match="margin"):
            ACAMInterval(lo=0.0, hi=1.0, margin=-1.0)
        with pytest.raises(ValueError, match="sharpness"):
            ACAMInterval(lo=0.0, hi=1.0, sharpness=0.0)

    def test_window_is_the_interval(self):
        params = ACAMInterval(lo=0.5, hi=2.5).to_pcam_params()
        assert params.m2 == 0.5
        assert params.m3 == 2.5

    def test_wildcard_sides_use_the_sentinel(self):
        params = ACAMInterval(lo=None, hi=3.0).to_pcam_params()
        assert params.m1 == params.m2 == -UNBOUNDED
        below = ACAMInterval(lo=-2.0, hi=None).to_pcam_params()
        assert below.m3 == below.m4 == UNBOUNDED

    def test_margin_extends_only_finite_sides(self):
        params = ACAMInterval(lo=None, hi=1.0, margin=0.5,
                              sharpness=2.0).to_pcam_params()
        assert params.m1 == params.m2  # wildcard side has no skirt
        assert params.m4 == pytest.approx(1.25)  # 1.0 + 0.5/2.0

    def test_contains_is_closed_on_both_bounds(self):
        interval = ACAMInterval(lo=1.0, hi=2.0)
        inside = interval.contains(np.array([0.99, 1.0, 1.5, 2.0, 2.01]))
        assert inside.tolist() == [False, True, True, True, False]

    def test_wildcard_contains_everything(self):
        assert ACAMInterval.wildcard().contains(
            np.array([-1e9, 0.0, 1e9])).all()


class TestCell:
    def test_deterministic_inside_graded_outside(self):
        cell = ACAMCell(ACAMInterval(lo=0.0, hi=1.0, margin=0.5))
        assert cell.match(0.5) == 1.0
        assert cell.match(0.0) == 1.0 and cell.match(1.0) == 1.0
        ramp = cell.match(1.2)
        assert 0.0 < ramp < 1.0
        assert cell.match(2.0) < ramp

    def test_conductance_roundtrip(self):
        cmap = ConductanceMap(v_min=0.0, v_max=10.0)
        cell = ACAMCell.from_conductances(
            cmap.conductance(2.0), cmap.conductance(7.0), cmap)
        interval = cell.intended_interval
        assert interval.lo == pytest.approx(2.0)
        assert interval.hi == pytest.approx(7.0)

    def test_wildcard_bounds_clip_to_rails(self):
        cmap = ConductanceMap()
        g_lo, g_hi = ACAMCell(ACAMInterval.wildcard()) \
            .conductance_bounds(cmap)
        assert g_lo == cmap.g_min_s
        assert g_hi == cmap.g_max_s

    def test_conductance_map_validation(self):
        with pytest.raises(ValueError, match="v_min < v_max"):
            ConductanceMap(v_min=1.0, v_max=1.0)
        with pytest.raises(ValueError, match="g_min < g_max"):
            ConductanceMap(g_min_s=1e-3, g_max_s=1e-9)

    def test_fault_preserves_intended_interval(self):
        cell = ACAMCell(ACAMInterval(lo=0.0, hi=1.0))
        model = StuckAtFault(state="hrs")
        cell.inject_fault(model.materialise(
            cell.pcam.intended_params, np.random.default_rng(0)))
        assert cell.fault is not None
        assert cell.intended_interval == ACAMInterval(lo=0.0, hi=1.0)
        assert cell.match(0.5) < 1.0  # hrs pins the response low
        cell.clear_fault()
        assert cell.fault is None
        assert cell.match(0.5) == 1.0

    def test_repr_names_the_interval(self):
        text = repr(ACAMCell(ACAMInterval(lo=None, hi=2.0)))
        assert "-inf" in text and "2" in text

    def test_reprogramming_replaces_the_window(self):
        cell = ACAMCell(ACAMInterval(lo=0.0, hi=1.0))
        cell.program(ACAMInterval(lo=5.0, hi=6.0))
        assert cell.intended_interval == ACAMInterval(lo=5.0, hi=6.0)
        assert cell.match(5.5) == 1.0 and cell.match(0.5) == 0.0


# ----------------------------------------------------------------------
# The bank
# ----------------------------------------------------------------------
@pytest.fixture
def small_bank() -> ACAMArray:
    bank = ACAMArray(["x", "y"])
    bank.add_row([ACAMInterval(hi=1.0), ACAMInterval(hi=2.0)])
    bank.add_row([ACAMInterval(hi=1.0), ACAMInterval(lo=2.0)])
    bank.add_row([ACAMInterval(lo=1.0), ACAMInterval()])
    return bank


class TestBank:
    def test_geometry_validation(self):
        with pytest.raises(ValueError, match="at least one field"):
            ACAMArray([])
        with pytest.raises(ValueError, match="duplicate"):
            ACAMArray(["x", "x"])
        bank = ACAMArray(["x"])
        with pytest.raises(ValueError, match="arity"):
            bank.add_row([ACAMInterval(), ACAMInterval()])
        with pytest.raises(KeyError, match="missing"):
            bank.add_row({"y": ACAMInterval()})
        with pytest.raises(IndexError):
            bank.row(0)
        with pytest.raises(RuntimeError, match="empty"):
            bank.search({"x": 0.0})

    def test_len_and_threshold_expose_geometry(self, small_bank):
        assert len(small_bank) == small_bank.n_rows == 3
        assert small_bank.match_threshold == 0.99

    def test_mapping_rows_reorder_to_field_order(self):
        bank = ACAMArray(["x", "y"])
        bank.add_row({"y": ACAMInterval(lo=5.0),
                      "x": ACAMInterval(hi=1.0)})
        assert bank.row(0)[0].intended_interval.hi == 1.0
        assert bank.row(0)[1].intended_interval.lo == 5.0

    def test_search_matches_the_right_rows(self, small_bank):
        result = small_bank.search({"x": 0.5, "y": 0.5})
        assert result.best_row == 0
        assert result.matched
        result = small_bank.search({"x": 0.5, "y": 3.0})
        assert result.best_row == 1
        result = small_bank.search({"x": 2.0, "y": -5.0})
        assert result.best_row == 2

    def test_boundary_tie_breaks_to_the_lowest_row(self, small_bank):
        # x=0.5, y=2.0 deterministically matches rows 0 AND 1
        result = small_bank.search({"x": 0.5, "y": 2.0})
        assert result.best_row == 0
        assert result.first_match_row == 0

    def test_matrix_and_mapping_queries_agree(self, small_bank):
        rng = np.random.default_rng(5)
        x, y = rng.uniform(-1, 3, 20), rng.uniform(-1, 5, 20)
        a = small_bank.search_batch({"x": x, "y": y})
        b = small_bank.search_batch(np.column_stack([x, y]))
        np.testing.assert_array_equal(a.probabilities, b.probabilities)
        with pytest.raises(ValueError, match="columns"):
            small_bank.search_batch(np.zeros((4, 3)))

    def test_energy_and_counters(self, small_bank):
        model = small_bank.energy_model
        result = small_bank.search_batch(
            {"x": np.zeros(10), "y": np.zeros(10)})
        assert len(result) == 10
        assert result.energy_j == pytest.approx(
            10 * model.per_classification_j(3, 2))
        assert result.latency_s == model.search_latency_s
        assert small_bank.searches == 10

    def test_ledger_account_is_charged(self):
        ledger = EnergyLedger()
        bank = ACAMArray(["x"], ledger=ledger, account="acam.search")
        bank.add_row([ACAMInterval(lo=0.0, hi=1.0)])
        bank.search({"x": 0.5})
        assert ledger.account("acam.search") == pytest.approx(
            bank.energy_model.per_classification_j(1, 1))

    def test_no_match_reports_minus_one(self):
        bank = ACAMArray(["x"])
        bank.add_row([ACAMInterval(lo=0.0, hi=1.0)])
        result = bank.search({"x": 5.0})
        assert not result.matched
        assert result.first_match_row == -1
        assert result.best_row == 0  # nearest row still reported


class TestFaultPlans:
    def test_cell_fraction_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            ACAMFaultPlan(StuckAtFault(state="lrs"), cell_fraction=1.5)

    def test_plan_is_reproducible(self, small_bank):
        plan = ACAMFaultPlan(ConductanceDrift(scale=0.4),
                             cell_fraction=0.5, seed=11)
        first = small_bank.apply_fault_plan(plan)
        small_bank.clear_faults()
        second = small_bank.apply_fault_plan(plan)
        assert first.array_cells == second.array_cells
        small_bank.clear_faults()

    def test_row_restriction(self, small_bank):
        plan = ACAMFaultPlan(StuckAtFault(state="lrs"), rows=(1,))
        report = small_bank.apply_fault_plan(plan)
        assert {index for index, _ in report.array_cells} == {1}
        assert all(cell.fault is None for cell in small_bank.row(0))
        assert all(cell.fault is not None for cell in small_bank.row(1))
        small_bank.clear_faults()
        assert all(cell.fault is None for row in small_bank.rows
                   for cell in row)

    def test_clone_ideal_sheds_faults(self, small_bank):
        small_bank.apply_fault_plan(
            ACAMFaultPlan(StuckAtFault(state="hrs")))
        clone = small_bank.clone_ideal()
        assert clone.n_rows == small_bank.n_rows
        assert all(cell.fault is None for row in clone.rows
                   for cell in row)
        assert clone.search({"x": 0.5, "y": 0.5}).matched
        small_bank.clear_faults()

    def test_probe_grid_spans_finite_bounds(self, small_bank):
        probes = small_bank.probe_grid(64, np.random.default_rng(3))
        assert set(probes) == {"x", "y"}
        assert all(len(p) == 64 for p in probes.values())
        # bounds on x are {1.0}; margin 0.25 of a clamped span
        assert probes["x"].min() < 1.0 < probes["x"].max() + 1.0
        with pytest.raises(ValueError, match="probe"):
            small_bank.probe_grid(0, np.random.default_rng(0))

    def test_healthy_bank_has_zero_deviation(self, small_bank):
        probes = small_bank.probe_grid(32, np.random.default_rng(4))
        for report in small_bank.row_reports(probes):
            assert report.mean_abs_error == 0.0
            assert report.scalar_batch_max_diff < 1e-9
        assert small_bank.out_of_envelope(probes) == ()


# ----------------------------------------------------------------------
# Compiler
# ----------------------------------------------------------------------
class TestCompiler:
    def test_paths_are_depth_first_left_first(self):
        paths = tree_paths(two_level_tree())
        assert [p.label for p in paths] == [0, 1, 2]
        assert [p.leaf for p in paths] == [0, 1, 2]
        assert [p.depth for p in paths] == [1, 2, 2]
        assert paths[0].intervals == ((None, 1.0), (None, None))
        assert paths[1].intervals == ((1.0, None), (None, 2.0))
        assert paths[2].intervals == ((1.0, None), (2.0, None))

    def test_nested_constraints_intersect(self):
        root = TreeNode(
            feature=0, threshold=5.0,
            left=TreeNode(feature=0, threshold=2.0,
                          left=TreeNode(prediction=0),
                          right=TreeNode(prediction=1)),
            right=TreeNode(prediction=2))
        paths = tree_paths(CARTTree.from_root(root, n_features=1))
        assert paths[0].intervals == ((None, 2.0),)
        assert paths[1].intervals == ((2.0, 5.0),)
        assert paths[2].intervals == ((5.0, None),)

    def test_compile_tree_one_row_per_leaf(self):
        tree = two_level_tree()
        bank, labels, paths = compile_tree(tree, ["x0", "x1"])
        assert bank.n_rows == tree.n_leaves() == len(paths)
        assert labels.tolist() == [0, 1, 2]
        acam = ACAMDecisionTree(tree, ["x0", "x1"])
        assert acam.n_rows == tree.n_leaves()
        with pytest.raises(ValueError, match="name per feature"):
            compile_tree(tree, ["only_one"])

    def test_one_shot_matches_traversal_on_a_grid(self):
        tree = two_level_tree()
        acam = ACAMDecisionTree(tree, ["x0", "x1"])
        grid = np.array([[x0, x1] for x0 in (-1.0, 0.5, 1.0, 1.5, 9.0)
                         for x1 in (-3.0, 1.0, 2.0, 2.5, 8.0)])
        np.testing.assert_array_equal(acam.predict_batch(grid),
                                      tree.predict(grid))
        np.testing.assert_array_equal(acam.predict_leaves(grid),
                                      tree.predict_leaves(grid))
        assert acam.predict(grid[7]) == tree.predict_one(grid[7])

    def test_chunked_prediction_is_invariant(self):
        tree = two_level_tree()
        acam = ACAMDecisionTree(tree, ["x0", "x1"], margin=1.0)
        rng = np.random.default_rng(8)
        batch = rng.uniform(-2, 10, size=(101, 2))
        whole = acam.predict_batch(batch)
        for chunk in (1, 7, 64, 1000):
            np.testing.assert_array_equal(
                acam.predict_batch(batch, chunk_size=chunk), whole)
        with pytest.raises(ValueError, match="chunk"):
            acam.predict_batch(batch, chunk_size=0)
        assert acam.predict_leaves(np.zeros((0, 2))).tolist() == []

    def test_feature_arity_checked(self):
        acam = ACAMDecisionTree(two_level_tree(), ["x0", "x1"])
        with pytest.raises(ValueError, match="columns"):
            acam.predict_batch(np.zeros((3, 5)))

    def test_digital_leaf_numbering_matches_paths(self):
        tree = two_level_tree()
        assert tree.predict_leaf_one([0.0, 0.0]) == 0
        assert tree.predict_leaf_one([2.0, 0.0]) == 1
        assert tree.predict_leaf_one([2.0, 9.0]) == 2

    def test_from_root_validates(self):
        with pytest.raises(ValueError, match="n_features"):
            CARTTree.from_root(TreeNode(prediction=0), 0)
        with pytest.raises(RuntimeError, match="not been fitted"):
            CARTTree().root


# ----------------------------------------------------------------------
# Energy model and comparison arithmetic
# ----------------------------------------------------------------------
class TestEnergy:
    def test_published_model_figures(self):
        model = published_acam_energy()
        # 4 rows x 3 cells x 0.01 fJ + 4 rows x 0.1 fJ = 0.52 fJ
        assert model.per_classification_j(4, 3) == pytest.approx(5.2e-16)
        assert model.search_energy_j(4, 3, n_queries=10) \
            == pytest.approx(5.2e-15)

    def test_validation(self):
        with pytest.raises(ValueError, match="cell_search_j"):
            ACAMEnergyModel(cell_search_j=-1.0)
        with pytest.raises(ValueError, match="geometry"):
            published_acam_energy().per_classification_j(-1, 3)
        with pytest.raises(ValueError, match="queries"):
            published_acam_energy().search_energy_j(1, 1, -1)

    def test_prefix_cover_known_values(self):
        # [1, 6] over 3 bits -> 001, 01x, 10x, 110 = 4 prefixes
        assert prefix_cover_count(1, 6, 3) == 4
        assert prefix_cover_count(0, 7, 3) == 1   # full space: one X row
        assert prefix_cover_count(3, 3, 3) == 1   # a point: exact row
        assert prefix_cover_count(0, 3, 3) == 1   # aligned block
        # worst case of width W is 2(W-1): [1, 2^W - 2]
        assert prefix_cover_count(1, 254, 8) == 14
        with pytest.raises(ValueError, match="outside"):
            prefix_cover_count(0, 8, 3)

    def test_tcam_expansion_multiplies_across_features(self):
        paths = tree_paths(two_level_tree())
        rows = tcam_rows_for_paths(paths, [(0.0, 8.0), (0.0, 8.0)],
                                   bits=3)
        # every leaf expands to >= 1 row; ranges blow up the count
        assert rows > len(paths)

    def test_table_has_acam_cheapest(self):
        tree, _, ranges = reference_classifier()
        table = build_energy_table(tree, ranges)
        names = [row.name for row in table]
        assert names == ["aCAM one-shot", "digital tree walk",
                         "TCAM range-expanded"]
        acam, digital, tcam = table
        assert acam.energy_fj_per_classification \
            < digital.energy_fj_per_classification
        assert acam.energy_fj_per_classification \
            < tcam.energy_fj_per_classification
        # the movement factor explains most of the digital gap
        assert digital.energy_fj_per_classification \
            > DIGITAL_TREE_MOVEMENT_FACTOR

    def test_table_validation(self):
        tree, _, ranges = reference_classifier()
        with pytest.raises(ValueError, match="bit"):
            build_energy_table(tree, ranges, bits=0)
        with pytest.raises(ValueError, match="range per feature"):
            build_energy_table(tree, ranges[:1])

    def test_render_and_json(self):
        tree, _, ranges = reference_classifier()
        table = build_energy_table(tree, ranges)
        lines = format_energy_table(table)
        assert any("aCAM one-shot" in line for line in lines)
        assert "cheapest" in lines[-1]
        payload = energy_table_json(table)
        assert payload["cheapest"] == "aCAM one-shot"
        assert len(payload["rows"]) == 3
