"""Behavioural TCAM: ternary matching, priorities, energy."""

import numpy as np
import pytest

from repro.energy.ledger import ACCOUNT_COMPUTE, ACCOUNT_MOVEMENT
from repro.tcam.tcam import (TCAM, TernaryPattern, key_from_int,
                             key_matrix)


class TestTernaryPattern:
    def test_parse_and_str_round_trip(self):
        pattern = TernaryPattern.parse("10x1")
        assert str(pattern) == "10x1"
        assert pattern.width == 4

    def test_parse_accepts_star_wildcard(self):
        assert str(TernaryPattern.parse("1*0")) == "1x0"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            TernaryPattern.parse("10z1")
        with pytest.raises(ValueError):
            TernaryPattern.parse("")

    def test_from_value_msb_first(self):
        pattern = TernaryPattern.from_value(0b1010, 4)
        assert str(pattern) == "1010"

    def test_from_value_with_mask(self):
        pattern = TernaryPattern.from_value(0b1000, 4, mask=0b1100)
        assert str(pattern) == "10xx"

    def test_from_value_validates(self):
        with pytest.raises(ValueError):
            TernaryPattern.from_value(16, 4)
        with pytest.raises(ValueError):
            TernaryPattern.from_value(1, 0)

    def test_matches_semantics(self):
        pattern = TernaryPattern.parse("1x0")
        assert pattern.matches(key_from_int(0b110, 3))
        assert pattern.matches(key_from_int(0b100, 3))
        assert not pattern.matches(key_from_int(0b101, 3))
        assert not pattern.matches(key_from_int(0b010, 3))

    def test_matches_width_checked(self):
        with pytest.raises(ValueError):
            TernaryPattern.parse("10").matches(key_from_int(1, 3))


class TestKeyFromInt:
    def test_msb_first_encoding(self):
        key = key_from_int(0b101, 3)
        np.testing.assert_array_equal(key, [True, False, True])

    def test_range_validated(self):
        with pytest.raises(ValueError):
            key_from_int(8, 3)


class TestSearch:
    def make(self) -> TCAM:
        tcam = TCAM(4)
        tcam.add("1xxx")    # entry 0
        tcam.add("10xx")    # entry 1
        tcam.add("0000")    # entry 2
        return tcam

    def test_all_matches_reported(self):
        tcam = self.make()
        result = tcam.search(0b1011)
        assert result.matched_indices == (0, 1)

    def test_priority_lowest_wins(self):
        tcam = self.make()
        assert tcam.search(0b1011).best_index == 0

    def test_explicit_priority_overrides_order(self):
        tcam = TCAM(4)
        tcam.add("1xxx", priority=10)
        tcam.add("10xx", priority=1)
        assert tcam.search(0b1011).best_index == 1

    def test_miss(self):
        tcam = self.make()
        result = tcam.search(0b0001)
        assert not result.hit
        assert result.best_index is None
        assert result.matched_indices == ()

    def test_digital_output_only(self):
        # The central TCAM limitation: no partial-match output exists.
        tcam = self.make()
        result = tcam.search(0b0001)
        assert isinstance(result.hit, bool)

    def test_integer_and_array_keys_agree(self):
        tcam = self.make()
        by_int = tcam.search(0b1010)
        by_array = tcam.search(key_from_int(0b1010, 4))
        assert by_int.matched_indices == by_array.matched_indices

    def test_key_width_validated(self):
        with pytest.raises(ValueError):
            self.make().search(key_from_int(1, 3))

    def test_remove_entry(self):
        tcam = self.make()
        tcam.remove(0)
        result = tcam.search(0b1011)
        assert result.matched_indices == (0,)  # old entry 1 shifted
        with pytest.raises(IndexError):
            tcam.remove(10)


class TestEnergyModel:
    def test_search_energy_scales_with_array_size(self):
        small = TCAM(8)
        large = TCAM(8)
        small.add("1" * 8)
        for _ in range(10):
            large.add("1" * 8)
        assert (large.search(0).energy_j
                == pytest.approx(10 * small.search(0).energy_j))

    def test_movement_dominates_digital_search(self):
        tcam = TCAM(16)
        tcam.add("x" * 16)
        tcam.search(0)
        movement = tcam.ledger.account(ACCOUNT_MOVEMENT)
        compute = tcam.ledger.account(ACCOUNT_COMPUTE)
        assert movement == pytest.approx(9 * compute)

    def test_search_counter(self):
        tcam = TCAM(4)
        tcam.add("xxxx")
        tcam.search(0)
        tcam.search(1)
        assert tcam.searches == 2

    def test_latency_reported(self):
        tcam = TCAM(4, search_latency_s=2e-9)
        tcam.add("xxxx")
        assert tcam.search(0).latency_s == 2e-9

    def test_pattern_width_validated(self):
        with pytest.raises(ValueError):
            TCAM(4).add("10101")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TCAM(0)
        with pytest.raises(ValueError):
            TCAM(4, movement_fraction=1.5)


class TestKeyMatrix:
    def test_rows_match_key_from_int(self):
        values = np.array([0, 5, 10, 15], dtype=np.uint64)
        matrix = key_matrix(values, 4)
        for row, value in zip(matrix, values):
            np.testing.assert_array_equal(row,
                                          key_from_int(int(value), 4))

    def test_width_and_range_validated(self):
        with pytest.raises(ValueError):
            key_matrix(np.array([0]), 0)
        with pytest.raises(ValueError):
            key_matrix(np.array([0]), 65)
        with pytest.raises(ValueError):
            key_matrix(np.array([16], dtype=np.uint64), 4)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            key_matrix(np.zeros((2, 2), dtype=np.uint64), 4)


class TestSearchBatch:
    def make(self) -> TCAM:
        tcam = TCAM(4)
        tcam.add("1xxx")    # entry 0
        tcam.add("10xx")    # entry 1
        tcam.add("0000")    # entry 2
        return tcam

    def all_keys(self) -> np.ndarray:
        return key_matrix(np.arange(16, dtype=np.uint64), 4)

    def test_winners_match_scalar_search(self):
        batch = self.make()
        scalar = self.make()
        result = batch.search_batch(self.all_keys())
        expected = [scalar.search(value).best_index
                    for value in range(16)]
        expected = [-1 if index is None else index
                    for index in expected]
        np.testing.assert_array_equal(result.best_indices, expected)

    def test_hit_mask_and_len(self):
        result = self.make().search_batch(self.all_keys())
        assert len(result) == 16
        np.testing.assert_array_equal(result.hit_mask,
                                      result.best_indices >= 0)

    def test_energy_and_counters_equal_scalar_loop(self):
        batch = self.make()
        scalar = self.make()
        result = batch.search_batch(self.all_keys())
        scalar_energy = sum(scalar.search(value).energy_j
                            for value in range(16))
        assert result.energy_j == pytest.approx(scalar_energy)
        assert batch.searches == scalar.searches == 16
        assert batch.ledger.total == pytest.approx(scalar.ledger.total)
        for account in (ACCOUNT_MOVEMENT, ACCOUNT_COMPUTE):
            assert batch.ledger.account(account) == pytest.approx(
                scalar.ledger.account(account))

    def test_priority_tie_break_matches_scalar(self):
        batch = TCAM(4)
        scalar = TCAM(4)
        for tcam in (batch, scalar):
            tcam.add("1xxx", priority=5)
            tcam.add("1xx1", priority=5)   # tie: first entry must win
            tcam.add("10xx", priority=1)
        keys = self.all_keys()
        winners = batch.search_batch(keys).best_indices
        for value in range(16):
            expected = scalar.search(value).best_index
            assert winners[value] == (-1 if expected is None
                                      else expected)

    def test_empty_table_all_miss_with_scalar_energy(self):
        batch = TCAM(4)
        scalar = TCAM(4)
        result = batch.search_batch(self.all_keys())
        assert not result.hit_mask.any()
        scalar_energy = sum(scalar.search(value).energy_j
                            for value in range(16))
        assert result.energy_j == pytest.approx(scalar_energy)

    def test_empty_batch(self):
        result = self.make().search_batch(
            np.zeros((0, 4), dtype=bool))
        assert len(result) == 0
        assert result.energy_j == 0.0

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            self.make().search_batch(np.zeros((4, 3), dtype=bool))
        with pytest.raises(ValueError):
            self.make().search_batch(np.zeros(4, dtype=bool))

    def test_internal_slicing_preserves_results(self, monkeypatch):
        batch = self.make()
        reference = self.make()
        keys = self.all_keys()
        expected = reference.search_batch(keys)
        monkeypatch.setattr(TCAM, "_MAX_BATCH_CELLS",
                            batch.width_bits * 3 * 2)  # 2 keys/slice
        result = batch.search_batch(keys)
        np.testing.assert_array_equal(result.best_indices,
                                      expected.best_indices)
        assert result.energy_j == pytest.approx(expected.energy_j)


class TestGenerationCounter:
    def test_bumps_on_add_and_remove(self):
        tcam = TCAM(4)
        start = tcam.generation
        tcam.add("1xxx")
        after_add = tcam.generation
        assert after_add > start
        tcam.remove(0)
        assert tcam.generation > after_add

    def test_stable_across_searches(self):
        tcam = TCAM(4)
        tcam.add("xxxx")
        generation = tcam.generation
        tcam.search(0)
        tcam.search_batch(key_matrix(np.arange(4, dtype=np.uint64), 4))
        assert tcam.generation == generation
