"""Unit tests of the generic staged runtime (no dataplane involved).

The runtime package must work with any batch shape and any verdict
vocabulary — these tests drive it with plain lists and strings, which
doubles as a check that nothing in ``repro.runtime`` secretly depends
on dataplane types.
"""

from contextlib import contextmanager

import pytest

from repro.runtime import (
    BaseMiddleware,
    NullTally,
    PipelineRuntime,
    StageContext,
    TracingMiddleware,
)
from repro.observability.tracing import SimClock, Tracer


class ListStage:
    """Keeps even numbers, emits odd ones as 'odd'."""

    name = "evens"
    span_name = "test.evens"

    def span_attributes(self, batch):
        return {"n": len(batch)}

    def process_batch(self, batch, ctx):
        kept, kept_idx = [], []
        for offset, item in enumerate(batch):
            if item % 2:
                ctx.emit(ctx.indices[offset], "odd")
            else:
                kept.append(item)
                kept_idx.append(ctx.indices[offset])
        ctx.columns["index"] = kept_idx
        return kept


class SinkStage:
    name = "sink"

    def process_batch(self, batch, ctx):
        for offset, item in enumerate(batch):
            ctx.emit(ctx.indices[offset], "kept")
        ctx.columns["index"] = []
        return []


class Recorder(BaseMiddleware):
    def __init__(self, log, label):
        self.log = log
        self.label = label
        self.attached = 0

    def on_attach(self, runtime):
        self.attached += 1

    @contextmanager
    def around_chunk(self, ctx):
        self.log.append(f"{self.label}:chunk+")
        try:
            yield
        finally:
            self.log.append(f"{self.label}:chunk-")

    @contextmanager
    def around_stage(self, stage, batch, ctx):
        self.log.append(f"{self.label}:{stage.name}+")
        try:
            yield
        finally:
            self.log.append(f"{self.label}:{stage.name}-")


def run(runtime, items):
    emitted = {}
    ctx = StageContext(1.5, lambda i, v, port=None, packet=None:
                       emitted.__setitem__(i, v),
                       indices=range(len(items)))
    runtime.run_chunk(list(items), ctx)
    return emitted


class TestEngine:
    def test_stages_compose_and_emit(self):
        runtime = PipelineRuntime([ListStage(), SinkStage()])
        emitted = run(runtime, [1, 2, 3, 4])
        assert emitted == {0: "odd", 1: "kept", 2: "odd", 3: "kept"}

    def test_drained_batch_short_circuits(self):
        log = []
        runtime = PipelineRuntime([ListStage(), SinkStage()],
                                  [Recorder(log, "m")])
        run(runtime, [1, 3, 5])  # all odd -> sink never runs
        assert "m:sink+" not in log
        assert runtime.stage_runs == {"evens": 1}

    def test_middleware_nesting_order(self):
        log = []
        runtime = PipelineRuntime(
            [SinkStage()], [Recorder(log, "a"), Recorder(log, "b")])
        run(runtime, [2])
        assert log == ["a:chunk+", "b:chunk+",
                       "a:sink+", "b:sink+",
                       "b:sink-", "a:sink-",
                       "b:chunk-", "a:chunk-"]

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate stage names"):
            PipelineRuntime([SinkStage(), SinkStage()])

    def test_unsized_stage_output_raises_naming_the_stage(self):
        # An unsized batch used to be silently treated as non-empty
        # and walked through the remaining stages; now the drain
        # check raises immediately, naming the producer.
        class Unsized:
            name = "unsized"

            def process_batch(self, batch, ctx):
                return 42  # not a sized sequence, not None

        runtime = PipelineRuntime([Unsized(), SinkStage()])
        with pytest.raises(TypeError,
                           match=r"stage 'unsized' produced an "
                                 r"unsized batch of type int"):
            run(runtime, [2])
        # The bad stage ran; the sink never saw the garbage batch.
        assert runtime.stage_runs == {"unsized": 1}

    def test_unsized_pipeline_input_raises_naming_the_entry(self):
        runtime = PipelineRuntime([SinkStage()])
        ctx = StageContext(0.0, lambda *a, **k: None, indices=[0])
        with pytest.raises(TypeError,
                           match="the pipeline input produced an "
                                 "unsized batch of type object"):
            runtime.run_chunk(object(), ctx)

    def test_none_batch_still_drains_quietly(self):
        class Drainer:
            name = "drainer"

            def process_batch(self, batch, ctx):
                return None

        runtime = PipelineRuntime([Drainer(), SinkStage()])
        run(runtime, [2])
        assert runtime.stage_runs == {"drainer": 1}

    def test_stage_lookup(self):
        stage = SinkStage()
        runtime = PipelineRuntime([stage])
        assert runtime.stage("sink") is stage
        with pytest.raises(KeyError, match="no stage named"):
            runtime.stage("missing")

    def test_on_attach_runs_per_assembly(self):
        recorder = Recorder([], "m")
        runtime = PipelineRuntime([SinkStage()], [recorder])
        assert recorder.attached == 1
        runtime.set_middleware([recorder])
        assert recorder.attached == 2

    def test_chunk_and_stage_counters(self):
        runtime = PipelineRuntime([ListStage(), SinkStage()])
        run(runtime, [1, 2])
        run(runtime, [4])
        assert runtime.chunks == 2
        assert runtime.stage_runs == {"evens": 2, "sink": 2}

    def test_stage_subset_override(self):
        runtime = PipelineRuntime([ListStage(), SinkStage()])
        emitted = {}
        ctx = StageContext(0.0, lambda i, v, port=None, packet=None:
                           emitted.__setitem__(i, v),
                           indices=range(3))
        survivors = runtime.run_chunk([1, 2, 3], ctx,
                                      stages=[runtime.stage("evens")])
        assert survivors == [2]
        assert emitted == {0: "odd", 2: "odd"}
        assert ctx.columns["index"] == [1]


class TestContext:
    def test_null_tally_is_inert_default(self):
        ctx = StageContext(0.0, lambda *a, **k: None)
        assert isinstance(ctx.tally, NullTally)
        ctx.tally.lookup("t", hit=True, verdict="v")
        ctx.tally.event("e", 3)
        ctx.tally.gauge("g", 1.0)
        ctx.tally.flush(None)  # must not touch the collector

    def test_tracer_defaults_to_none(self):
        ctx = StageContext(0.0, lambda *a, **k: None)
        assert ctx.tracer is None

    def test_entry_attributes_copied(self):
        attrs = {"chunk": 4}
        ctx = StageContext(0.0, lambda *a, **k: None,
                           entry_attributes=attrs)
        attrs["chunk"] = 9
        assert ctx.entry_attributes == {"chunk": 4}


class TestTracingShapes:
    def test_entry_and_stage_spans_nest(self):
        tracer = Tracer(clock=SimClock())
        runtime = PipelineRuntime([ListStage(), SinkStage()],
                                  [TracingMiddleware(tracer)])
        emitted = {}
        ctx = StageContext(0.0, lambda i, v, port=None, packet=None:
                           emitted.__setitem__(i, v),
                           indices=range(2), entry_name="test.chunk",
                           entry_attributes={"chunk": 2})
        runtime.run_chunk([2, 4], ctx)
        spans = {span.name: span for span in tracer.finished}
        assert set(spans) == {"test.chunk", "test.evens"}
        assert spans["test.evens"].parent_id == \
            spans["test.chunk"].span_id
        assert spans["test.evens"].attributes == {"n": 2}
        # SinkStage declares no span_name: it runs unspanned.

    def test_entry_name_none_skips_chunk_span(self):
        tracer = Tracer(clock=SimClock())
        runtime = PipelineRuntime([ListStage()],
                                  [TracingMiddleware(tracer)])
        ctx = StageContext(0.0, lambda *a, **k: None,
                           indices=range(1), entry_name=None)
        runtime.run_chunk([2], ctx)
        assert [span.name for span in tracer.finished] == \
            ["test.evens"]

    def test_tracer_published_on_context_and_restored(self):
        tracer = Tracer(clock=SimClock())
        seen = []

        class Peek:
            name = "peek"

            def process_batch(self, batch, ctx):
                seen.append(ctx.tracer)
                return []

        runtime = PipelineRuntime([Peek()],
                                  [TracingMiddleware(tracer)])
        ctx = StageContext(0.0, lambda *a, **k: None,
                           indices=range(1))
        runtime.run_chunk([1], ctx)
        assert seen == [tracer]
        assert ctx.tracer is None  # restored after the chunk
