"""Interconnect loss models (RQ2 precision analysis)."""

import numpy as np
import pytest

from repro.crossbar.losses import LineLossModel


class TestVoltageAtCell:
    def test_ideal_model_lossless(self):
        model = LineLossModel.ideal()
        assert model.voltage_at_cell(2.0, 100, 1e-3) == pytest.approx(2.0)

    def test_attenuation_grows_with_distance(self):
        model = LineLossModel(wire_resistance_per_cell_ohm=2.0)
        near = model.voltage_at_cell(1.0, 1, 1e-3)
        far = model.voltage_at_cell(1.0, 100, 1e-3)
        assert far < near < 1.0

    def test_high_resistance_cell_barely_attenuated(self):
        model = LineLossModel(wire_resistance_per_cell_ohm=2.0)
        # A 1 Gohm cell sees essentially the full drive voltage.
        assert model.voltage_at_cell(1.0, 100, 1e-9) == pytest.approx(
            1.0, rel=1e-6)

    def test_zero_conductance_cell_full_voltage(self):
        model = LineLossModel(wire_resistance_per_cell_ohm=2.0)
        assert model.voltage_at_cell(1.0, 50, 0.0) == 1.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            LineLossModel().voltage_at_cell(1.0, -1, 1e-3)


class TestAttenuationMatrix:
    def test_shape_and_range(self):
        model = LineLossModel(wire_resistance_per_cell_ohm=1.0)
        conductances = np.full((4, 5), 1e-2)
        matrix = model.attenuation_matrix(4, 5, conductances)
        assert matrix.shape == (4, 5)
        assert np.all(matrix <= 1.0)
        assert np.all(matrix > 0.0)

    def test_corner_cell_most_attenuated(self):
        model = LineLossModel(wire_resistance_per_cell_ohm=1.0)
        conductances = np.full((8, 8), 1e-2)
        matrix = model.attenuation_matrix(8, 8, conductances)
        assert matrix[7, 7] == matrix.min()
        assert matrix[0, 0] == matrix.max()

    def test_shape_mismatch_rejected(self):
        model = LineLossModel()
        with pytest.raises(ValueError):
            model.attenuation_matrix(3, 3, np.zeros((2, 3)))


class TestSneakAndCrosstalk:
    def test_sneak_current_scales_with_unselected(self):
        model = LineLossModel(sneak_conductance_s=1e-9)
        assert model.sneak_current(2.0, 100) == pytest.approx(2e-7)
        assert model.sneak_current(2.0, 0) == 0.0

    def test_sneak_negative_count_rejected(self):
        with pytest.raises(ValueError):
            LineLossModel().sneak_current(1.0, -1)

    def test_crosstalk_conserves_uniform_signal(self):
        model = LineLossModel(crosstalk_fraction=0.05)
        signals = np.ones(6)
        np.testing.assert_allclose(model.apply_crosstalk(signals),
                                   signals)

    def test_crosstalk_smears_spike(self):
        model = LineLossModel(crosstalk_fraction=0.1)
        signals = np.zeros(5)
        signals[2] = 1.0
        mixed = model.apply_crosstalk(signals)
        assert mixed[2] < 1.0
        assert mixed[1] > 0.0 and mixed[3] > 0.0

    def test_zero_crosstalk_identity(self):
        model = LineLossModel(crosstalk_fraction=0.0)
        signals = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(model.apply_crosstalk(signals),
                                      signals)

    def test_validation(self):
        with pytest.raises(ValueError):
            LineLossModel(wire_resistance_per_cell_ohm=-1.0)
        with pytest.raises(ValueError):
            LineLossModel(sneak_conductance_s=-1e-9)
        with pytest.raises(ValueError):
            LineLossModel(crosstalk_fraction=1.0)
