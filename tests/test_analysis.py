"""Statistics helpers and the per-figure series builders."""

import numpy as np
import pytest

from repro.analysis.figures import (
    figure1_series,
    figure2_series,
    figure4_series,
    figure7_series,
)
from repro.analysis.stats import (
    banded_fraction,
    describe,
    monotone_fraction,
)


class TestStats:
    def test_describe_fields(self):
        summary = describe([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_describe_empty_rejected(self):
        with pytest.raises(ValueError):
            describe([])

    def test_banded_fraction(self):
        values = [5, 15, 25, 35]
        assert banded_fraction(values, 10, 30) == pytest.approx(0.5)
        assert banded_fraction([], 0, 1) == 0.0

    def test_banded_fraction_validates(self):
        with pytest.raises(ValueError):
            banded_fraction([1.0], 2.0, 1.0)

    def test_monotone_fraction(self):
        assert monotone_fraction([1, 2, 3]) == 1.0
        assert monotone_fraction([3, 2, 1]) == 0.0
        assert monotone_fraction([1, 2, 1]) == pytest.approx(0.5)
        assert monotone_fraction([1]) == 1.0


class TestFigure1:
    def test_movement_split_matches_paper_claim(self):
        series = figure1_series(width_bits=16, n_entries=8,
                                n_searches=16)
        digital = series["digital_transistor"]
        analog = series["analog_memristor"]
        # "upto 90%" of digital energy is data movement; colocalized
        # analog computation moves nothing.
        assert digital["movement_fraction"] == pytest.approx(0.9)
        assert analog["movement_fraction"] == 0.0
        assert analog["compute_j"] == pytest.approx(analog["total_j"])


class TestFigure2:
    def test_distinct_outputs_per_state(self):
        series = figure2_series()
        inputs = series["inputs"]
        assert "S_0_0" in series and "S_1_2" in series
        # Different states produce different outputs for same input.
        assert not np.allclose(series["S_0_0"], series["S_0_2"])
        np.testing.assert_allclose(series["S_0_1"], 0.4 * inputs)

    def test_device_backed_close_to_ideal(self):
        ideal = figure2_series()
        device = figure2_series(device_backed=True, seed=1)
        np.testing.assert_allclose(device["S_0_2"], ideal["S_0_2"],
                                   rtol=0.15, atol=0.05)


class TestFigure4:
    def test_single_cell_trapezoid(self):
        series = figure4_series()
        single = series["single"]
        assert single.min() == 0.0
        assert single.max() == 1.0

    def test_series_product_below_single(self):
        series = figure4_series()
        assert np.all(series["series_product"] <= series["single"] + 1e-12)
        # Strictly smaller on the ramps.
        on_ramp = (series["single"] > 0.01) & (series["single"] < 0.99)
        assert np.all(series["series_product"][on_ramp]
                      < series["single"][on_ramp])


class TestFigure7:
    @pytest.mark.parametrize("panel, lo, hi", [("a", 1.0, 4.0),
                                               ("b", -2.0, 1.0)])
    def test_pdp_spans_zero_to_one(self, panel, lo, hi):
        series = figure7_series(panel, n_points=31, trials=6)
        assert series["inputs"][0] == lo
        assert series["inputs"][-1] == hi
        assert series["pdp_mean"].min() == pytest.approx(0.0, abs=0.05)
        assert series["pdp_mean"].max() == pytest.approx(1.0, abs=0.05)

    def test_measured_tracks_ideal(self):
        series = figure7_series("a", n_points=31, trials=8)
        error = np.abs(series["pdp_mean"] - series["pdp_ideal"])
        assert error.max() < 0.15

    def test_read_energy_reported(self):
        series = figure7_series("a", n_points=11, trials=2)
        assert np.all(series["read_energy_j"] > 0.0)

    def test_unknown_panel_rejected(self):
        with pytest.raises(ValueError):
            figure7_series("c")
