"""Batch evaluation must be bit-for-bit the scalar reference, vectorised.

The batched fast path (``response_array`` -> ``evaluate_batch`` ->
``match_batch`` / ``search_batch`` -> ``matvec_batch``) is a pure
re-expression of the scalar code in NumPy: for every random programming
and every feature batch, evaluating the batch must agree with looping
the scalar reference element by element within ``rtol=1e-9``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pcam_array import PCAMArray, PCAMWord
from repro.core.pcam_cell import PCAMCell, PCAMParams
from repro.core.pcam_pipeline import COMPOSITIONS, PCAMPipeline
from repro.robustness.models import (
    CompositeFaultModel,
    ConductanceDrift,
    ConverterQuantization,
    ProgrammingVariance,
    StuckAtFault,
    TransientReadNoise,
)

RTOL = 1e-9


@st.composite
def arbitrary_params(draw):
    """Random valid parameter sets, canonical slopes NOT required.

    Thresholds may coincide (degenerate zero-width ramps) and the
    programmed slopes may disagree with the canonical ones, which
    exercises the rail-clipping branches of the transfer function.
    """
    m1 = draw(st.floats(-10.0, 10.0, allow_nan=False))
    gap1 = draw(st.floats(0.0, 5.0))
    gap2 = draw(st.floats(0.0, 5.0))
    gap3 = draw(st.floats(0.0, 5.0))
    pmin = draw(st.floats(0.0, 0.5))
    pmax = draw(st.floats(0.5, 1.0))
    sa = draw(st.floats(-20.0, 20.0, allow_nan=False))
    sb = draw(st.floats(-20.0, 20.0, allow_nan=False))
    return PCAMParams(m1=m1, m2=m1 + gap1, m3=m1 + gap1 + gap2,
                      m4=m1 + gap1 + gap2 + gap3, sa=sa, sb=sb,
                      pmax=pmax, pmin=pmin)


@st.composite
def feature_batch(draw, params):
    """Feature values biased to land on and around region boundaries."""
    boundaries = [params.m1, params.m2, params.m3, params.m4]
    strategy = st.one_of(
        st.floats(-20.0, 20.0, allow_nan=False),
        st.sampled_from(boundaries),
        st.sampled_from(boundaries).map(lambda b: b + 1e-12),
        st.sampled_from(boundaries).map(lambda b: b - 1e-12))
    return np.array(draw(st.lists(strategy, min_size=1, max_size=32)))


# ----------------------------------------------------------------------
# Cell level
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_cell_response_array_matches_scalar(data):
    params = data.draw(arbitrary_params())
    values = data.draw(feature_batch(params))
    cell = PCAMCell(params)
    batch = cell.response_array(values)
    reference = np.array([cell.response(float(v)) for v in values])
    assert np.allclose(batch, reference, rtol=RTOL, atol=0.0)


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_cell_response_array_without_rail_clipping(data):
    params = data.draw(arbitrary_params())
    values = data.draw(feature_batch(params))
    cell = PCAMCell(params, clip_to_rails=False)
    batch = cell.response_array(values)
    reference = np.array([cell.response(float(v)) for v in values])
    assert np.allclose(batch, reference, rtol=RTOL, atol=0.0)


# ----------------------------------------------------------------------
# Pipeline level — every composition
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(data=st.data(), composition=st.sampled_from(sorted(COMPOSITIONS)))
def test_pipeline_evaluate_batch_matches_scalar(data, composition):
    stage_params = {name: data.draw(arbitrary_params())
                    for name in ("a", "b", "c")}
    pipeline = PCAMPipeline.from_params(stage_params,
                                        composition=composition)
    batch = {name: data.draw(feature_batch(params))
             for name, params in stage_params.items()}
    n = max(len(v) for v in batch.values())
    batch = {name: np.resize(values, n) for name, values in batch.items()}
    result = pipeline.evaluate_batch(batch)
    reference = np.array([
        pipeline.evaluate({name: float(values[i])
                           for name, values in batch.items()})
        for i in range(n)])
    assert result.shape == (n,)
    assert np.allclose(result, reference, rtol=RTOL, atol=0.0)


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_pipeline_trace_batch_matches_scalar(data):
    stage_params = {name: data.draw(arbitrary_params())
                    for name in ("a", "b")}
    pipeline = PCAMPipeline.from_params(stage_params)
    values = data.draw(feature_batch(stage_params["a"]))
    batch = {name: values for name in stage_params}
    composite, per_stage = pipeline.evaluate_trace_batch(batch)
    for i in range(len(values)):
        ref_total, ref_outputs = pipeline.evaluate_trace(
            {name: float(values[i]) for name in stage_params})
        assert np.isclose(composite[i], ref_total, rtol=RTOL, atol=0.0)
        for output in ref_outputs:
            assert np.isclose(per_stage[output.name][i],
                              output.probability, rtol=RTOL, atol=0.0)


def test_pipeline_matrix_input_matches_mapping():
    pipeline = PCAMPipeline.from_params({
        "a": PCAMParams.canonical(0.0, 1.0, 2.0, 3.0),
        "b": PCAMParams.canonical(-1.0, 0.0, 1.0, 2.0)})
    rng = np.random.default_rng(0)
    a, b = rng.uniform(-2, 4, 64), rng.uniform(-2, 4, 64)
    from_mapping = pipeline.evaluate_batch({"a": a, "b": b})
    from_matrix = pipeline.evaluate_batch(np.column_stack([a, b]))
    np.testing.assert_array_equal(from_mapping, from_matrix)


def test_pipeline_scalar_broadcasts_against_batch():
    pipeline = PCAMPipeline.from_params({
        "a": PCAMParams.canonical(0.0, 1.0, 2.0, 3.0),
        "b": PCAMParams.canonical(-1.0, 0.0, 1.0, 2.0)})
    result = pipeline.evaluate_batch(
        {"a": np.array([0.5, 1.5, 2.5]), "b": 0.5})
    reference = pipeline.evaluate_batch(
        {"a": np.array([0.5, 1.5, 2.5]), "b": np.full(3, 0.5)})
    np.testing.assert_array_equal(result, reference)


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_pipeline_energy_batch_matches_scalar_ideal(data):
    stage_params = {name: data.draw(arbitrary_params())
                    for name in ("a", "b")}
    pipeline = PCAMPipeline.from_params(stage_params)
    values = data.draw(feature_batch(stage_params["a"]))
    batch = {name: values for name in stage_params}
    probabilities, energy = pipeline.evaluate_with_energy_batch(batch)
    assert energy == 0.0
    for i in range(len(values)):
        ref_p, ref_e = pipeline.evaluate_with_energy(
            {name: float(values[i]) for name in stage_params})
        assert ref_e == 0.0
        assert np.isclose(probabilities[i], ref_p, rtol=RTOL, atol=0.0)


# ----------------------------------------------------------------------
# Array level
# ----------------------------------------------------------------------
@pytest.fixture
def small_array():
    array = PCAMArray(["delay", "load"])
    array.add({"delay": PCAMParams.canonical(0.1, 0.3, 0.6, 0.9),
               "load": PCAMParams.canonical(0.0, 0.2, 0.5, 0.8,
                                            pmax=0.9, pmin=0.05)})
    array.add({"delay": PCAMParams.canonical(0.2, 0.4, 0.5, 0.7),
               "load": PCAMParams.canonical(0.1, 0.3, 0.6, 0.9)})
    array.add({"delay": PCAMParams.canonical(-0.5, 0.0, 0.1, 0.6),
               "load": PCAMParams.canonical(0.4, 0.6, 0.7, 1.0)})
    return array


def test_word_match_batch_matches_scalar():
    word = PCAMWord.from_params({
        "delay": PCAMParams.canonical(0.1, 0.3, 0.6, 0.9),
        "load": PCAMParams.canonical(0.0, 0.2, 0.5, 0.8)})
    rng = np.random.default_rng(2)
    queries = {"delay": rng.uniform(-0.2, 1.2, 40),
               "load": rng.uniform(-0.2, 1.2, 40)}
    batch = word.match_batch(queries)
    reference = np.array([
        word.match({name: float(values[i])
                    for name, values in queries.items()})
        for i in range(40)])
    assert np.allclose(batch, reference, rtol=RTOL, atol=0.0)


def test_array_search_batch_matches_scalar(small_array):
    rng = np.random.default_rng(3)
    queries = {"delay": rng.uniform(-0.2, 1.2, 50),
               "load": rng.uniform(-0.2, 1.2, 50)}
    batch = small_array.search_batch(queries)
    assert batch.probabilities.shape == (50, len(small_array))
    for i in range(50):
        scalar = small_array.search(
            {name: float(values[i]) for name, values in queries.items()})
        assert np.allclose(batch.probabilities[i], scalar.probabilities,
                           rtol=RTOL, atol=0.0)
        assert batch.best_indices[i] == scalar.best_index
        assert np.isclose(batch.best_probabilities[i],
                          scalar.best_probability, rtol=RTOL, atol=0.0)
        assert (tuple(np.flatnonzero(batch.deterministic_mask[i]))
                == scalar.deterministic_indices)


def test_array_batch_energy_scales_with_queries(small_array):
    queries = {"delay": np.full(10, 0.5), "load": np.full(10, 0.4)}
    batch = small_array.search_batch(queries)
    one = small_array.search({"delay": 0.5, "load": 0.4})
    assert batch.energy_j == pytest.approx(10 * one.energy_j)


def test_array_search_counter_advances_per_query(small_array):
    small_array.search_batch({"delay": np.zeros(7), "load": np.zeros(7)})
    assert small_array.searches == 7


def test_empty_array_batch_search():
    array = PCAMArray(["x"])
    result = array.search_batch({"x": np.zeros(4)})
    assert result.probabilities.shape == (4, 0)
    assert list(result.best_indices) == [-1] * 4
    assert array.searches == 4


# ----------------------------------------------------------------------
# Under every fault model — the equivalence must survive injection
# ----------------------------------------------------------------------
# Stochastic faults draw one variate per evaluated element, in element
# order, so a faulted batch read must reproduce the stream a scalar
# loop consumes from an identically materialised fault.
FAULT_MODELS = [
    StuckAtFault(state="lrs"),
    StuckAtFault(state="hrs"),
    ConductanceDrift(scale=0.4),
    ProgrammingVariance(sigma=0.15),
    ConverterQuantization(dac_bits=4, adc_bits=5),
    TransientReadNoise(sigma=0.08),
    CompositeFaultModel([ConductanceDrift(scale=0.2),
                         ConverterQuantization(dac_bits=5, adc_bits=5),
                         TransientReadNoise(sigma=0.04)]),
]


def _twin_faulted_cells(model, params, seed):
    """Two cells carrying identically materialised fault instances.

    Stochastic faults hold their own RNG stream, which evaluation
    consumes — so batch and scalar legs each need a fresh twin rather
    than sharing one cell.
    """
    cells = []
    for _ in range(2):
        cell = PCAMCell(params)
        cell.inject_fault(model.materialise(cell.intended_params,
                                            np.random.default_rng(seed)))
        cells.append(cell)
    return cells


@pytest.mark.parametrize("model", FAULT_MODELS, ids=lambda m: m.name)
def test_faulted_cell_batch_matches_scalar(model):
    params = PCAMParams.canonical(0.0, 1.0, 2.0, 3.0,
                                  pmax=0.95, pmin=0.05)
    values = np.linspace(-1.5, 4.5, 37)
    batch_cell, scalar_cell = _twin_faulted_cells(model, params, seed=42)
    batch = batch_cell.response_array(values)
    reference = np.array([scalar_cell.response(float(v))
                          for v in values])
    assert np.allclose(batch, reference, rtol=RTOL, atol=0.0)


@settings(max_examples=40, deadline=None)
@given(data=st.data(), index=st.integers(0, len(FAULT_MODELS) - 1),
       seed=st.integers(0, 2**32 - 1))
def test_faulted_cell_batch_matches_scalar_arbitrary_params(data, index,
                                                            seed):
    model = FAULT_MODELS[index]
    params = data.draw(arbitrary_params())
    values = data.draw(feature_batch(params))
    batch_cell, scalar_cell = _twin_faulted_cells(model, params, seed)
    batch = batch_cell.response_array(values)
    reference = np.array([scalar_cell.response(float(v))
                          for v in values])
    assert np.allclose(batch, reference, rtol=RTOL, atol=0.0)


@pytest.mark.parametrize("model", FAULT_MODELS, ids=lambda m: m.name)
def test_faulted_pipeline_batch_matches_scalar(model):
    stage_params = {
        "a": PCAMParams.canonical(0.0, 1.0, 2.0, 3.0),
        "b": PCAMParams.canonical(-1.0, 0.0, 1.0, 2.0),
        "c": PCAMParams.canonical(0.5, 1.5, 2.5, 3.5, pmin=0.1)}
    pipelines = []
    for _ in range(2):
        pipeline = PCAMPipeline.from_params(stage_params)
        for offset, name in enumerate(pipeline.stage_names):
            stage = pipeline.stage(name)
            stage.inject_fault(model.materialise(
                stage.intended_params, np.random.default_rng(7 + offset)))
        pipelines.append(pipeline)
    rng = np.random.default_rng(9)
    batch = {name: rng.uniform(-2.0, 4.0, 25) for name in stage_params}
    result = pipelines[0].evaluate_batch(batch)
    reference = np.array([
        pipelines[1].evaluate({name: float(values[i])
                               for name, values in batch.items()})
        for i in range(25)])
    assert np.allclose(result, reference, rtol=RTOL, atol=0.0)
