"""Match-line sense amplifier."""

import numpy as np
import pytest

from repro.crossbar.sensing import SenseAmplifier


def test_ideal_sense_is_identity(rng):
    amp = SenseAmplifier.ideal()
    assert amp.sense(1e-6, rng) == pytest.approx(1e-6)


def test_gain_error_scales(rng):
    amp = SenseAmplifier(gain_error=0.05)
    assert amp.sense(1e-6, rng) == pytest.approx(1.05e-6)


def test_offset_adds(rng):
    amp = SenseAmplifier(offset_a=1e-9)
    assert amp.sense(0.0, rng) == pytest.approx(1e-9)


def test_noise_randomises(rng):
    amp = SenseAmplifier(noise_a_rms=1e-7)
    values = {amp.sense(1e-6, rng) for _ in range(8)}
    assert len(values) > 1


def test_normalise_clamps_to_unit_interval(rng):
    amp = SenseAmplifier.ideal()
    assert amp.normalise(2e-6, 1e-6, rng) == 1.0
    assert amp.normalise(-1e-6, 1e-6, rng) == 0.0
    assert amp.normalise(5e-7, 1e-6, rng) == pytest.approx(0.5)


def test_normalise_rejects_bad_full_scale(rng):
    with pytest.raises(ValueError):
        SenseAmplifier.ideal().normalise(1e-6, 0.0, rng)


def test_threshold_comparison(rng):
    amp = SenseAmplifier.ideal()
    assert amp.threshold(2e-6, 1e-6, rng) is True
    assert amp.threshold(5e-7, 1e-6, rng) is False


def test_validation():
    with pytest.raises(ValueError):
        SenseAmplifier(noise_a_rms=-1.0)
    with pytest.raises(ValueError):
        SenseAmplifier(energy_per_sense_j=-1.0)
