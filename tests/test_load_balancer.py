"""pCAM-based cognitive load balancing."""

import numpy as np
import pytest

from repro.netfunc.load_balancer import Backend, PCAMLoadBalancer


def make_lb(utils=(0.0, 0.0, 0.0), **kwargs):
    backends = [Backend(name=f"b{i}", capacity=1.0, active=u)
                for i, u in enumerate(utils)]
    kwargs.setdefault("rng", np.random.default_rng(11))
    return PCAMLoadBalancer(backends, **kwargs), backends


def test_fitness_full_when_idle():
    lb, _ = make_lb((0.1, 0.2, 0.3))
    np.testing.assert_allclose(lb.fitness(), 1.0)


def test_fitness_falls_past_comfort():
    lb, _ = make_lb((0.5, 0.9, 1.3), comfort=0.7, saturation=1.2)
    fitness = lb.fitness()
    assert fitness[0] == 1.0
    assert 0.0 < fitness[1] < 1.0
    assert fitness[2] == 0.0


def test_idle_backends_share_traffic_evenly():
    lb, backends = make_lb((0.0, 0.0, 0.0))
    for _ in range(900):
        lb.pick()
    counts = [b.served for b in backends]
    for count in counts:
        assert count == pytest.approx(300, rel=0.25)


def test_overloaded_backend_avoided():
    lb, backends = make_lb((0.2, 0.2, 1.5), comfort=0.7,
                           saturation=1.2)
    for _ in range(300):
        lb.pick()
    assert backends[2].served == 0


def test_all_saturated_falls_back_to_least_loaded():
    # RQ1: zero deterministic matches still yields the best partial
    # match (here: the least-bad backend).
    lb, backends = make_lb((1.5, 1.4, 1.8), comfort=0.5,
                           saturation=1.2)
    chosen = lb.pick()
    assert chosen is backends[1]


def test_assign_and_release_track_load():
    lb, _ = make_lb((0.0,))
    backend = lb.assign(load=0.3)
    assert backend.active == pytest.approx(0.3)
    lb.release(backend, load=0.3)
    assert backend.active == 0.0
    lb.release(backend, load=5.0)
    assert backend.active == 0.0  # floors at zero


def test_energy_charged_per_decision():
    lb, _ = make_lb((0.0, 0.0))
    lb.pick()
    assert lb.ledger.total > 0.0
    assert lb.decisions == 1


def test_validation():
    with pytest.raises(ValueError):
        PCAMLoadBalancer([])
    with pytest.raises(ValueError):
        make_lb((0.0,), comfort=1.5, saturation=1.2)
    with pytest.raises(ValueError):
        PCAMLoadBalancer([Backend("a"), Backend("a")])
    lb, _ = make_lb((0.0,))
    with pytest.raises(ValueError):
        lb.assign(load=-1.0)


def test_utilisation_property():
    backend = Backend(name="x", capacity=2.0, active=1.0)
    assert backend.utilisation == 0.5
    zero_capacity = Backend(name="z", capacity=0.0)
    assert zero_capacity.utilisation == 1.0
