"""The Figure 2 analog state machine."""

import numpy as np
import pytest

from repro.device.state_machine import (
    AnalogStateMachine,
    DeviceStateMachine,
)

TABLE = np.array([[0.2, 0.4, 0.8],
                  [0.3, 0.5, 0.9]])


class TestIdealStateMachine:
    def test_geometry(self):
        machine = AnalogStateMachine(TABLE)
        assert machine.n_machines == 2
        assert machine.n_states == 3

    def test_analog_compute_is_state_times_input(self):
        machine = AnalogStateMachine(TABLE)
        machine.select(0, 2)
        assert machine.compute(2.5).output == pytest.approx(0.8 * 2.5)

    def test_same_input_different_states_differ(self):
        # The defining memristor property shown in Figure 2.
        machine = AnalogStateMachine(TABLE)
        machine.select(0, 0)
        low = machine.compute(1.0).output
        machine.select(0, 2)
        high = machine.compute(1.0).output
        assert low != high

    def test_reprogramming_changes_outputs(self):
        machine = AnalogStateMachine(TABLE.copy())
        machine.select(1, 1)
        before = machine.compute(1.0).output
        machine.reprogram(1, np.array([0.1, 0.2, 0.3]))
        after = machine.compute(1.0).output
        assert before == pytest.approx(0.5)
        assert after == pytest.approx(0.2)

    def test_reprogram_validates_shape(self):
        machine = AnalogStateMachine(TABLE.copy())
        with pytest.raises(ValueError):
            machine.reprogram(0, np.array([0.1, 0.2]))

    def test_select_bounds_checked(self):
        machine = AnalogStateMachine(TABLE)
        with pytest.raises(IndexError):
            machine.select(5)
        with pytest.raises(IndexError):
            machine.select(0, 9)

    def test_transfer_vectorised(self):
        machine = AnalogStateMachine(TABLE)
        machine.select(0, 1)
        inputs = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(machine.transfer(inputs), 0.4 * inputs)

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            AnalogStateMachine(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            AnalogStateMachine(np.array([1.0, 2.0]))


class TestDeviceStateMachine:
    def test_compute_approximates_ideal(self, rng):
        machine = DeviceStateMachine(TABLE, rng=rng)
        machine.select(0, 2)
        result = machine.compute(2.0)
        assert result.output == pytest.approx(0.8 * 2.0, rel=0.08)
        assert result.energy_j > 0.0

    def test_state_change_changes_output(self, rng):
        machine = DeviceStateMachine(TABLE, rng=rng)
        machine.select(0, 0)
        low = machine.compute(1.5).output
        machine.set_state(2)
        high = machine.compute(1.5).output
        assert high > low

    def test_programming_energy_accumulates(self, rng):
        machine = DeviceStateMachine(TABLE, rng=rng)
        before = machine.programming_energy_j
        machine.select(1, 1)
        assert machine.programming_energy_j > before

    def test_rejects_states_outside_unit_interval(self):
        with pytest.raises(ValueError):
            DeviceStateMachine(np.array([[0.5, 1.5]]))

    def test_geometry_forwarded(self, rng):
        machine = DeviceStateMachine(TABLE, rng=rng)
        assert machine.n_machines == 2
        assert machine.n_states == 3
