"""AIMD responsive flows and ECN."""

import numpy as np
import pytest

from repro.netfunc.aqm.base import TailDropAQM
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.packet import Packet
from repro.simnet.engine import Simulator
from repro.simnet.queue_sim import BottleneckQueue
from repro.simnet.responsive import AIMDFlowGenerator, FeedbackRouter


def run_scenario(aqm, *, ecn=False, n_flows=4, duration=8.0,
                 rate_bps=20e6, capacity=800, seed=0):
    sim = Simulator()
    router = FeedbackRouter()
    queue = BottleneckQueue(sim, service_rate_bps=rate_bps,
                            capacity_packets=capacity, aqm=aqm,
                            delivery_listener=router.on_delivery,
                            drop_listener=router.on_drop)
    flows = [AIMDFlowGenerator(router, rtt_s=0.04, flow_id=i,
                               ecn_capable=ecn,
                               rng=np.random.default_rng(seed + i))
             for i in range(n_flows)]
    for flow in flows:
        flow.attach(sim, queue.enqueue)
    sim.run_until(duration)
    return queue, flows


class TestFeedbackRouter:
    def test_routes_by_flow_id(self):
        router = FeedbackRouter()
        seen = []
        router.register(3, lambda p: seen.append(("d", p.flow_id)),
                        lambda p: seen.append(("x", p.flow_id)))
        router.on_delivery(Packet(flow_id=3))
        router.on_drop(Packet(flow_id=3))
        router.on_delivery(Packet(flow_id=9))  # unregistered: ignored
        assert seen == [("d", 3), ("x", 3)]

    def test_duplicate_registration_rejected(self):
        router = FeedbackRouter()
        router.register(1, lambda p: None, lambda p: None)
        with pytest.raises(ValueError):
            router.register(1, lambda p: None, lambda p: None)


class TestAIMDDynamics:
    def test_window_grows_without_congestion(self):
        queue, flows = run_scenario(TailDropAQM(), n_flows=1,
                                    duration=3.0, rate_bps=100e6)
        assert flows[0].cwnd > 10.0
        assert flows[0].losses == 0

    def test_drops_halve_the_window(self):
        router = FeedbackRouter()
        flow = AIMDFlowGenerator(router, rtt_s=0.04, flow_id=0,
                                 initial_window=64.0,
                                 rng=np.random.default_rng(1))
        flow._sim = Simulator()
        flow._on_drop(Packet(flow_id=0))
        assert flow.cwnd == pytest.approx(32.0)

    def test_at_most_one_backoff_per_rtt(self):
        router = FeedbackRouter()
        flow = AIMDFlowGenerator(router, rtt_s=0.04, flow_id=0,
                                 initial_window=64.0,
                                 rng=np.random.default_rng(1))
        flow._sim = Simulator()
        flow._on_drop(Packet(flow_id=0))
        flow._on_drop(Packet(flow_id=0))  # same instant: ignored
        assert flow.cwnd == pytest.approx(32.0)

    def test_flows_fill_the_link(self):
        queue, _ = run_scenario(TailDropAQM(), duration=6.0)
        delivered_bps = (queue.recorder.delivered * 1000 * 8) / 6.0
        assert delivered_bps > 0.8 * 20e6

    def test_bufferbloat_without_aqm(self):
        queue, _ = run_scenario(TailDropAQM(), duration=6.0)
        # AIMD fills the buffer: standing queue near capacity.
        assert queue.recorder.summary().mean_delay_s > 0.1

    def test_pcam_aqm_removes_bufferbloat(self):
        bloated, _ = run_scenario(TailDropAQM(), duration=6.0)
        managed, _ = run_scenario(
            PCAMAQM(rng=np.random.default_rng(9)), duration=6.0)
        bloat = bloated.recorder.summary().mean_delay_s
        lean = managed.recorder.summary().mean_delay_s
        assert lean < 0.2 * bloat
        # Throughput stays healthy despite the early drops.
        assert managed.recorder.delivered > \
            0.75 * bloated.recorder.delivered

    def test_validation(self):
        router = FeedbackRouter()
        with pytest.raises(ValueError):
            AIMDFlowGenerator(router, rtt_s=0.0)
        with pytest.raises(ValueError):
            AIMDFlowGenerator(FeedbackRouter(), initial_window=0.5)


class TestECN:
    def test_marks_replace_drops_for_capable_flows(self):
        aqm = PCAMAQM(ecn_enabled=True, rng=np.random.default_rng(9))
        queue, flows = run_scenario(aqm, ecn=True, duration=6.0)
        assert aqm.ecn_marks > 0
        assert queue.aqm_drops == 0
        # Senders still back off: delay stays controlled.
        assert queue.recorder.summary().mean_delay_s < 0.03
        assert sum(flow.marks_seen for flow in flows) > 0

    def test_non_capable_packets_still_dropped(self):
        aqm = PCAMAQM(ecn_enabled=True, rng=np.random.default_rng(9))
        queue, _ = run_scenario(aqm, ecn=False, duration=6.0)
        assert aqm.ecn_marks == 0
        assert queue.aqm_drops > 0

    def test_ecn_disabled_ignores_ect(self):
        aqm = PCAMAQM(ecn_enabled=False, rng=np.random.default_rng(9))
        queue, _ = run_scenario(aqm, ecn=True, duration=6.0)
        assert aqm.ecn_marks == 0
        assert queue.aqm_drops > 0
