"""The consolidated reproduction report."""

import pytest

from repro.analysis.report import ReproductionReport, run_report


class TestReportStructure:
    def test_checks_and_verdict(self):
        report = ReproductionReport()
        report.section("demo")
        report.add("a line")
        report.check("claim A", "value", True)
        report.check("claim B", "value", True)
        assert report.all_passed
        text = report.render()
        assert "claim A" in text and "[OK ]" in text
        assert "every checked claim reproduced" in text

    def test_failed_check_flips_verdict(self):
        report = ReproductionReport()
        report.check("claim", "value", False)
        assert not report.all_passed
        assert "FAIL" in report.render()
        assert "DID NOT HOLD" in report.render()


@pytest.mark.slow
class TestFullRun:
    def test_quick_report_reproduces_all_claims(self, small_dataset):
        progress_lines = []
        report = run_report(dataset=small_dataset, quick=True,
                            progress=progress_lines.append)
        assert report.all_passed
        assert len(report.checks) == 10
        assert progress_lines  # progress callback used
        text = report.render()
        assert "Table 1" in text
        assert "Figure 8" in text


def test_module_entry_point_exists():
    from repro.analysis import report
    assert callable(report.main)
