"""The cognitive network controller."""

import pytest

from repro.core.compiler import (
    CognitiveCompiler,
    Domain,
    FunctionKind,
    NetworkFunctionSpec,
    PrecisionClass,
)
from repro.core.pcam_cell import prog_pcam
from repro.core.programming import PipelineProgram
from repro.control import CognitiveNetworkController


def spec(name, precision=PrecisionClass.LOW,
         kind=FunctionKind.COGNITIVE):
    return NetworkFunctionSpec(name=name, precision=precision, kind=kind)


def test_register_and_compile_splits_domains():
    controller = CognitiveNetworkController()
    controller.register(spec("aqm"))
    controller.register(spec("ip_lookup", PrecisionClass.HIGH,
                             FunctionKind.DETERMINISTIC))
    placement = controller.compile()
    assert placement.domain_of("aqm") is Domain.ANALOG_PCAM
    assert controller.domain_of("ip_lookup") is Domain.DIGITAL_TCAM


def test_install_callback_receives_domain():
    controller = CognitiveNetworkController()
    installed = {}
    controller.register(spec("aqm"),
                        install=lambda d: installed.update(aqm=d))
    controller.compile()
    assert installed["aqm"] is Domain.ANALOG_PCAM


def test_duplicate_registration_rejected():
    controller = CognitiveNetworkController()
    controller.register(spec("aqm"))
    with pytest.raises(ValueError):
        controller.register(spec("aqm"))


def test_compile_without_functions_rejected():
    with pytest.raises(ValueError):
        CognitiveNetworkController().compile()


def test_domain_lookup_before_compile_rejected():
    controller = CognitiveNetworkController()
    controller.register(spec("aqm"))
    with pytest.raises(RuntimeError):
        controller.domain_of("aqm")


def test_runtime_reprogramming_path():
    controller = CognitiveNetworkController()
    controller.register(spec("aqm"))
    controller.compile()
    pipeline = (PipelineProgram()
                .stage("sojourn", prog_pcam(0, 1, 2, 3))).build()
    controller.attach_pipeline("aqm", "pdp", pipeline)
    controller.reprogram("aqm", "pdp", "sojourn",
                         prog_pcam(5, 6, 7, 8))
    assert pipeline.stage("sojourn").params.m1 == 5
    assert controller.reprogram_events == 1


def test_reprogram_digital_function_rejected():
    controller = CognitiveNetworkController()
    controller.register(spec("ip_lookup", PrecisionClass.HIGH,
                             FunctionKind.DETERMINISTIC))
    controller.compile()
    pipeline = (PipelineProgram()
                .stage("s", prog_pcam(0, 1, 2, 3))).build()
    controller.attach_pipeline("ip_lookup", "p", pipeline)
    with pytest.raises(ValueError):
        controller.reprogram("ip_lookup", "p", "s",
                             prog_pcam(0, 1, 2, 3))


def test_unknown_function_and_pipeline_rejected():
    controller = CognitiveNetworkController()
    controller.register(spec("aqm"))
    controller.compile()
    with pytest.raises(KeyError):
        controller.attach_pipeline("ghost", "p", None)
    with pytest.raises(KeyError):
        controller.reprogram("aqm", "missing", "s",
                             prog_pcam(0, 1, 2, 3))


def test_report_lists_every_function():
    controller = CognitiveNetworkController()
    controller.register(spec("aqm"))
    controller.register(spec("firewall", PrecisionClass.HIGH,
                             FunctionKind.DETERMINISTIC))
    controller.compile()
    report = "\n".join(controller.report())
    assert "aqm" in report and "firewall" in report
    assert "analog_pcam" in report and "digital_tcam" in report


def test_report_before_compile():
    assert CognitiveNetworkController().report() == ["<not compiled>"]
