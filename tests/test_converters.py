"""DAC/ADC boundary converters."""

import numpy as np
import pytest

from repro.crossbar.converters import ADC, DAC


class TestDAC:
    def test_levels_and_lsb(self):
        dac = DAC(bits=8, v_min=0.0, v_max=4.0)
        assert dac.levels == 256
        assert dac.lsb_v == pytest.approx(4.0 / 255)

    def test_encode_endpoints(self):
        dac = DAC(bits=8)
        assert dac.encode(0.0) == 0
        assert dac.encode(1.0) == 255

    def test_encode_clamps(self):
        dac = DAC(bits=8)
        assert dac.encode(-0.5) == 0
        assert dac.encode(1.5) == 255

    def test_convert_endpoints(self):
        dac = DAC(bits=8, v_min=0.0, v_max=4.0)
        assert dac.convert(0) == pytest.approx(0.0)
        assert dac.convert(255) == pytest.approx(4.0)

    def test_convert_bounds_checked(self):
        with pytest.raises(ValueError):
            DAC(bits=4).convert(16)

    def test_quantization_error_bounded_by_half_lsb(self):
        dac = DAC(bits=6, v_min=0.0, v_max=1.0)
        for value in np.linspace(0, 1, 37):
            error = abs(dac.quantize(float(value)) - value)
            assert error <= dac.lsb_v / 2 + 1e-12

    def test_more_bits_less_error(self):
        coarse = DAC(bits=4, v_min=0.0, v_max=1.0)
        fine = DAC(bits=12, v_min=0.0, v_max=1.0)
        value = 0.123456
        assert (abs(fine.quantize(value) - value)
                < abs(coarse.quantize(value) - value))

    def test_inl_bows_midscale_only(self):
        dac = DAC(bits=8, v_min=0.0, v_max=1.0, inl_lsb=2.0)
        assert dac.convert(0) == pytest.approx(0.0)
        assert dac.convert(255) == pytest.approx(1.0, abs=1e-9)
        ideal_mid = 128 * dac.lsb_v
        assert dac.convert(128) > ideal_mid

    def test_quantize_array_matches_scalar(self):
        dac = DAC(bits=5, v_min=0.0, v_max=2.0)
        values = np.linspace(-0.2, 1.2, 11)
        array = dac.quantize_array(values)
        scalar = [dac.quantize(float(v)) for v in values]
        np.testing.assert_allclose(array, scalar)

    def test_validation(self):
        with pytest.raises(ValueError):
            DAC(bits=0)
        with pytest.raises(ValueError):
            DAC(v_min=1.0, v_max=0.0)
        with pytest.raises(ValueError):
            DAC(energy_per_conversion_j=-1.0)


class TestADC:
    def test_sample_reconstruct_round_trip(self):
        adc = ADC(bits=8, v_min=0.0, v_max=1.0)
        for voltage in (0.0, 0.25, 0.5, 1.0):
            assert adc.quantize(voltage) == pytest.approx(
                voltage, abs=adc.lsb_v / 2 + 1e-12)

    def test_sample_clamps_at_rails(self):
        adc = ADC(bits=8, v_min=0.0, v_max=1.0)
        assert adc.sample(-5.0) == 0
        assert adc.sample(5.0) == adc.levels - 1

    def test_reconstruct_bounds_checked(self):
        with pytest.raises(ValueError):
            ADC(bits=4).reconstruct(-1)

    def test_quantize_array_matches_scalar(self):
        adc = ADC(bits=6, v_min=0.0, v_max=1.0)
        voltages = np.linspace(-0.1, 1.1, 13)
        array = adc.quantize_array(voltages)
        scalar = [adc.quantize(float(v)) for v in voltages]
        np.testing.assert_allclose(array, scalar)

    def test_validation(self):
        with pytest.raises(ValueError):
            ADC(bits=0)
        with pytest.raises(ValueError):
            ADC(v_min=2.0, v_max=1.0)
        with pytest.raises(ValueError):
            ADC(energy_per_conversion_j=-0.1)
