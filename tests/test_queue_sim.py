"""The event-driven bottleneck queue."""

import pytest

from repro.netfunc.aqm.base import AQMAlgorithm
from repro.packet import Packet
from repro.simnet.engine import Simulator
from repro.simnet.queue_sim import BottleneckQueue


def make_queue(sim=None, rate_bps=8e6, **kwargs):
    sim = sim or Simulator()
    return sim, BottleneckQueue(sim, service_rate_bps=rate_bps, **kwargs)


def test_single_packet_served_after_transmission_time():
    sim, queue = make_queue(rate_bps=8e6)
    queue.enqueue(Packet(size_bytes=1000))  # 1 ms at 8 Mbps
    sim.run()
    assert queue.recorder.delivered == 1
    assert queue.recorder.departure_times[0] == pytest.approx(1e-3)


def test_fifo_service_and_sojourn_accumulation():
    sim, queue = make_queue(rate_bps=8e6)
    queue.enqueue(Packet(size_bytes=1000))
    queue.enqueue(Packet(size_bytes=1000))
    sim.run()
    sojourns = queue.recorder.sojourn_times
    assert sojourns[0] == pytest.approx(1e-3)
    assert sojourns[1] == pytest.approx(2e-3)


def test_overflow_tail_drop():
    sim, queue = make_queue(capacity_packets=2)
    for _ in range(5):
        queue.enqueue(Packet())
    # One packet is in service, two wait (the capacity), two overflow.
    assert queue.overflow_drops == 2
    assert queue.admitted == 3


def test_aqm_enqueue_drop_counted():
    class DropEverything(AQMAlgorithm):
        def on_enqueue(self, packet, queue, now):
            return True

    sim, queue = make_queue(aqm=DropEverything())
    queue.enqueue(Packet())
    assert queue.aqm_drops == 1
    assert queue.recorder.dropped == 1
    assert queue.backlog_packets == 0


def test_aqm_dequeue_drop_skips_packet():
    class DropFirstAtHead(AQMAlgorithm):
        def __init__(self):
            self.count = 0

        def on_dequeue(self, packet, queue, now, sojourn_s):
            self.count += 1
            return self.count == 1

    sim, queue = make_queue(aqm=DropFirstAtHead())
    queue.enqueue(Packet(size_bytes=1000))
    queue.enqueue(Packet(size_bytes=1000))
    sim.run()
    assert queue.recorder.delivered == 1
    assert queue.aqm_drops == 1


def test_backlog_bytes_tracked():
    sim, queue = make_queue()
    queue.enqueue(Packet(size_bytes=700))
    queue.enqueue(Packet(size_bytes=300))
    # First packet entered service immediately; the second waits.
    assert queue.backlog_bytes == 300
    assert queue.backlog_packets == 1


def test_last_sojourn_visible_to_aqm():
    observed = []

    class Peek(AQMAlgorithm):
        def on_enqueue(self, packet, queue, now):
            observed.append(queue.last_sojourn_s)
            return False

    sim = Simulator()
    queue = BottleneckQueue(sim, service_rate_bps=8e6, aqm=Peek())
    queue.enqueue(Packet(size_bytes=1000))
    sim.run_until(0.002)
    queue.enqueue(Packet(size_bytes=1000))
    assert observed[0] == 0.0
    assert observed[1] == pytest.approx(1e-3)


def test_periodic_queue_sampling():
    sim = Simulator()
    queue = BottleneckQueue(sim, service_rate_bps=8e3,
                            sample_interval_s=0.01)
    queue.enqueue(Packet(size_bytes=1000))  # 1 s service time
    sim.run_until(0.05)
    assert len(queue.recorder.sample_times) == 5


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        BottleneckQueue(sim, service_rate_bps=0.0)
    with pytest.raises(ValueError):
        BottleneckQueue(sim, service_rate_bps=1e6, capacity_packets=0)
