"""Analog derivative feature extraction."""

import numpy as np
import pytest

from repro.netfunc.aqm.derivatives import (
    DerivativeChain,
    ExponentialSmoother,
    FeatureExtractor,
)


class TestSmoother:
    def test_first_sample_passes_through(self):
        smoother = ExponentialSmoother(tau_s=0.1)
        assert smoother.update(0.0, 5.0) == 5.0

    def test_converges_to_constant_input(self):
        smoother = ExponentialSmoother(tau_s=0.05)
        value = 0.0
        for step in range(100):
            value = smoother.update(step * 0.01, 3.0)
        assert value == pytest.approx(3.0, abs=1e-6)

    def test_tau_controls_response_speed(self):
        fast = ExponentialSmoother(tau_s=0.01)
        slow = ExponentialSmoother(tau_s=1.0)
        for smoother in (fast, slow):
            smoother.update(0.0, 0.0)
            smoother.update(0.1, 1.0)
        assert fast.value > slow.value

    def test_out_of_order_samples_rejected(self):
        smoother = ExponentialSmoother(tau_s=0.1)
        smoother.update(1.0, 1.0)
        with pytest.raises(ValueError):
            smoother.update(0.5, 1.0)

    def test_coincident_sample_no_change(self):
        smoother = ExponentialSmoother(tau_s=0.1)
        smoother.update(1.0, 1.0)
        assert smoother.update(1.0, 99.0) == 1.0

    def test_reset(self):
        smoother = ExponentialSmoother(tau_s=0.1)
        smoother.update(0.0, 5.0)
        smoother.reset()
        assert smoother.value == 0.0

    def test_tau_validated(self):
        with pytest.raises(ValueError):
            ExponentialSmoother(tau_s=0.0)


class TestDerivativeChain:
    def test_linear_ramp_gives_constant_first_derivative(self):
        chain = DerivativeChain(order=1, tau_s=0.01)
        outputs = None
        for step in range(200):
            t = step * 0.01
            outputs = chain.update(t, 2.0 * t)  # slope 2
        assert outputs[1] == pytest.approx(2.0, rel=0.05)

    def test_constant_input_zero_derivatives(self):
        chain = DerivativeChain(order=3, tau_s=0.01)
        outputs = None
        for step in range(100):
            outputs = chain.update(step * 0.01, 7.0)
        assert outputs[0] == pytest.approx(7.0)
        for derivative in outputs[1:]:
            assert derivative == pytest.approx(0.0, abs=1e-6)

    def test_quadratic_gives_constant_second_derivative(self):
        chain = DerivativeChain(order=2, tau_s=0.005)
        outputs = None
        for step in range(600):
            t = step * 0.005
            outputs = chain.update(t, 0.5 * 3.0 * t * t)  # d2 = 3
        assert outputs[2] == pytest.approx(3.0, rel=0.15)

    def test_output_length_matches_order(self):
        chain = DerivativeChain(order=3)
        assert len(chain.update(0.0, 1.0)) == 4

    def test_rising_signal_positive_first_derivative(self):
        chain = DerivativeChain(order=1, tau_s=0.02)
        for step in range(50):
            outputs = chain.update(step * 0.01, step * 0.1)
        assert outputs[1] > 0.0

    def test_reset_clears_history(self):
        chain = DerivativeChain(order=1, tau_s=0.01)
        for step in range(10):
            chain.update(step * 0.01, step * 1.0)
        chain.reset()
        outputs = chain.update(0.0, 5.0)
        assert outputs[1] == 0.0

    def test_order_validated(self):
        with pytest.raises(ValueError):
            DerivativeChain(order=0)
        with pytest.raises(ValueError):
            DerivativeChain(order=4)


class TestFeatureExtractor:
    def test_eight_features_at_order_three(self):
        extractor = FeatureExtractor(order=3)
        features = extractor.update(0.0, 0.01, 100.0)
        assert set(features) == {
            "sojourn_time", "d_sojourn", "d2_sojourn", "d3_sojourn",
            "buffer_size", "d_buffer", "d2_buffer", "d3_buffer"}

    def test_feature_names_respect_order(self):
        extractor = FeatureExtractor(order=1)
        assert extractor.feature_names == (
            "sojourn_time", "d_sojourn", "buffer_size", "d_buffer")

    def test_sojourn_and_buffer_independent(self):
        extractor = FeatureExtractor(order=1, tau_s=0.01)
        features = None
        for step in range(100):
            t = step * 0.01
            features = extractor.update(t, 0.02, t * 10.0)
        assert features["d_sojourn"] == pytest.approx(0.0, abs=0.01)
        assert features["d_buffer"] == pytest.approx(10.0, rel=0.1)

    def test_reset(self):
        extractor = FeatureExtractor(order=1, tau_s=0.01)
        for step in range(10):
            extractor.update(step * 0.01, step * 0.01, 0.0)
        extractor.reset()
        features = extractor.update(0.0, 0.05, 1.0)
        assert features["sojourn_time"] == pytest.approx(0.05)
        assert features["d_sojourn"] == 0.0


class TestSmootherReplace:
    def test_replace_reruns_the_last_blend(self):
        import math
        smoother = ExponentialSmoother(tau_s=0.1)
        smoother.update(0.0, 0.0)
        smoother.update(1.0, 10.0)
        replaced = smoother.replace(1.0, 20.0)
        alpha = 1.0 - math.exp(-1.0 / 0.1)
        assert replaced == pytest.approx(alpha * 20.0)
        assert smoother.value == replaced

    def test_replace_matches_a_fresh_run_with_the_final_sample(self):
        witness = ExponentialSmoother(tau_s=0.1)
        witness.update(0.0, 1.0)
        witness.update(0.5, 8.0)
        corrected = ExponentialSmoother(tau_s=0.1)
        corrected.update(0.0, 1.0)
        corrected.update(0.5, 3.0)
        corrected.replace(0.5, 8.0)
        assert corrected.value == pytest.approx(witness.value)

    def test_replace_before_history_acts_as_first_sample(self):
        smoother = ExponentialSmoother(tau_s=0.1)
        assert smoother.replace(0.0, 4.0) == 4.0
        assert smoother.value == 4.0

    def test_replace_of_the_seed_sample(self):
        smoother = ExponentialSmoother(tau_s=0.1)
        smoother.update(0.0, 5.0)
        assert smoother.replace(0.0, 7.0) == 7.0

    def test_replace_at_wrong_time_rejected(self):
        smoother = ExponentialSmoother(tau_s=0.1)
        smoother.update(1.0, 1.0)
        with pytest.raises(ValueError):
            smoother.replace(2.0, 1.0)

    def test_reset_clears_replace_state(self):
        smoother = ExponentialSmoother(tau_s=0.1)
        smoother.update(0.0, 1.0)
        smoother.update(1.0, 2.0)
        smoother.reset()
        assert smoother.replace(5.0, 9.0) == 9.0


class TestCoincidentSamples:
    def test_last_writer_wins_on_the_level(self):
        # A chain that saw 1.0 then 5.0 at the same instant must end
        # up exactly where a chain that only saw 5.0 does.
        corrected = DerivativeChain(order=1, tau_s=0.05)
        corrected.update(0.0, 0.0)
        corrected.update(0.01, 1.0)
        late = corrected.update(0.01, 5.0)
        witness = DerivativeChain(order=1, tau_s=0.05)
        witness.update(0.0, 0.0)
        expected = witness.update(0.01, 5.0)
        assert late[0] == pytest.approx(expected[0])

    def test_coincident_sample_not_silently_dropped(self):
        chain = DerivativeChain(order=1, tau_s=0.05)
        chain.update(0.0, 0.0)
        first = chain.update(0.01, 1.0)
        second = chain.update(0.01, 5.0)
        assert second[0] != first[0]

    def test_derivatives_hold_across_coincident_samples(self):
        # A zero-width interval carries no slope information.
        chain = DerivativeChain(order=2, tau_s=0.05)
        chain.update(0.0, 0.0)
        before = chain.update(0.01, 1.0)
        after = chain.update(0.01, 5.0)
        assert after[1] == before[1]
        assert after[2] == before[2]

    def test_next_interval_differentiates_the_replaced_level(self):
        corrected = DerivativeChain(order=1, tau_s=0.05)
        corrected.update(0.0, 0.0)
        corrected.update(0.01, 1.0)
        corrected.update(0.01, 5.0)
        witness = DerivativeChain(order=1, tau_s=0.05)
        witness.update(0.0, 0.0)
        witness.update(0.01, 5.0)
        assert corrected.update(0.02, 6.0)[0] == pytest.approx(
            witness.update(0.02, 6.0)[0])

    def test_out_of_order_samples_rejected(self):
        chain = DerivativeChain(order=1)
        chain.update(1.0, 1.0)
        with pytest.raises(ValueError):
            chain.update(0.5, 1.0)


class TestFirstSampleSeeding:
    def test_first_sample_yields_zero_derivatives(self):
        chain = DerivativeChain(order=3, tau_s=0.05)
        assert chain.update(0.0, 10.0) == [10.0, 0.0, 0.0, 0.0]

    def test_second_sample_derivative_is_smoothed_not_raw(self):
        import math
        tau, dt = 0.05, 0.01
        chain = DerivativeChain(order=1, tau_s=tau)
        chain.update(0.0, 10.0)
        outputs = chain.update(dt, 20.0)
        alpha = 1.0 - math.exp(-dt / tau)
        level = 10.0 + alpha * 10.0
        raw = (level - 10.0) / dt
        # The analog stage is never bypassed: the raw finite
        # difference must pass through the stage low-pass (seeded at
        # zero), not seed the smoother directly.
        assert outputs[1] == pytest.approx(alpha * raw)
        assert 0.0 < outputs[1] < raw
