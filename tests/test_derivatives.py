"""Analog derivative feature extraction."""

import numpy as np
import pytest

from repro.netfunc.aqm.derivatives import (
    DerivativeChain,
    ExponentialSmoother,
    FeatureExtractor,
)


class TestSmoother:
    def test_first_sample_passes_through(self):
        smoother = ExponentialSmoother(tau_s=0.1)
        assert smoother.update(0.0, 5.0) == 5.0

    def test_converges_to_constant_input(self):
        smoother = ExponentialSmoother(tau_s=0.05)
        value = 0.0
        for step in range(100):
            value = smoother.update(step * 0.01, 3.0)
        assert value == pytest.approx(3.0, abs=1e-6)

    def test_tau_controls_response_speed(self):
        fast = ExponentialSmoother(tau_s=0.01)
        slow = ExponentialSmoother(tau_s=1.0)
        for smoother in (fast, slow):
            smoother.update(0.0, 0.0)
            smoother.update(0.1, 1.0)
        assert fast.value > slow.value

    def test_out_of_order_samples_rejected(self):
        smoother = ExponentialSmoother(tau_s=0.1)
        smoother.update(1.0, 1.0)
        with pytest.raises(ValueError):
            smoother.update(0.5, 1.0)

    def test_coincident_sample_no_change(self):
        smoother = ExponentialSmoother(tau_s=0.1)
        smoother.update(1.0, 1.0)
        assert smoother.update(1.0, 99.0) == 1.0

    def test_reset(self):
        smoother = ExponentialSmoother(tau_s=0.1)
        smoother.update(0.0, 5.0)
        smoother.reset()
        assert smoother.value == 0.0

    def test_tau_validated(self):
        with pytest.raises(ValueError):
            ExponentialSmoother(tau_s=0.0)


class TestDerivativeChain:
    def test_linear_ramp_gives_constant_first_derivative(self):
        chain = DerivativeChain(order=1, tau_s=0.01)
        outputs = None
        for step in range(200):
            t = step * 0.01
            outputs = chain.update(t, 2.0 * t)  # slope 2
        assert outputs[1] == pytest.approx(2.0, rel=0.05)

    def test_constant_input_zero_derivatives(self):
        chain = DerivativeChain(order=3, tau_s=0.01)
        outputs = None
        for step in range(100):
            outputs = chain.update(step * 0.01, 7.0)
        assert outputs[0] == pytest.approx(7.0)
        for derivative in outputs[1:]:
            assert derivative == pytest.approx(0.0, abs=1e-6)

    def test_quadratic_gives_constant_second_derivative(self):
        chain = DerivativeChain(order=2, tau_s=0.005)
        outputs = None
        for step in range(600):
            t = step * 0.005
            outputs = chain.update(t, 0.5 * 3.0 * t * t)  # d2 = 3
        assert outputs[2] == pytest.approx(3.0, rel=0.15)

    def test_output_length_matches_order(self):
        chain = DerivativeChain(order=3)
        assert len(chain.update(0.0, 1.0)) == 4

    def test_rising_signal_positive_first_derivative(self):
        chain = DerivativeChain(order=1, tau_s=0.02)
        for step in range(50):
            outputs = chain.update(step * 0.01, step * 0.1)
        assert outputs[1] > 0.0

    def test_reset_clears_history(self):
        chain = DerivativeChain(order=1, tau_s=0.01)
        for step in range(10):
            chain.update(step * 0.01, step * 1.0)
        chain.reset()
        outputs = chain.update(0.0, 5.0)
        assert outputs[1] == 0.0

    def test_order_validated(self):
        with pytest.raises(ValueError):
            DerivativeChain(order=0)
        with pytest.raises(ValueError):
            DerivativeChain(order=4)


class TestFeatureExtractor:
    def test_eight_features_at_order_three(self):
        extractor = FeatureExtractor(order=3)
        features = extractor.update(0.0, 0.01, 100.0)
        assert set(features) == {
            "sojourn_time", "d_sojourn", "d2_sojourn", "d3_sojourn",
            "buffer_size", "d_buffer", "d2_buffer", "d3_buffer"}

    def test_feature_names_respect_order(self):
        extractor = FeatureExtractor(order=1)
        assert extractor.feature_names == (
            "sojourn_time", "d_sojourn", "buffer_size", "d_buffer")

    def test_sojourn_and_buffer_independent(self):
        extractor = FeatureExtractor(order=1, tau_s=0.01)
        features = None
        for step in range(100):
            t = step * 0.01
            features = extractor.update(t, 0.02, t * 10.0)
        assert features["d_sojourn"] == pytest.approx(0.0, abs=0.01)
        assert features["d_buffer"] == pytest.approx(10.0, rel=0.1)

    def test_reset(self):
        extractor = FeatureExtractor(order=1, tau_s=0.01)
        for step in range(10):
            extractor.update(step * 0.01, step * 0.01, 0.0)
        extractor.reset()
        features = extractor.update(0.0, 0.05, 1.0)
        assert features["sojourn_time"] == pytest.approx(0.05)
        assert features["d_sojourn"] == 0.0
