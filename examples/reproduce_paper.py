#!/usr/bin/env python3
"""Reproduce the whole paper in one run.

Runs every evaluation experiment (Table 1, Figures 1/2/4/6/7/8, the
Sec. 6 energy extremes), prints the consolidated report with the
paper-claim checklist, and writes each figure's data series as CSV
into ``reproduction_output/`` for plotting.

Run:  python examples/reproduce_paper.py [--full]

``--full`` uses the publication-sized workloads (~2 minutes); the
default quick mode finishes in a few seconds.
"""

import sys
from pathlib import Path

from repro.analysis.export import export_all
from repro.analysis.report import run_report
from repro.device import generate_dataset


def main() -> int:
    quick = "--full" not in sys.argv[1:]
    mode = "quick" if quick else "full"
    print(f"[{mode} mode] generating the chip dataset...",
          file=sys.stderr)
    dataset = generate_dataset(
        n_states=24 if quick else 48,
        n_voltages=49 if quick else 97,
        include_sweeps=False, include_pulse_trains=False, seed=7)

    report = run_report(dataset=dataset, quick=quick,
                        progress=lambda text: print(f"[{text}]",
                                                    file=sys.stderr))
    print(report.render())

    out_dir = Path("reproduction_output")
    print(f"\n[writing CSV series to {out_dir}/ ...]", file=sys.stderr)
    written = export_all(out_dir, quick=quick, dataset=dataset)
    print(f"\nData series written for plotting:")
    for path in written:
        print(f"  {path}")
    return 0 if report.all_passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
