#!/usr/bin/env python3
"""Future work realised: self-learning cognitive network functions.

The paper's conclusion points at "cognitive models deployment, e.g.,
neuromorphic computations, for self-learning line-rate network
functions".  This demo runs three of them:

1. the **neuromorphic AQM** — an analog perceptron on a memristive
   crossbar that *learns* its drop policy online from the delay error
   (no hand-programmed thresholds);
2. **AIMD senders with ECN** — the pCAM-AQM marks instead of drops,
   and the responsive flows keep the delay in band with zero loss;
3. a **spiking burst detector** — a LIF neuron with a memristive
   synapse spiking on traffic anomalies;
4. the **closed control loop** from :mod:`repro.control` — a
   gradient-free SPSA sweep, attached through the cognitive
   controller's supervision tick, repairs a mis-programmed pCAM AQM
   live: every candidate programming must clear the degradation
   oracle's envelope gate before ``update_pCAM`` lands it.

Run:  python examples/self_learning_aqm.py
"""

import numpy as np

from repro.netfunc.aqm.base import TailDropAQM
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.neuro import NeuromorphicAQM, SpikingBurstDetector
from repro.simnet import (
    AIMDFlowGenerator,
    BottleneckQueue,
    FeedbackRouter,
    Simulator,
)
from repro.simnet.topology import DumbbellExperiment, overload_profile


def neuromorphic_demo() -> None:
    print("=== 1. Self-learning neuromorphic AQM ===")
    experiment = DumbbellExperiment(
        n_flows=6, load=0.9, service_rate_bps=40e6,
        capacity_packets=1500, duration_s=8.0,
        rate_fn=overload_profile(2.0, 7.0, 1.6), seed=3)
    aqm = NeuromorphicAQM(rng=np.random.default_rng(2))
    learned = experiment.run(aqm).recorder.summary()
    unmanaged = experiment.run(TailDropAQM()).recorder.summary()
    print(f"  tail-drop mean delay : {unmanaged.mean_delay_s*1e3:7.1f} ms")
    print(f"  learned   mean delay : {learned.mean_delay_s*1e3:7.1f} ms "
          f"(target band 10-30 ms)")
    print(f"  weight updates       : {aqm.updates}")
    print(f"  learned weights      : {np.round(aqm.weights, 2)}")
    print(f"  analog inference energy: "
          f"{aqm.ledger.account('neuro_aqm.inference'):.3e} J\n")


def ecn_demo() -> None:
    print("=== 2. Responsive flows + ECN (lossless congestion control) ===")

    def run(aqm, ecn):
        sim = Simulator()
        router = FeedbackRouter()
        queue = BottleneckQueue(sim, service_rate_bps=20e6,
                                capacity_packets=800, aqm=aqm,
                                delivery_listener=router.on_delivery,
                                drop_listener=router.on_drop)
        for index in range(4):
            AIMDFlowGenerator(router, rtt_s=0.04, flow_id=index,
                              ecn_capable=ecn,
                              rng=np.random.default_rng(index)
                              ).attach(sim, queue.enqueue)
        sim.run_until(8.0)
        return queue.recorder.summary()

    bloated = run(TailDropAQM(), False)
    aqm = PCAMAQM(ecn_enabled=True, rng=np.random.default_rng(9))
    marked = run(aqm, True)
    print(f"  tail-drop : mean {bloated.mean_delay_s*1e3:6.1f} ms, "
          f"{bloated.dropped} losses (bufferbloat)")
    print(f"  pCAM+ECN  : mean {marked.mean_delay_s*1e3:6.1f} ms, "
          f"{marked.dropped} losses, {aqm.ecn_marks} CE marks\n")


def spiking_demo() -> None:
    print("=== 3. Spiking burst detector (LIF + memristive synapse) ===")
    rng = np.random.default_rng(4)
    detector = SpikingBurstDetector(nominal_rate_pps=1000.0,
                                    rng=np.random.default_rng(1))
    t = 0.0
    timeline = []
    for phase, (rate, n) in enumerate((
            (1000.0, 2000), (8000.0, 600), (1000.0, 2000))):
        start_spikes = detector.spike_count
        for _ in range(n):
            t += float(rng.exponential(1.0 / rate))
            detector.on_arrival(t)
        timeline.append((rate, detector.spike_count - start_spikes))
    for rate, spikes in timeline:
        label = "nominal" if rate <= 1000 else "BURST"
        print(f"  {label:>8} at {rate:6.0f} pps -> {spikes:3d} spikes")
    print(f"  synaptic weight after homeostasis: "
          f"{detector.synaptic_weight:.3f}")


def control_loop_demo() -> None:
    print("\n=== 4. Closed-loop SPSA repair of a mis-programmed switch ===")
    from repro.control.gate import MISPROGRAMMED_TARGET_S, run_gate

    doc = run_gate("diurnal", seed=0)
    static = doc["static"]["mean_congested_delay_s"]
    learned = doc["learned"]["mean_congested_delay_s"]
    sweep = doc["learned"]
    target, deviation = sweep["final_programming"]
    print(f"  plant: every AQM mis-programmed at "
          f"{MISPROGRAMMED_TARGET_S * 1e3:.0f} ms target")
    print(f"  static  settled delay : {static * 1e3:7.1f} ms "
          f"(stuck out of band)")
    print(f"  learned settled delay : {learned * 1e3:7.1f} ms "
          f"(envelope 10-30 ms)")
    print(f"  SPSA episodes         : {sweep['episodes']} "
          f"({sweep['applied']} gated deployments)")
    print(f"  oracle gate           : {sweep['gate_checks']} checks, "
          f"{sweep['gate_rejections']} rejections, "
          f"{sweep['gate_violations']} violations")
    print(f"  learned programming   : target {target * 1e3:.1f} ms, "
          f"deviation {deviation * 1e3:.1f} ms")


def main() -> None:
    neuromorphic_demo()
    ecn_demo()
    spiking_demo()
    control_loop_demo()


if __name__ == "__main__":
    main()
