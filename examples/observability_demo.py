#!/usr/bin/env python3
"""One observability hub across the whole cognitive packet processor.

Builds the Figure 5 pipeline with a shared
:class:`~repro.observability.hub.Observability` hub, pushes enough
traffic through the scalar and batched paths to exercise every stage
(parser -> digital MATs -> pCAM AQM -> egress queues), then shows the
three faces of the layer:

* the unified metrics snapshot the cognitive controller polls —
  table hit/miss statistics, energy-account totals, degradation
  fallback/retry counters and per-stage latency histograms, in one
  mapping;
* the Prometheus text exposition (what a scrape endpoint would
  serve), validated with the built-in lint;
* the span tree of one traced batch and the ``@profiled`` wall-time
  histograms of the hot kernels.

Run:   python examples/observability_demo.py
Check: python examples/observability_demo.py --check
       (exits non-zero if the Prometheus export fails the lint — the
       CI gate)
"""

import sys

from repro.dataplane.pipeline import AnalogPacketProcessor
from repro.dataplane.switch import SwitchSpec, build_switch
from repro.observability import Observability
from repro.observability.export import lint_prometheus
from repro.observability.profiling import PROFILE_METRIC
from repro.packet import Packet


def make_packet(index: int) -> Packet:
    return Packet(fields={"src_ip": f"10.1.{index % 8}.{index % 32}",
                          "dst_ip": "10.2.2.2", "protocol": 17,
                          "src_port": 1000 + index, "dst_port": 80},
                  size_bytes=400)


def run_traffic(processor: AnalogPacketProcessor) -> None:
    now = 0.0
    # Scalar path first (builds the backlog the AQM reacts to) ...
    for index in range(32):
        now = index * 2e-5
        processor.process(make_packet(index), now=now)
    # ... then the batched path, chunked through the vectorised pCAM.
    batch = [make_packet(index) for index in range(64)]
    processor.process_batch(batch, now=now + 2e-5, chunk_size=16)
    processor.drain(0, now=now + 1e-3, limit=16)


def main() -> int:
    check_only = "--check" in sys.argv[1:]

    obs = Observability()
    spec = SwitchSpec(n_ports=2, port_rate_bps=2e8,
                      graceful_degradation=True,
                      routes=(("10.0.0.0/8", 0),
                              ("192.168.0.0/16", 1)))
    processor = build_switch(spec, observability=obs)
    run_traffic(processor)

    text = obs.to_prometheus()
    problems = lint_prometheus(text)

    if check_only:
        if problems:
            for problem in problems:
                print(f"LINT: {problem}", file=sys.stderr)
            return 1
        snapshot = obs.snapshot()
        names = {entry["name"] for entry in snapshot["metrics"]}
        required = {"dataplane_table_hits_total",
                    "energy_account_joules_total",
                    "degradation_fallback_total",
                    "span_wall_seconds", PROFILE_METRIC}
        missing = required - names
        if missing:
            print(f"MISSING METRICS: {sorted(missing)}", file=sys.stderr)
            return 1
        print(f"ok: {len(text.splitlines())} exposition lines, "
              f"{len(snapshot['metrics'])} metric families, "
              f"{len(obs.tracer.finished)} spans, lint clean")
        return 0

    print("=== Prometheus exposition (one scrape) ===")
    print(text, end="")
    print(f"[lint: {'clean' if not problems else problems}]")

    print("\n=== Controller poll (unified JSON snapshot) ===")
    snapshot = processor.controller.poll_metrics()
    for entry in snapshot["metrics"]:
        n = len(entry["samples"])
        print(f"  {entry['name']:<36} {entry['type']:<9} "
              f"{n} sample{'s' if n != 1 else ''}")

    print("\n=== Trace of the last batch (span tree) ===")
    print(obs.tracer.format_tree(limit=24))

    print("\n=== @profiled kernel wall times ===")
    for entry in snapshot["metrics"]:
        if entry["name"] != PROFILE_METRIC:
            continue
        for sample in entry["samples"]:
            site = sample["labels"]["site"]
            count = sample["count"]
            mean_us = (sample["sum"] / count * 1e6) if count else 0.0
            print(f"  {site:<28} calls={count:<5} "
                  f"mean={mean_us:.1f}us")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
