#!/usr/bin/env python3
"""Cognitive network functions beyond AQM: load balancing and
traffic analysis on probabilistic matches.

Both functions exploit the pCAM capability of RQ1: a query with zero
deterministic matches still returns the *closest* stored policy.

Run:  python examples/cognitive_functions.py
"""

import numpy as np

from repro.netfunc.load_balancer import Backend, PCAMLoadBalancer
from repro.netfunc.traffic_analysis import (
    FlowFeatures,
    TrafficClassProfile,
    TrafficClassifier,
)


def load_balancing_demo() -> None:
    print("=== Cognitive load balancing ===")
    backends = [Backend("alpha", capacity=1.0),
                Backend("beta", capacity=1.0),
                Backend("gamma", capacity=0.5)]
    balancer = PCAMLoadBalancer(backends, comfort=0.7, saturation=1.2,
                                rng=np.random.default_rng(1))
    rng = np.random.default_rng(2)
    # Assign and release work with a random hold pattern.
    active: list[Backend] = []
    for _ in range(2000):
        active.append(balancer.assign(load=0.05))
        if len(active) > 25:
            balancer.release(active.pop(0), load=0.05)
    print(f"{'backend':>8}{'capacity':>10}{'served':>8}{'final util':>12}")
    for backend in backends:
        print(f"{backend.name:>8}{backend.capacity:>10.1f}"
              f"{backend.served:>8}{backend.utilisation:>12.2f}")
    print("The half-capacity backend receives proportionally less "
          "traffic,\nwith no explicit weight configuration — its "
          "fitness cell saturates earlier.\n")


def traffic_analysis_demo() -> None:
    print("=== Cognitive traffic analysis ===")
    classifier = TrafficClassifier([
        TrafficClassProfile("web", {
            "mean_packet_size": (200.0, 600.0, 200.0),
            "mean_interarrival_s": (0.01, 0.2, 0.05),
            "burstiness": (0.5, 1.5, 0.5)}),
        TrafficClassProfile("video", {
            "mean_packet_size": (1000.0, 1500.0, 200.0),
            "mean_interarrival_s": (0.001, 0.01, 0.005),
            "burstiness": (0.2, 1.0, 0.5)}),
        TrafficClassProfile("voip", {
            "mean_packet_size": (100.0, 300.0, 100.0),
            "mean_interarrival_s": (0.015, 0.025, 0.01),
            "burstiness": (0.0, 0.3, 0.3)}),
    ])
    rng = np.random.default_rng(3)
    flows = {
        "browsing session": FlowFeatures.from_samples(
            rng.normal(400, 80, 500),
            np.cumsum(rng.exponential(0.05, 500))),
        "video stream": FlowFeatures.from_samples(
            rng.normal(1300, 100, 500),
            np.cumsum(rng.exponential(0.004, 500))),
        "voip call": FlowFeatures.from_samples(
            rng.normal(180, 20, 500),
            np.cumsum(np.full(500, 0.02))),
        "unknown (odd sizes)": FlowFeatures.from_samples(
            rng.normal(750, 50, 500),
            np.cumsum(rng.exponential(0.05, 500))),
    }
    for label, flow in flows.items():
        scores = classifier.scores(flow)
        best, best_score = classifier.classify(flow)
        ranking = ", ".join(f"{name}={score:.2f}"
                            for name, score in sorted(
                                scores.items(), key=lambda kv: -kv[1]))
        print(f"  {label:<22} -> {best:<6} ({ranking})")
    print("The last flow matches no profile deterministically; the "
          "pCAM array\nstill ranks it against every stored class "
          "(partial match).")


def main() -> None:
    load_balancing_demo()
    traffic_analysis_demo()


if __name__ == "__main__":
    main()
