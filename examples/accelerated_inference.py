#!/usr/bin/env python3
"""The cited aCAM use cases: decision trees and signature matching.

Sec. 7 of the paper surveys what memristor CAMs already accelerate —
decision-tree inference (Graves et al., Pedretti et al.) and regex
matching for intrusion detection (12x FPGA throughput).  This demo
runs both on this repository's substrates:

1. a CART tree trained on synthetic flow features, compiled leaf-by-
   leaf into pCAM words, classifying in one analog search;
2. a multi-signature payload scanner on the memristor TCAM.

Run:  python examples/accelerated_inference.py
"""

import numpy as np

from repro.netfunc.decision_tree import AnalogDecisionTree, CARTTree
from repro.netfunc.pattern_match import PatternMatcher


def decision_tree_demo() -> None:
    print("=== Decision-tree inference on the analog CAM ===")
    rng = np.random.default_rng(8)
    # Synthetic flow dataset: (mean packet size [kB], mean rate
    # [kpps]) with three behaviour classes.
    web = rng.normal([0.4, 0.2], [0.08, 0.05], size=(150, 2))
    video = rng.normal([1.3, 0.6], [0.1, 0.1], size=(150, 2))
    bulk = rng.normal([1.4, 2.0], [0.1, 0.2], size=(150, 2))
    features = np.vstack([web, video, bulk])
    labels = np.array([0] * 150 + [1] * 150 + [2] * 150)
    names = {0: "web", 1: "video", 2: "bulk"}

    tree = CARTTree(max_depth=4).fit(features, labels)
    analog = AnalogDecisionTree(
        tree, feature_names=("size_kb", "rate_kpps"),
        feature_ranges=[(0.0, 2.0), (0.0, 3.0)])
    print(f"  tree: {tree.n_leaves()} leaves -> "
          f"{analog.n_words} pCAM words (one analog search per flow)")

    agreement = analog.agreement_with(tree, features[::5])
    print(f"  analog/digital agreement on training data: "
          f"{agreement:.1%}")

    probes = {"typical web flow": {"size_kb": 0.42, "rate_kpps": 0.18},
              "typical video flow": {"size_kb": 1.25, "rate_kpps": 0.65},
              "odd flow (between)": {"size_kb": 0.9, "rate_kpps": 1.2}}
    for label, sample in probes.items():
        predicted, probability = analog.classify(sample)
        print(f"  {label:<22} -> {names[predicted]:<6} "
              f"(match p = {probability:.2f})")
    print(f"  total search energy: {analog.ledger.total:.3e} J\n")


def pattern_matching_demo() -> None:
    print("=== Signature matching on the memristor TCAM ===")
    matcher = PatternMatcher(window_bytes=8)
    for signature in (b"attack", b"GET /?", b"\x90\x90\x90\x90",
                      b"/etc/pas"):
        matcher.add_pattern(signature)
    payloads = {
        "clean HTTP": b"POST /api/v1/data HTTP/1.1",
        "probe": b"GET /a HTTP/1.1",
        "exploit": b"junk \x90\x90\x90\x90\x90 /etc/passwd attack",
    }
    for label, payload in payloads.items():
        matches = matcher.scan(payload)
        rendered = ", ".join(
            f"{m.pattern!r}@{m.offset}" for m in matches) or "none"
        print(f"  {label:<12} -> {rendered}")
    print(f"  TCAM search energy for all scans: "
          f"{matcher.search_energy_j:.3e} J")


def main() -> None:
    decision_tree_demo()
    pattern_matching_demo()


if __name__ == "__main__":
    main()
