#!/usr/bin/env python3
"""The paper's energy analysis: dataset, Table 1, Figure 7.

Runs the synthetic Nb:SrTiO3 measurement campaign, extracts the
per-state read energies (Sec. 6's 0.01 fJ .. 0.16 nJ range),
rebuilds Table 1 with the measured pCAM row, and sweeps the two
Figure 7 panels on device-realised cells.

Run:  python examples/energy_study.py
"""

import numpy as np

from repro.analysis.figures import figure7_series
from repro.device import generate_dataset
from repro.device.energy import energy_histogram, energy_statistics
from repro.energy.comparison import build_table1, format_table1
from repro.energy.projections import TOFINO2_CLASS, power_comparison


def main() -> None:
    print("Running the synthetic measurement campaign "
          "(48 states x 97 read voltages)...")
    dataset = generate_dataset(n_states=48, n_voltages=97, seed=7)
    print(f"  resistance window: "
          f"{dataset.resistance_window:.2e} (r_off / r_on)")
    print(f"  hysteresis sweeps: {len(dataset.sweeps)}, "
          f"pulse staircases: {len(dataset.pulse_trains)}")

    stats = energy_statistics(dataset)
    print(f"\nPer-state read energy at the search condition:")
    print(f"  min  {stats.min_fj:8.4f} fJ/bit/cell   (paper: ~0.01 fJ)")
    print(f"  max  {stats.max_nj:8.4f} nJ/bit/cell   (paper: ~0.16 nJ)")
    print(f"  span {stats.decades:8.1f} decades")
    print(f"  improvement over best digital design: "
          f"{stats.improvement_over_digital():.1f}x  (paper: >= 50x)")

    counts, edges = energy_histogram(dataset, bins_per_decade=1)
    print("\nRead-energy histogram (all states x voltages):")
    peak = counts.max()
    for lo, count in zip(edges[:-1], counts):
        if count:
            bar = "#" * max(1, int(40 * count / peak))
            print(f"  1e{np.log10(lo):+04.0f} J |{bar}")

    print("\n" + "\n".join(format_table1(build_table1(dataset))))

    projection = power_comparison(analog_j_per_bit=stats.min_j,
                                  digital_j_per_bit=0.58e-15,
                                  profile=TOFINO2_CLASS)
    print(f"\nProjected match-stage power of a {TOFINO2_CLASS.name} "
          f"switch\n(4 x 18 Mb tables at 3.2 G searches/s):")
    print(f"  digital TCAM : {projection['digital_w']:8.1f} W")
    print(f"  analog pCAM  : {projection['analog_w']:8.2f} W")
    print(f"  saving       : {projection['saving_w']:8.1f} W "
          f"({projection['factor']:.0f}x)")

    for panel in ("a", "b"):
        series = figure7_series(panel, dataset=dataset, n_points=31,
                                trials=8)
        print(f"\nFigure 7({panel}): PDP vs input "
              f"[{series['inputs'][0]:+.0f}, "
              f"{series['inputs'][-1]:+.0f}] V")
        for i in range(0, 31, 3):
            v = series["inputs"][i]
            mean = series["pdp_mean"][i]
            std = series["pdp_std"][i]
            bar = "=" * int(30 * mean)
            print(f"  {v:+5.2f} V  {mean:5.3f} +-{std:5.3f} |{bar}")


if __name__ == "__main__":
    main()
