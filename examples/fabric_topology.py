#!/usr/bin/env python3
"""A topology of sharded cognitive switches, end to end.

Stands up a two-hop path where each hop is a whole
:class:`~repro.fabric.fabric.SwitchFabric` — N complete memristor
switches behind a symmetric Toeplitz RSS front end — then:

1. reprograms the ingress fabric transactionally (two-phase commit:
   staged on every shard, flipped under one generation);
2. streams a flash-crowd scenario through the path with line-rate
   drains and link delays between hops;
3. prints per-hop verdicts, fabric steering balance, and the exact
   merged energy ledgers.

Run:  python examples/fabric_topology.py
"""

from repro.energy import format_energy
from repro.fabric import build_fabric
from repro.simnet.multihop import run_switch_path
from repro.simnet.scenarios import default_switch_spec, scenario

N_PACKETS = 5000
SEED = 42


def main() -> None:
    spec = default_switch_spec()

    # --- Two hops: a 4-shard ingress fabric, a 2-shard core hop. ---
    ingress = build_fabric(spec, SEED, 4)
    core = build_fabric(spec, SEED + 1, 2)

    # --- Transactional programming of the ingress fabric. ----------
    generation = (ingress.controller
                  .add_route("198.51.100.0/24", 2)
                  .retarget(0.015)
                  .commit())
    print(f"ingress fabric reprogrammed: generation {generation} "
          f"({ingress.n_shards} shards flipped atomically)")

    # --- Drive the scenario through the path. ----------------------
    entry = scenario("flash_crowd")
    result = run_switch_path(
        [ingress, core],
        entry.stream(seed=SEED, n_packets=N_PACKETS, chunk_size=2048),
        link_delays_s=[0.002, 0.002],
        port_rate_bps=spec.port_rate_bps)

    print(f"\npath: {N_PACKETS} offered, {result.delivered} delivered "
          f"end to end")
    print(f"mean end-to-end delay: {result.mean_delay_s * 1e3:.2f} ms, "
          f"p95: {result.p95_delay_s * 1e3:.2f} ms")
    for index, hop in enumerate(result.hops):
        name = "ingress" if index == 0 else f"core{index}"
        print(f"\nhop {index} ({name}): admitted {hop.admitted}")
        for verdict, count in sorted(hop.verdict_counts.items()):
            print(f"  {verdict:>18}: {count}")
        print(f"  energy: {format_energy(hop.energy_total_j)}")

    # --- Fabric observability: steering balance + merged ledger. ---
    metrics = ingress.poll_metrics()
    steering = metrics["steering"]
    print(f"\ningress steering: {steering['hashed_packets']} hashed, "
          f"per-shard {steering['per_shard_packets']}, "
          f"imbalance {steering['imbalance']:.3f}")
    print(f"path energy (exact merged ledgers): "
          f"{format_energy(result.energy_total_j)}")

    ingress.close()
    core.close()


if __name__ == "__main__":
    main()
