#!/usr/bin/env python3
"""Table-1-style energy comparison for one-shot aCAM tree inference.

Builds the seeded reference traffic classifier, compiles it into an
analog-CAM bank (one row per root-to-leaf path), and costs a single
classification under three realisations: the aCAM one-shot search,
a sequential digital tree walk on the best published digital CAM
technology, and a range-expanded TCAM.  Prints the table and writes
the machine-readable version next to the other benchmark artifacts.

Run:  PYTHONPATH=src python examples/acam_energy_table.py
"""

import json
from pathlib import Path

from repro.acam import (
    ACAMDecisionTree,
    build_energy_table,
    energy_table_json,
    format_energy_table,
    reference_classifier,
)

OUT = Path(__file__).parent.parent / "benchmarks" \
    / "BENCH_acam_energy.json"


def main() -> None:
    tree, names, ranges = reference_classifier()
    compiled = ACAMDecisionTree(tree, names)
    print("=== One-shot decision-tree inference on the analog CAM ===")
    print(f"  reference classifier: {tree.n_features} features, "
          f"{tree.n_leaves()} leaves -> {compiled.n_rows} aCAM rows")
    print()
    table = build_energy_table(tree, ranges)
    for line in format_energy_table(table):
        print("  " + line)
    doc = energy_table_json(table)
    OUT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print()
    print(f"  wrote {OUT.relative_to(OUT.parent.parent)}")


if __name__ == "__main__":
    main()
