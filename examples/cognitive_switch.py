#!/usr/bin/env python3
"""The full Figure 5 architecture: a cognitive packet processor.

Builds the memristor-based switch — parser, digital match-action
tables (firewall + LPM lookup on memristor TCAMs), analog AQM in the
cognitive traffic manager — programs it through the cognitive network
controller, pushes wire-format traffic through it, and prints the
verdicts plus the per-component energy breakdown.

Run:  python examples/cognitive_switch.py
"""

import numpy as np

from repro.core.compiler import (
    FunctionKind,
    NetworkFunctionSpec,
    PrecisionClass,
)
from repro.dataplane import CognitiveNetworkController, SwitchSpec
from repro.dataplane.parser import build_ethernet_frame, build_ipv4_packet
from repro.energy import format_energy
from repro.netfunc.firewall import Action, FirewallRule


def main() -> None:
    # --- Control plane: declare functions, compile the split. ------
    controller = CognitiveNetworkController()
    controller.register(NetworkFunctionSpec(
        "ip_lookup", PrecisionClass.HIGH, FunctionKind.DETERMINISTIC))
    controller.register(NetworkFunctionSpec(
        "firewall", PrecisionClass.HIGH, FunctionKind.DETERMINISTIC))
    controller.register(NetworkFunctionSpec(
        "aqm", PrecisionClass.LOW, FunctionKind.COGNITIVE))
    controller.compile()
    print("Cognitive network controller placement:")
    for line in controller.report():
        print(" ", line)

    # --- Data plane: declared once, assembled by the builder. --------
    spec = SwitchSpec(
        n_ports=2,
        use_memristor_tcam=True,
        port_rate_bps=1e9,
        routes=(("10.0.0.0/8", 0), ("192.168.0.0/16", 1)),
        firewall_rules=(FirewallRule(
            action=Action.DENY, src_prefix="172.16.0.0/12"),))
    processor = controller.build_switch(spec)

    # --- Push traffic. ----------------------------------------------
    rng = np.random.default_rng(4)
    sources = ["10.1.0.1", "172.16.9.9", "203.0.113.7"]
    destinations = ["10.9.9.9", "192.168.4.4", "198.51.100.1"]
    for index in range(600):
        frame = build_ethernet_frame(build_ipv4_packet(
            src_ip=str(rng.choice(sources)),
            dst_ip=str(rng.choice(destinations)),
            dst_port=int(rng.choice([80, 443, 53]))))
        processor.process_frame(frame, now=index * 1e-5)

    print(f"\nProcessed {processor.processed} frames:")
    for verdict, count in processor.verdict_counts.items():
        if count:
            print(f"  {verdict.value:<20} {count:>5}")

    served = processor.drain(0, now=0.01) + processor.drain(1, now=0.01)
    print(f"  served from egress queues: {len(served)}")

    print("\nEnergy breakdown (whole run):")
    for account, energy in processor.energy_breakdown().items():
        print(f"  {account:<16} {format_energy(energy):>14}")
    print(f"  {'TOTAL':<16} {format_energy(processor.energy_total_j()):>14}")


if __name__ == "__main__":
    main()
