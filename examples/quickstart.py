#!/usr/bin/env python3
"""Quickstart: program a pCAM cell and explore the analog match.

Reproduces the paper's RQ1 example in a few lines: a stored policy of
2.5 V with deterministic match in [2.4, 2.6] V, deterministic
mismatch below 1.5 V and above 3.5 V, and probabilistic (partial)
matches on the ramps in between — something a digital TCAM cannot
express.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DevicePCAMCell, PCAMCell, PCAMPipeline, prog_pcam
from repro.device import VariabilityModel


def main() -> None:
    # --- 1. Program a cell (the paper's prog_pCAM abstraction). ----
    params = prog_pcam(m1=1.5, m2=2.4, m3=2.6, m4=3.5)
    cell = PCAMCell(params)
    print("pCAM cell:", cell)

    print("\nFive regions of the analog match:")
    for voltage in (0.5, 1.5, 1.95, 2.5, 3.05, 3.5, 4.0):
        region = cell.region(voltage)
        print(f"  input {voltage:4.2f} V -> p = {cell.response(voltage):.3f}"
              f"   ({region.value})")

    # --- 2. Series composition (Figure 4b): product of stages. -----
    pipeline = PCAMPipeline.from_params({"stage1": params,
                                         "stage2": params})
    value = 2.0
    single = cell.response(value)
    combined = pipeline.evaluate([value, value])
    print(f"\nSeries product at {value} V: "
          f"{single:.3f} x {single:.3f} = {combined:.3f}")

    # --- 3. The same cell realised on simulated memristors. --------
    device_cell = DevicePCAMCell(
        params,
        variability=VariabilityModel(read_sigma=0.03, device_sigma=0.0),
        rng=np.random.default_rng(7))
    sweep = np.linspace(1.0, 4.0, 13)
    print("\nDevice-realised response (one noisy read per point):")
    print(f"  {'input [V]':>10}{'ideal':>8}{'device':>8}"
          f"{'read E [J]':>12}")
    for voltage in sweep:
        evaluation = device_cell.evaluate(float(voltage))
        print(f"  {voltage:>10.2f}{cell.response(float(voltage)):>8.3f}"
              f"{evaluation.probability:>8.3f}"
              f"{evaluation.energy_j:>12.3e}")
    print(f"\nProgramming energy spent: "
          f"{device_cell.programming_energy_j:.3e} J")


if __name__ == "__main__":
    main()
