#!/usr/bin/env python3
"""The paper's proof of concept: pCAM-based analog AQM (Figure 8).

Simulates Poisson flows through a bottleneck queue with an overload
episode, twice: without AQM (tail drop) and with the pCAM-based
analog AQM programmed to hold 20 ms +- 10 ms.  Prints the delay
series and the band statistics.

Run:  python examples/analog_aqm_demo.py
"""

import numpy as np

from repro.analysis.figures import figure8_series
from repro.analysis.stats import banded_fraction


def sparkline(values: np.ndarray, peak: float) -> str:
    """A terminal mini-plot of a delay series."""
    glyphs = " .:-=+*#%@"
    chars = []
    for value in values:
        if np.isnan(value):
            chars.append(" ")
            continue
        level = min(len(glyphs) - 1,
                    int(value / peak * (len(glyphs) - 1)))
        if value > 1.0 and level == 0:
            level = 1  # keep small-but-real delays visible
        chars.append(glyphs[level])
    return "".join(chars)


def main() -> None:
    print("Running the Figure 8 experiment "
          "(Poisson dumbbell, 1.6x overload from t=2s to t=6s)...")
    series = figure8_series(duration_s=8.0, overload=(2.0, 6.0, 1.6),
                            service_rate_bps=40e6, seed=3)

    peak = float(np.nanmax(series.no_aqm_delay_ms))
    print(f"\nDelay over time (each char = 0.1 s, peak = {peak:.0f} ms)")
    print(f"  no AQM   |{sparkline(series.no_aqm_delay_ms, peak)}|")
    print(f"  pCAM-AQM |{sparkline(series.pcam_delay_ms, peak)}|")

    overload = (series.time_s >= 3.0) & (series.time_s < 6.0)
    no_aqm = series.no_aqm_delay_ms[overload]
    pcam = series.pcam_delay_ms[overload]
    band_lo = series.target_delay_ms - series.max_deviation_ms
    band_hi = series.target_delay_ms + series.max_deviation_ms

    print(f"\nDuring the overload episode:")
    print(f"  without AQM: mean {np.nanmean(no_aqm):7.1f} ms, "
          f"max {np.nanmax(no_aqm):7.1f} ms, "
          f"{series.no_aqm_drops} drops (buffer overflow)")
    print(f"  pCAM-AQM:    mean {np.nanmean(pcam):7.1f} ms, "
          f"max {np.nanmax(pcam):7.1f} ms, "
          f"{series.pcam_drops} drops (selective)")
    fraction = banded_fraction(pcam[~np.isnan(pcam)], band_lo, band_hi)
    print(f"  time inside the programmed {series.target_delay_ms:.0f}"
          f" +- {series.max_deviation_ms:.0f} ms band: {fraction:.0%}")


if __name__ == "__main__":
    main()
