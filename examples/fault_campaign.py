#!/usr/bin/env python3
"""Fault-injection campaign over the analog AQM stack.

Sweeps the default fault-model set (stuck-at cells, conductance
drift, programming-pulse variance, DAC/ADC quantization, transient
read noise) across the device -> crossbar -> pCAM array -> AQM
pipeline layers, compares every faulted pipeline against its ideal
digital twin with the differential oracle, and pushes synthetic
congestion through the graceful-degradation wrapper so per-table
fallback, retry backoff and energy cost are measured end to end.

Run:  python examples/fault_campaign.py [seed]
"""

import sys

from repro.robustness import CampaignConfig, FaultCampaign


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    config = CampaignConfig(seed=seed, n_probes=128, n_steps=48)
    result = FaultCampaign(config).run()

    print("=== Differential-oracle degradation per fault model ===")
    for line in result.summary_lines():
        print(line)

    print("\n=== Layered view (crossbar / array / dataplane) ===")
    for record in result.records:
        crossbar = (f"{record.crossbar_relative_error:.3f}"
                    if record.crossbar_relative_error is not None
                    else "  -  ")
        print(f"  {record.model:<32} crossbar_rel_err={crossbar} "
              f"array_err={record.array_mean_abs_error:.4f} "
              f"cells={record.n_injected}")

    print("\n=== Graceful degradation under congestion ===")
    for record in result.records:
        state = ("fell back to digital CoDel" if record.fallback_engaged
                 else "stayed analog")
        print(f"  {record.model:<32} {state}; retries={record.retries} "
              f"recoveries={record.recoveries} "
              f"aqm_drops={record.aqm_drops}")

    worst = max(result.records,
                key=lambda r: r.deviation.mean_abs_error)
    print(f"\nworst model: {worst.model} "
          f"(mean |dPDP| = {worst.deviation.mean_abs_error:.4f}); "
          f"all runs recorded through the shared energy ledger "
          f"(baseline {result.baseline_energy_j:.3e} J).")


if __name__ == "__main__":
    main()
