#!/usr/bin/env python3
"""Programming an analog network function as text (paper Sec. 5).

The analog AQM ships as program text in the paper's table syntax; the
controller parses it, builds the pCAM pipeline, and installs it in a
simulated queue.  A second variant is then pushed at run time via
``update_pCAM`` — reprogramming the hardware without touching the
data path.

Run:  python examples/dsl_programming.py
"""

import numpy as np

from repro.core import parse_table, prog_pcam, update_pcam
from repro.netfunc.aqm.base import AQMAlgorithm
from repro.packet import Packet
from repro.simnet import BottleneckQueue, PoissonFlowGenerator, Simulator

AQM_PROGRAM = """
// Analog AQM, programmed for a 20 ms +- 10 ms latency objective.
// Features are in seconds; the falling edge sits beyond reach.
table analogAQM {
    read { sojourn_time; d_sojourn; }
    output {
        pipeline {
            pCAM(sojourn_time: 0.010, 0.030, 0.160, 0.190),  // Stage-1
            pCAM(d_sojourn: -1.0, -0.05, 8.0, 9.5, // Stage-2 (veto)
                 1.0526315789473684, -0.6, 1.0, 0.1),
        }
    }
    action { update_pCAM(); }
}
"""


class TextProgrammedAQM(AQMAlgorithm):
    """An AQM whose drop policy is the parsed table."""

    name = "text-AQM"

    def __init__(self, table, rng) -> None:
        self.table = table
        self._rng = rng
        self._last = (0.0, 0.0)

    def on_enqueue(self, packet: Packet, queue, now: float) -> bool:
        if queue.backlog_packets <= 2:
            return False
        backlog_delay = 8.0 * queue.backlog_bytes / queue.service_rate_bps
        sojourn = max(queue.last_sojourn_s, backlog_delay)
        last_time, last_value = self._last
        derivative = ((sojourn - last_value) / (now - last_time)
                      if now > last_time else 0.0)
        self._last = (now, sojourn)
        result = self.table.process({
            "sojourn_time": min(sojourn, 0.16),
            "d_sojourn": max(-1.0, min(derivative, 8.0))})
        return bool(self._rng.random() < result.output)


def run(aqm, label: str) -> None:
    sim = Simulator()
    queue = BottleneckQueue(sim, service_rate_bps=40e6,
                            capacity_packets=1500, aqm=aqm)
    for index in range(6):
        PoissonFlowGenerator(
            rate_pps=5500.0 / 6, packet_size_bytes=1000, flow_id=index,
            rng=np.random.default_rng(index)).attach(sim, queue.enqueue)
    sim.run_until(5.0)
    summary = queue.recorder.summary()
    print(f"  {label:<28} mean {summary.mean_delay_s*1e3:6.1f} ms, "
          f"p95 {summary.p95_delay_s*1e3:6.1f} ms, "
          f"{summary.dropped} drops")


def main() -> None:
    print("Parsing the analog AQM program text...")
    actions = {"update_pCAM": lambda table, output, features: None}
    table = parse_table(AQM_PROGRAM, actions=actions)
    print(f"  table {table.name!r}, stages: {list(table.reads)}")

    rng = np.random.default_rng(5)
    print("\n1.1x overload through a 40 Mb/s bottleneck:")
    run(TextProgrammedAQM(table, rng), "text-programmed AQM (20 ms)")

    # Run-time reprogramming: tighten the objective to 5 ms +- 2.5 ms.
    update_pcam(table, "sojourn_time",
                prog_pcam(0.0025, 0.0075, 0.160, 0.190))
    table2 = table  # same hardware, new program
    run(TextProgrammedAQM(table2, np.random.default_rng(5)),
        "after update_pCAM (5 ms)")
    print("\nThe same table now enforces the tighter objective — "
          "reprogrammed\nthrough update_pCAM() without rebuilding "
          "anything.")


if __name__ == "__main__":
    main()
