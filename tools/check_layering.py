#!/usr/bin/env python
"""Layering contract checker for the repro package.

Walks every module under ``src/repro`` with the ``ast`` module (no
imports are executed, no third-party dependency needed) and enforces
the architectural layering the staged-runtime refactor established:

1. ``repro.runtime`` is generic infrastructure.  It may import the
   observability layer and the stdlib, but never dataplane or netfunc
   concretions — stages and verdict vocabularies are injected by the
   dataplane, not known to the runtime.
2. ``repro.netfunc`` holds the cognitive network functions.  They sit
   *below* the switch pipeline and must not import ``repro.dataplane``
   (the dataplane composes them, never the reverse).
3. ``repro.packet`` is a leaf: it may import nothing else from
   ``repro`` (every layer shares the Packet type, so any dependency
   here would be a cycle waiting to happen).
4. ``repro.acam`` is a device-level subsystem like ``repro.core``:
   the dataplane's classification stage composes it, so it must
   never import ``repro.dataplane`` or ``repro.simnet`` back.
5. One sanctioned exception: ``repro.runtime.compile`` (the pipeline
   compiler) must see the dataplane stage shapes it compiles, so it
   may import ``repro.dataplane`` — but still never ``repro.netfunc``
   (table sentinels are recovered from live objects instead).
6. ``repro.fabric`` is the top *composition* layer (it shards whole
   switches): nothing below it — dataplane, simnet, netfunc,
   runtime — may import it back.  The scenario engine reaches
   fabrics only through its duck-typed ``processor_factory`` hook.
7. ``repro.control`` is the *control plane* and sits above
   everything it closes the loop over: dataplane, fabric,
   robustness and observability may not import it back.  The only
   sanctioned back-edges are the two deprecation shims left at the
   old dataplane paths (``repro.dataplane.control_loop``,
   ``repro.dataplane.controller``), the package facade's silent
   re-export (``repro.dataplane.__init__``), and the pipeline's
   default-controller convenience — all re-export/instantiate only.

Exit status 0 when clean; 1 with one line per violation otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: module-prefix -> prefixes it must not import (checked transitively
#: over the textual import graph is overkill here: direct imports are
#: what the contract constrains).
FORBIDDEN = {
    "repro.runtime": ("repro.dataplane", "repro.netfunc",
                      "repro.fabric", "repro.control"),
    "repro.netfunc": ("repro.dataplane", "repro.fabric",
                      "repro.control"),
    "repro.acam": ("repro.dataplane", "repro.simnet", "repro.fabric",
                   "repro.control"),
    "repro.packet": ("repro.",),
    "repro.dataplane": ("repro.fabric", "repro.control"),
    "repro.simnet": ("repro.fabric", "repro.control"),
    "repro.fabric": ("repro.control",),
    "repro.robustness": ("repro.control",),
    "repro.observability": ("repro.control",),
}

#: exact module -> prefixes its FORBIDDEN rules waive.  The waiver is
#: per-module and per-prefix: ``repro.runtime.compile`` may see the
#: dataplane it compiles, yet ``repro.netfunc`` stays banned for it.
EXCEPTIONS = {
    "repro.runtime.compile": ("repro.dataplane",),
    # Sanctioned control-plane back-edges (rule 7): warn-on-import
    # deprecation shims, the facade's silent re-export, and the
    # pipeline's default-controller construction.
    "repro.dataplane": ("repro.control",),
    "repro.dataplane.control_loop": ("repro.control",),
    "repro.dataplane.controller": ("repro.control",),
    "repro.dataplane.pipeline": ("repro.control",),
}


def module_name(path: Path) -> str:
    relative = path.relative_to(SRC).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def imported_modules(path: Path, module: str) -> list[tuple[int, str]]:
    """(lineno, absolute module) for every import in the file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    package_parts = module.split(".")
    if path.name != "__init__.py":
        package_parts = package_parts[:-1]
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import -> resolve against package
                base = package_parts[:len(package_parts) - node.level + 1]
                prefix = ".".join(base)
                target = f"{prefix}.{node.module}" if node.module \
                    else prefix
            else:
                target = node.module or ""
            found.append((node.lineno, target))
    return found


def violations() -> list[str]:
    problems = []
    for path in sorted(SRC.glob("repro/**/*.py")):
        module = module_name(path)
        rules = [banned for prefix, banned in FORBIDDEN.items()
                 if module == prefix or module.startswith(prefix + ".")]
        if not rules:
            continue
        waived = EXCEPTIONS.get(module, ())
        rules = [tuple(banned for banned in banned_set
                       if banned not in waived)
                 for banned_set in rules]
        for lineno, target in imported_modules(path, module):
            for banned_set in rules:
                for banned in banned_set:
                    bad = target == banned.rstrip(".") \
                        or target.startswith(banned) \
                        and (banned.endswith(".")
                             or target[len(banned):][:1] in ("", "."))
                    if bad and not target.startswith(module):
                        problems.append(
                            f"{path.relative_to(SRC.parent)}:{lineno}: "
                            f"{module} imports {target} "
                            f"(forbidden by layering contract)")
    return problems


def main() -> int:
    problems = violations()
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} layering violation(s)", file=sys.stderr)
        return 1
    print("layering contract clean: runtime |> dataplane, "
          "netfunc |> dataplane, acam |> dataplane/simnet, "
          "repro.packet is a leaf, repro.fabric composes, "
          "repro.control is the top")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
